#!/usr/bin/env python3
"""Parser-coverage gate (driven by scripts/coverage.sh).

Reads per-line execution counts for the untrusted-input parser TUs out
of ``gcov --json-format`` and fails when any TU's line coverage drops
below its committed floor in fuzz/coverage_floors.tsv.

The floors are a ratchet, not a target: they were measured from the
committed fuzz corpora + parser unit tests and set a few points below
the observed value, so routine churn passes but deleting corpus seeds,
disconnecting a harness, or landing a swath of never-exercised parser
branches fails loudly. When coverage genuinely improves, raise the
floor in the same commit.

Usage (normally via scripts/coverage.sh):
    coverage_gate.py --build BUILD_DIR [--report-only]
    coverage_gate.py --list-targets      # build targets the gate needs
    coverage_gate.py --list-tests        # extra ctest names to run
"""
import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FLOORS_TSV = os.path.join(REPO_ROOT, "fuzz", "coverage_floors.tsv")

# Build targets whose execution produces the .gcda files the gate reads.
TARGETS = [
    "fuzz_wire_envelope_replay",
    "fuzz_datagram_replay",
    "fuzz_query_spec_replay",
    "fuzz_http_request_replay",
    "fuzz_flags_replay",
    "fuzz_hex_replay",
    "sies_message_format_test",
    "engine_query_spec_test",
    "ops_http_server_test",
    "fuzz_robustness_test",
]

# Unit tests run in addition to the fuzz-label replay tests. These cover
# the happy paths the corpora alone may miss (e.g. live-socket handling
# around the request parser).
EXTRA_TESTS = [
    "sies_message_format_test",
    "engine_query_spec_test",
    "ops_http_server_test",
    "fuzz_robustness_test",
]


def load_floors():
    floors = {}
    with open(FLOORS_TSV, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            source, floor = line.split("\t")
            floors[source] = float(floor)
    return floors


def find_gcda(build_dir, source):
    """Locates the .gcda for a repo-relative source file, e.g.
    src/sies/message_format.cc ->
    BUILD/src/CMakeFiles/sies_core.dir/sies/message_format.cc.gcda."""
    needle = os.path.basename(source) + ".gcda"
    rel_tail = os.path.relpath(source, "src")  # sies/message_format.cc
    hits = []
    for dirpath, _, filenames in os.walk(build_dir):
        for name in filenames:
            if name == needle:
                path = os.path.join(dirpath, name)
                if path.replace(os.sep, "/").endswith(
                        rel_tail.replace(os.sep, "/") + ".gcda"):
                    hits.append(path)
    return hits


def line_coverage(build_dir, source):
    """Returns (covered, total) executable-line counts for `source`,
    merged across every object that compiled it."""
    gcdas = find_gcda(build_dir, source)
    if not gcdas:
        return None
    covered_lines = set()
    all_lines = set()
    for gcda in gcdas:
        # gcov resolves its argument relative to cwd, so hand it the
        # basename with cwd pinned to the gcda's own directory — works
        # whether build_dir came in relative or absolute.
        out = subprocess.run(
            ["gcov", "--json-format", "--stdout", os.path.basename(gcda)],
            capture_output=True, text=True,
            cwd=os.path.dirname(os.path.abspath(gcda)), check=False)
        if out.returncode != 0:
            continue
        for doc_line in out.stdout.splitlines():
            doc_line = doc_line.strip()
            if not doc_line.startswith("{"):
                continue
            doc = json.loads(doc_line)
            for unit in doc.get("files", []):
                if not unit.get("file", "").endswith(
                        source.replace("src/", "", 1)):
                    continue
                for line in unit.get("lines", []):
                    number = line["line_number"]
                    all_lines.add(number)
                    if line["count"] > 0:
                        covered_lines.add(number)
    if not all_lines:
        return None
    return len(covered_lines), len(all_lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", help="coverage build directory")
    parser.add_argument("--report-only", action="store_true")
    parser.add_argument("--list-targets", action="store_true")
    parser.add_argument("--list-tests", action="store_true")
    args = parser.parse_args(argv)

    if args.list_targets:
        print("\n".join(TARGETS))
        return 0
    if args.list_tests:
        print("\n".join(f"^{name}$" for name in EXTRA_TESTS))
        return 0
    if not args.build:
        parser.error("--build is required unless listing")

    floors = load_floors()
    failures = []
    print(f"{'parser TU':44} {'lines':>11} {'cov%':>7} {'floor':>7}")
    for source, floor in sorted(floors.items()):
        result = line_coverage(args.build, source)
        if result is None:
            print(f"{source:44} {'-':>11} {'-':>7} {floor:>6.1f}%")
            failures.append(f"{source}: no coverage data "
                            "(TU not built or never executed)")
            continue
        covered, total = result
        percent = 100.0 * covered / total
        marker = "" if percent >= floor else "  << BELOW FLOOR"
        print(f"{source:44} {covered:>5}/{total:<5} {percent:>6.1f}% "
              f"{floor:>6.1f}%{marker}")
        if percent < floor:
            failures.append(
                f"{source}: {percent:.1f}% < floor {floor:.1f}%")
    if failures and not args.report_only:
        print("\ncoverage gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\ncoverage gate " +
          ("report only" if args.report_only else "passed"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
