#!/usr/bin/env bash
# Full local check: configure, build, run every test, example, and bench.
# Usage: scripts/check.sh [--skip-bench] [--sanitize] [--telemetry-smoke]
#   --skip-bench       skip the full (slow) bench binaries; the JSON smoke
#                      pass below always runs
#   --sanitize         build + test under ASan/UBSan (-DSIES_SANITIZE=ON) in
#                      a separate build-sanitize/ tree; implies --skip-bench
#   --telemetry-smoke  ONLY run the telemetry smoke (sies_sim with
#                      --metrics-out/--trace-out/--audit-out on a tiny
#                      topology, outputs validated with python3); the
#                      smoke also runs as part of the full check
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_BENCH=0
SANITIZE=0
TELEMETRY_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --skip-bench) SKIP_BENCH=1 ;;
    --sanitize) SANITIZE=1 ;;
    --telemetry-smoke) TELEMETRY_ONLY=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

# Runs sies_sim on a tiny 2-level/8-source topology under a tampering
# adversary with all three telemetry exports, then validates that the
# metrics/trace/audit files parse and contain what the run implies.
telemetry_smoke() {
  local build="$1" dir
  dir="$(mktemp -d)"
  echo "== telemetry smoke =="
  "./$build/examples/sies_sim" --scheme=sies --sources=8 --fanout=2 \
      --epochs=3 --threads=2 --adversary=tamper \
      --metrics-out="$dir/metrics.json" --trace-out="$dir/trace.json" \
      --audit-out="$dir/audit.json" > /dev/null
  python3 - "$dir" <<'PYEOF'
import json, sys
d = sys.argv[1]
m = json.load(open(d + "/metrics.json"))
hists = {(h["name"], h["labels"].get("phase")): h for h in m["histograms"]}
for phase in ("source_init", "merge", "evaluate"):
    assert hists[("sies_phase_seconds", phase)]["count"] > 0, phase
t = json.load(open(d + "/trace.json"))
names = {e["name"] for e in t["traceEvents"]}
assert {"source-init", "merge", "evaluate", "epoch"} <= names, names
assert len({e["tid"] for e in t["traceEvents"]}) > 1, "expected >1 thread"
a = json.load(open(d + "/audit.json"))
kinds = [e["kind"] for e in a["events"]]
assert kinds.count("tamper") > 0, "no tamper events recorded"
assert kinds.count("verification_failure") == 3, kinds
print(f"telemetry smoke OK: {len(m['counters'])} counters, "
      f"{len(t['traceEvents'])} spans, {len(a['events'])} audit events")
PYEOF
  rm -rf "$dir"
}

BUILD=build
EXTRA=()
if [[ $SANITIZE -eq 1 ]]; then
  # Sanitized objects live in their own tree so the fast build stays warm.
  BUILD=build-sanitize
  EXTRA+=(-DSIES_SANITIZE=ON)
fi

if [[ $TELEMETRY_ONLY -eq 1 ]]; then
  cmake -B "$BUILD" -G Ninja "${EXTRA[@]}"
  cmake --build "$BUILD" --target sies_sim
  telemetry_smoke "$BUILD"
  echo "TELEMETRY SMOKE PASSED"
  exit 0
fi

cmake -B "$BUILD" -G Ninja "${EXTRA[@]}"
cmake --build "$BUILD"
ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure

echo "== examples =="
for e in quickstart factory_monitoring battlefield_audit scheme_comparison \
         outsourced_aggregation climate_dashboard mixed_aggregates; do
  echo "-- $e"
  "./$BUILD/examples/$e" > /dev/null
done
"./$BUILD/examples/keygen" --sources=4 --out="$(mktemp -u)" > /dev/null
"./$BUILD/examples/sies_sim" --scheme=sies --sources=64 --epochs=2 > /dev/null
"./$BUILD/examples/sies_sim" --scheme=sies --sources=64 --epochs=2 \
    --threads=1 > /dev/null

telemetry_smoke "$BUILD"

echo "== bench smoke (JSON output) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
for b in micro_crypto fig6a_querier_vs_n telemetry_overhead; do
  echo "-- $b --smoke"
  (cd "$SMOKE_DIR" && "$OLDPWD/$BUILD/bench/$b" --smoke > /dev/null)
done
for j in "$SMOKE_DIR"/BENCH_*.json; do
  echo "-- validating $(basename "$j")"
  python3 -m json.tool "$j" > /dev/null
done

if [[ $SKIP_BENCH -eq 0 && $SANITIZE -eq 0 ]]; then
  echo "== benches =="
  for b in "$BUILD"/bench/*; do
    echo "-- $b"
    (cd "$SMOKE_DIR" && "$OLDPWD/$b" > /dev/null)
  done
fi
echo "ALL CHECKS PASSED"
