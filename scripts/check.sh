#!/usr/bin/env bash
# Full local check: configure, build, run every test, example, and bench.
# Usage: scripts/check.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" --output-on-failure

echo "== examples =="
for e in quickstart factory_monitoring battlefield_audit scheme_comparison \
         outsourced_aggregation climate_dashboard mixed_aggregates; do
  echo "-- $e"
  "./build/examples/$e" > /dev/null
done
./build/examples/keygen --sources=4 --out="$(mktemp -u)" > /dev/null
./build/examples/sies_sim --scheme=sies --sources=64 --epochs=2 > /dev/null

if [[ "${1:-}" != "--skip-bench" ]]; then
  echo "== benches =="
  for b in build/bench/*; do
    echo "-- $b"
    "$b" > /dev/null
  done
fi
echo "ALL CHECKS PASSED"
