#!/usr/bin/env bash
# Full local check: configure, build, run every test, example, and bench.
# Usage: scripts/check.sh [--skip-bench] [--sanitize]
#   --skip-bench  skip the full (slow) bench binaries; the JSON smoke
#                 pass below always runs
#   --sanitize    build + test under ASan/UBSan (-DSIES_SANITIZE=ON) in
#                 a separate build-sanitize/ tree; implies --skip-bench
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_BENCH=0
SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-bench) SKIP_BENCH=1 ;;
    --sanitize) SANITIZE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

BUILD=build
EXTRA=()
if [[ $SANITIZE -eq 1 ]]; then
  # Sanitized objects live in their own tree so the fast build stays warm.
  BUILD=build-sanitize
  EXTRA+=(-DSIES_SANITIZE=ON)
fi

cmake -B "$BUILD" -G Ninja "${EXTRA[@]}"
cmake --build "$BUILD"
ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure

echo "== examples =="
for e in quickstart factory_monitoring battlefield_audit scheme_comparison \
         outsourced_aggregation climate_dashboard mixed_aggregates; do
  echo "-- $e"
  "./$BUILD/examples/$e" > /dev/null
done
"./$BUILD/examples/keygen" --sources=4 --out="$(mktemp -u)" > /dev/null
"./$BUILD/examples/sies_sim" --scheme=sies --sources=64 --epochs=2 > /dev/null
"./$BUILD/examples/sies_sim" --scheme=sies --sources=64 --epochs=2 \
    --threads=1 > /dev/null

echo "== bench smoke (JSON output) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
for b in micro_crypto fig6a_querier_vs_n; do
  echo "-- $b --smoke"
  (cd "$SMOKE_DIR" && "$OLDPWD/$BUILD/bench/$b" --smoke > /dev/null)
done
for j in "$SMOKE_DIR"/BENCH_*.json; do
  echo "-- validating $(basename "$j")"
  python3 -m json.tool "$j" > /dev/null
done

if [[ $SKIP_BENCH -eq 0 && $SANITIZE -eq 0 ]]; then
  echo "== benches =="
  for b in "$BUILD"/bench/*; do
    echo "-- $b"
    (cd "$SMOKE_DIR" && "$OLDPWD/$b" > /dev/null)
  done
fi
echo "ALL CHECKS PASSED"
