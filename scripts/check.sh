#!/usr/bin/env bash
# Full local check: configure, build, run every test, example, and bench.
# Usage: scripts/check.sh [--skip-bench] [--sanitize] [--tsan] [--tidy]
#                         [--lint] [--telemetry-smoke] [--fault-smoke]
#                         [--engine-smoke] [--bench-smoke] [--ops-smoke]
#                         [--transport-smoke] [--predicate-smoke]
#                         [--fuzz] [--coverage]
#   --skip-bench       skip the full (slow) bench binaries; the JSON smoke
#                      pass below always runs
#   --bench-smoke      ONLY run the bench JSON smoke (tiny-N --smoke runs
#                      of the JSON-emitting benches, outputs validated
#                      with python3 and diffed against bench/baselines/
#                      by scripts/bench_compare.py — structural checks
#                      only; full bench runs get the --strict ratio
#                      gate); the smoke also runs as part of the full
#                      check
#   --sanitize         build + test under ASan/UBSan (-DSIES_SANITIZE=ON) in
#                      a separate build-sanitize/ tree; implies --skip-bench
#   --tsan             ONLY build the concurrency-sensitive test subset
#                      under ThreadSanitizer (-DSIES_TSAN=ON) in a separate
#                      build-tsan/ tree and run the race/engine/telemetry/
#                      threadpool/loss/ops ctest labels with suppressions
#                      from scripts/tsan.supp (policy: docs/DEVELOPING.md)
#   --tidy             ONLY run the static-analysis gate over src/:
#                      clang-tidy against the compile database when a
#                      clang-tidy binary exists, otherwise the strict
#                      g++ -Wshadow -Wconversion -Werror syntax-only pass
#   --lint             ONLY run the secret-hygiene linter
#                      (scripts/lint_secrets.py: self-test + full src/
#                      scan) followed by the --tidy gate; nonzero on any
#                      finding
#   --telemetry-smoke  ONLY run the telemetry smoke (sies_sim with
#                      --metrics-out/--trace-out/--audit-out on a tiny
#                      topology, outputs validated with python3); the
#                      smoke also runs as part of the full check
#   --fault-smoke      ONLY run the fault-injection smoke (sies_sim across
#                      a loss-rate x adversary matrix; exit codes, CSV
#                      coverage fields, and audit exports validated); the
#                      smoke also runs as part of the full check
#   --engine-smoke     ONLY run the multi-query engine smoke (sies_sim
#                      --queries across a K x loss-rate x adversary
#                      matrix; per-query CSV rows, dedup accounting, and
#                      tamper fault isolation validated) plus the
#                      `engine`-labeled ctest subset; the smoke also runs
#                      as part of the full check
#   --ops-smoke        ONLY run the live ops-plane smoke (sies_sim
#                      --queries with --ops-port=0 on a paced
#                      single-threaded run; every admin endpoint scraped
#                      mid-run and validated: 200s, parseable bodies,
#                      critical path <= wall, and the phase probes
#                      explaining >= 90% of the best epoch's wall); the
#                      smoke also runs as part of the full check
#   --transport-smoke  ONLY run the real-transport smoke (sies_sim
#                      --transport=udp across a loss-rate x retry
#                      matrix; every UDP CSV must equal the simulator's
#                      CSV for the same seed once the timing columns
#                      are dropped, and --pipeline must not change
#                      outcomes either); the smoke also runs as part of
#                      the full check
#   --predicate-smoke  ONLY run the predicate-compiler smoke (sies_sim
#                      with a band-query mix across a loss-rate x
#                      adversary matrix — per-query channel counts
#                      bounded by 2*ceil(log2 D), dedup accounting —
#                      plus the --histogram / --group-by demos and the
#                      grammar's inverted/strict-bound rejections) plus
#                      the `predicate`-labeled ctest subset; the smoke
#                      also runs as part of the full check
#   --fuzz             ONLY run the fuzz smoke: the `fuzz`-labeled
#                      corpus-replay ctests (committed corpora +
#                      regressions through every harness in fuzz/)
#                      followed by a short fixed-budget scripts/fuzz.sh
#                      campaign (libFuzzer when clang exists, replay
#                      fallback otherwise); the replay ctests also run
#                      as part of the full check and under --sanitize
#   --coverage         ONLY run the parser-coverage gate
#                      (scripts/coverage.sh): line coverage of the
#                      untrusted-input parser TUs measured from the
#                      committed corpora + parser unit tests must stay
#                      at or above the floors in fuzz/coverage_floors.tsv
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_BENCH=0
SANITIZE=0
TSAN_ONLY=0
TIDY_ONLY=0
LINT_ONLY=0
TELEMETRY_ONLY=0
FAULT_ONLY=0
ENGINE_ONLY=0
BENCH_SMOKE_ONLY=0
OPS_ONLY=0
TRANSPORT_ONLY=0
PREDICATE_ONLY=0
FUZZ_ONLY=0
COVERAGE_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --skip-bench) SKIP_BENCH=1 ;;
    --sanitize) SANITIZE=1 ;;
    --tsan) TSAN_ONLY=1 ;;
    --tidy) TIDY_ONLY=1 ;;
    --lint) LINT_ONLY=1 ;;
    --telemetry-smoke) TELEMETRY_ONLY=1 ;;
    --fault-smoke) FAULT_ONLY=1 ;;
    --engine-smoke) ENGINE_ONLY=1 ;;
    --bench-smoke) BENCH_SMOKE_ONLY=1 ;;
    --ops-smoke) OPS_ONLY=1 ;;
    --transport-smoke) TRANSPORT_ONLY=1 ;;
    --predicate-smoke) PREDICATE_ONLY=1 ;;
    --fuzz) FUZZ_ONLY=1 ;;
    --coverage) COVERAGE_ONLY=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

# Configures a build tree. New trees get Ninja; a tree that already has
# a cache keeps whatever generator created it (the tier-1 flow uses the
# default Makefiles generator on build/, and cmake refuses to switch
# generators in place).
configure() {
  local dir="$1"
  shift
  if [[ -f "$dir/CMakeCache.txt" ]]; then
    cmake -B "$dir" "$@"
  else
    cmake -B "$dir" -G Ninja "$@"
  fi
}

# Static-analysis gate over src/. Prefers clang-tidy (any versioned
# binary) with the tuned .clang-tidy config against the build tree's
# compile database; containers without LLVM fall back to an equally
# blocking strict-warning pass (g++ -Wshadow -Wconversion -Werror,
# syntax-only so it is fast and build-tree independent). The tree is
# kept clean under BOTH gates.
tidy_gate() {
  local tidy=""
  for candidate in clang-tidy clang-tidy-{21,20,19,18,17,16,15,14}; do
    if command -v "$candidate" > /dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
  mapfile -t sources < <(find src -name '*.cc' | sort)
  if [[ -n "$tidy" ]]; then
    echo "== clang-tidy gate ($tidy, ${#sources[@]} files) =="
    configure build > /dev/null
    "$tidy" -p build --quiet --warnings-as-errors='*' "${sources[@]}"
  else
    echo "== tidy gate: clang-tidy not installed; strict g++ fallback" \
         "(${#sources[@]} files) =="
    local failed=0
    for f in "${sources[@]}"; do
      g++ -std=c++20 -Isrc -fsyntax-only \
          -Wall -Wextra -Wshadow -Wconversion -Werror "$f" || failed=1
    done
    if [[ $failed -ne 0 ]]; then
      echo "tidy gate FAILED" >&2
      return 1
    fi
  fi
  echo "tidy gate OK"
}

# Runs sies_sim on a tiny 2-level/8-source topology under a tampering
# adversary with all three telemetry exports, then validates that the
# metrics/trace/audit files parse and contain what the run implies.
telemetry_smoke() {
  local build="$1" dir
  dir="$(mktemp -d)"
  echo "== telemetry smoke =="
  "./$build/examples/sies_sim" --scheme=sies --sources=8 --fanout=2 \
      --epochs=3 --threads=2 --adversary=tamper \
      --metrics-out="$dir/metrics.json" --trace-out="$dir/trace.json" \
      --audit-out="$dir/audit.json" > /dev/null
  python3 - "$dir" <<'PYEOF'
import json, sys
d = sys.argv[1]
m = json.load(open(d + "/metrics.json"))
hists = {(h["name"], h["labels"].get("phase")): h for h in m["histograms"]}
for phase in ("source_init", "merge", "evaluate"):
    assert hists[("sies_phase_seconds", phase)]["count"] > 0, phase
t = json.load(open(d + "/trace.json"))
names = {e["name"] for e in t["traceEvents"]}
assert {"source-init", "merge", "evaluate", "epoch"} <= names, names
assert len({e["tid"] for e in t["traceEvents"]}) > 1, "expected >1 thread"
a = json.load(open(d + "/audit.json"))
kinds = [e["kind"] for e in a["events"]]
assert kinds.count("tamper") > 0, "no tamper events recorded"
assert kinds.count("verification_failure") == 3, kinds
print(f"telemetry smoke OK: {len(m['counters'])} counters, "
      f"{len(t['traceEvents'])} spans, {len(a['events'])} audit events")
PYEOF
  rm -rf "$dir"
}

# Runs sies_sim across the loss-rate x adversary matrix with the audit
# trail exported, then validates exit codes and the loss-resilience
# fields: answered/unanswered/partial bookkeeping, coverage bounds,
# exact partial sums (rel_err 0), and that pure radio loss is never
# audited as tampering.
fault_smoke() {
  local build="$1" dir rc loss adversary
  dir="$(mktemp -d)"
  echo "== fault smoke (loss-rate x adversary matrix) =="
  for loss in 0 0.3 1.0; do
    for adversary in none tamper drop; do
      rc=0
      "./$build/examples/sies_sim" --scheme=sies --sources=16 --fanout=4 \
          --epochs=20 --seed=5 --loss-rate="$loss" --max-retries=2 \
          --adversary="$adversary" --csv \
          --audit-out="$dir/$loss-$adversary.audit.json" \
          > "$dir/$loss-$adversary.csv" || rc=$?
      if [[ $rc -ne 0 ]]; then
        echo "sies_sim --loss-rate=$loss --adversary=$adversary exited $rc" >&2
        exit 1
      fi
    done
  done
  python3 - "$dir" <<'PYEOF'
import csv, json, sys
d = sys.argv[1]

def load(loss, adversary):
    with open(f"{d}/{loss}-{adversary}.csv") as f:
        row = next(csv.DictReader(f))
    with open(f"{d}/{loss}-{adversary}.audit.json") as f:
        kinds = [e["kind"] for e in json.load(f)["events"]]
    return row, kinds

for loss in ("0", "0.3", "1.0"):
    for adversary in ("none", "tamper", "drop"):
        row, kinds = load(loss, adversary)
        answered, unanswered = int(row["answered"]), int(row["unanswered"])
        partial, coverage = int(row["partial"]), float(row["coverage"])
        epochs = int(row["epochs"])
        label = f"loss={loss} adversary={adversary}"
        assert answered + unanswered == epochs, label
        assert 0.0 <= coverage <= 1.0, label
        if adversary == "none":
            # Graceful degradation: partial sums verify and stay exact
            # over their contributor sets at every loss rate.
            assert int(row["verified"]) == 1, label
            assert float(row["rel_err"]) == 0.0, label
            assert "tamper" not in kinds, label
            assert "verification_failure" not in kinds, label
        if loss == "0":
            assert unanswered == 0 and int(row["lost"]) == 0, label
            assert "radio_loss" not in kinds, label
        if loss == "0" and adversary == "none":
            assert coverage == 1.0 and partial == 0, label
        if loss == "0.3" and adversary == "none":
            assert partial > 0 and "reported_loss" in kinds, label
            assert int(row["retransmits"]) > 0, label
        if loss == "1.0":
            assert answered == 0 and coverage == 0.0, label
        if adversary == "tamper" and loss == "0":
            assert "tamper" in kinds and "verification_failure" in kinds, label
        if adversary == "drop" and loss == "0":
            # An in-flight drop is attributed to the adversary and
            # surfaces as reported loss, never as radio loss.
            assert "adversary_drop" in kinds, label
            assert "reported_loss" in kinds, label
print("fault smoke OK: 9 matrix cells validated")
PYEOF
  rm -rf "$dir"
}

# Runs sies_sim in multi-query engine mode across a K x loss-rate x
# adversary matrix, then validates the per-query CSV rows: one row per
# query, dedup strictly beating the naive channel accounting for K > 1,
# loss degrading coverage (never verification), and the trailing-bit
# tamper failing exactly the queries that read the corrupted channel.
engine_smoke() {
  local build="$1" dir rc k loss adversary
  dir="$(mktemp -d)"
  echo "== engine smoke (K x loss-rate x adversary matrix) =="
  for k in 1 4; do
    for loss in 0 0.3; do
      for adversary in none tamper; do
        rc=0
        "./$build/examples/sies_sim" --queries="$k" --sources=16 --fanout=4 \
            --epochs=10 --seed=5 --loss-rate="$loss" --max-retries=2 \
            --adversary="$adversary" --csv \
            > "$dir/$k-$loss-$adversary.csv" || rc=$?
        if [[ $rc -ne 0 ]]; then
          echo "sies_sim --queries=$k --loss-rate=$loss" \
               "--adversary=$adversary exited $rc" >&2
          exit 1
        fi
      done
    done
  done
  "./$build/examples/sies_sim" --queries=0 --sources=16 --epochs=1 \
      > /dev/null 2>&1 && { echo "--queries=0 must be rejected" >&2; exit 1; }
  python3 - "$dir" <<'PYEOF'
import csv, sys
d = sys.argv[1]

def load(k, loss, adversary):
    with open(f"{d}/{k}-{loss}-{adversary}.csv") as f:
        return list(csv.DictReader(f))

for k in (1, 4):
    for loss in ("0", "0.3"):
        for adversary in ("none", "tamper"):
            rows = load(k, loss, adversary)
            label = f"K={k} loss={loss} adversary={adversary}"
            assert len(rows) == k, label
            ch = int(rows[0]["channel_epochs"])
            naive = int(rows[0]["naive_channel_epochs"])
            # Dedup accounting: a lone query has nothing to share; any
            # K > 1 mix of the default cycle MUST save channel-epochs.
            assert (ch < naive) if k > 1 else (ch == naive), label
            for row in rows:
                answered = int(row["answered"])
                assert answered <= int(row["epochs"]), label
                assert 0.0 <= float(row["coverage"]) <= 1.0, label
                if adversary == "none":
                    # Loss degrades coverage, never verification.
                    assert int(row["unverified"]) == 0, label
                if loss == "0":
                    assert answered == int(row["epochs"]), label
                    if adversary == "none":
                        assert float(row["coverage"]) == 1.0, label
            if k == 4 and loss == "0" and adversary == "tamper":
                # Wire order: (q0,SUM),(q0,COUNT),(q1,SUMSQ); the
                # trailing-bit tamper corrupts the SUMSQ slot, failing
                # exactly the queries that read it (VARIANCE, STDDEV).
                verdicts = {int(r["query_id"]): int(r["verified"])
                            for r in rows}
                assert verdicts[1] == 0 and verdicts[2] == 0, verdicts
                assert verdicts[0] > 0 and verdicts[3] > 0, verdicts
print("engine smoke OK: 8 matrix cells validated")
PYEOF
  rm -rf "$dir"
}

# The real-transport determinism contract: a UDP run (loss injected
# sender-side, BEFORE the socket) must reproduce the simulator's CSV
# bit-for-bit for the same seed — only the timing columns (src_us,
# agg_us, qry_ms) may differ. Checked across a loss-rate x retry
# matrix, and once more with --pipeline on top of UDP.
transport_smoke() {
  local build="$1" dir loss retries
  dir="$(mktemp -d)"
  echo "== transport smoke (sim vs udp CSV diff) =="
  for loss in 0 0.3; do
    for retries in 0 2; do
      "./$build/examples/sies_sim" --queries=2 --sources=16 --fanout=4 \
          --epochs=8 --seed=5 --loss-rate="$loss" --max-retries="$retries" \
          --csv > "$dir/sim-$loss-$retries.csv"
      "./$build/examples/sies_sim" --queries=2 --sources=16 --fanout=4 \
          --epochs=8 --seed=5 --loss-rate="$loss" --max-retries="$retries" \
          --transport=udp --csv > "$dir/udp-$loss-$retries.csv"
    done
  done
  "./$build/examples/sies_sim" --queries=2 --sources=16 --fanout=4 \
      --epochs=8 --seed=5 --loss-rate=0.3 --max-retries=2 \
      --transport=udp --pipeline --csv > "$dir/pipelined.csv"
  # --transport=udp and --pipeline are engine-mode features; the legacy
  # single-query path must reject them instead of silently simulating.
  "./$build/examples/sies_sim" --scheme=sies --sources=16 --epochs=1 \
      --transport=udp > /dev/null 2>&1 \
      && { echo "--transport=udp without --queries must be rejected" >&2
           exit 1; }
  python3 - "$dir" <<'PYEOF'
import csv, sys
d = sys.argv[1]
TIMING = {"src_us", "agg_us", "qry_ms"}

def semantic(path):
    with open(f"{d}/{path}") as f:
        return [{k: v for k, v in row.items() if k not in TIMING}
                for row in csv.DictReader(f)]

for loss in ("0", "0.3"):
    for retries in ("0", "2"):
        sim = semantic(f"sim-{loss}-{retries}.csv")
        udp = semantic(f"udp-{loss}-{retries}.csv")
        assert sim and sim == udp, \
            f"udp diverged from sim at loss={loss} retries={retries}"
# Pipelining is a latency optimization; outcomes stay bit-identical.
assert semantic("pipelined.csv") == semantic("sim-0.3-2.csv"), \
    "pipelined udp run diverged from the serial simulator"
print("transport smoke OK: 4 loss x retry cells + pipelined run "
      "bit-identical to sim")
PYEOF
  rm -rf "$dir"
}

# Compiled range queries end-to-end: a band-query mix across a
# loss-rate x adversary matrix (per-query CSV channel counts bounded by
# 2*ceil(log2 D), dyadic-node dedup strictly beating the naive layout),
# the --histogram and --group-by demos with every cell verified, and
# the grammar's distinct inverted/strict-bound rejections.
predicate_smoke() {
  local build="$1" dir rc loss adversary bad
  dir="$(mktemp -d)"
  echo "== predicate smoke (band mix x loss x adversary matrix) =="
  cat > "$dir/bands.txt" <<'EOF'
count temperature where 20 <= temperature <= 30
count temperature where 20 <= temperature <= 35
avg humidity between 35 and 55
sum temperature
EOF
  for loss in 0 0.3; do
    for adversary in none tamper; do
      rc=0
      "./$build/examples/sies_sim" --queries-file="$dir/bands.txt" \
          --sources=16 --fanout=4 --epochs=8 --seed=5 \
          --loss-rate="$loss" --max-retries=2 --adversary="$adversary" \
          --csv > "$dir/$loss-$adversary.csv" || rc=$?
      if [[ $rc -ne 0 ]]; then
        echo "sies_sim band mix --loss-rate=$loss --adversary=$adversary" \
             "exited $rc" >&2
        exit 1
      fi
    done
  done
  "./$build/examples/sies_sim" --histogram=temperature:20:30:8 \
      --sources=32 --epochs=6 --seed=5 > "$dir/histogram.txt"
  "./$build/examples/sies_sim" --group-by=avg:temperature:humidity:30:60:4 \
      --sources=32 --epochs=6 --seed=5 > "$dir/groupby.txt"
  # The grammar's rejections must fail loudly, not run a wrong query.
  for bad in "sum temperature where 30 <= temperature <= 20" \
             "sum temperature where 20 < temperature <= 30"; do
    echo "$bad" > "$dir/bad.txt"
    if "./$build/examples/sies_sim" --queries-file="$dir/bad.txt" \
        --sources=16 --epochs=1 > /dev/null 2>&1; then
      echo "malformed band must be rejected: $bad" >&2
      exit 1
    fi
  done
  python3 - "$dir" <<'PYEOF'
import csv, math, sys
d = sys.argv[1]
# Scaled (10^-2) domain sizes of the three band queries, and how many
# channel kinds each aggregate reads (AVG = SUM + COUNT).
bands = {0: (1001, 1), 1: (1501, 1), 2: (2001, 2)}
for loss in ("0", "0.3"):
    for adversary in ("none", "tamper"):
        with open(f"{d}/{loss}-{adversary}.csv") as f:
            rows = list(csv.DictReader(f))
        label = f"loss={loss} adversary={adversary}"
        assert len(rows) == 4, label
        ch = int(rows[0]["channel_epochs"])
        naive = int(rows[0]["naive_channel_epochs"])
        # The overlapping [20,30]/[20,35] COUNT bands share dyadic
        # prefix nodes: the engine MUST beat per-query compilation.
        assert ch < naive, (label, ch, naive)
        for row in rows:
            qid = int(row["query_id"])
            channels = int(row["channels"])
            if qid in bands:
                domain, kinds = bands[qid]
                cap = kinds * 2 * math.ceil(math.log2(domain))
                assert 0 < channels <= cap, (label, qid, channels, cap)
            else:
                assert channels == 1, (label, qid)  # plain SUM
            if adversary == "none":
                assert int(row["unverified"]) == 0, label
            if loss == "0" and adversary == "none":
                assert float(row["coverage"]) == 1.0, label
hist = open(f"{d}/histogram.txt").read()
assert "all cells verified" in hist and "quantiles" in hist, "histogram"
assert "BAD" not in hist, "histogram has unverified cells"
gb = open(f"{d}/groupby.txt").read()
assert "all cells verified" in gb and "BAD" not in gb, "group-by"
print("predicate smoke OK: 4 matrix cells + histogram/GROUP-BY demos "
      "validated")
PYEOF
  rm -rf "$dir"
}

# Tiny-N (--smoke) runs of every JSON-emitting bench, outputs validated
# as parseable JSON and diffed against the committed baselines by the
# regression gate (structural mode: schema, metric presence, boolean
# invariants — smoke timings are too noisy for value comparison). The
# smoke catches broken bench plumbing in seconds; the committed
# baselines are regenerated by scripts/bench.sh instead.
bench_smoke() {
  local build="$1" dir b j
  dir="$(mktemp -d)"
  echo "== bench smoke (JSON output) =="
  for b in micro_crypto fig6a_querier_vs_n telemetry_overhead \
           engine_multiquery batched_crypto transport_pipeline \
           predicate_ranges; do
    echo "-- $b --smoke"
    (cd "$dir" && "$OLDPWD/$build/bench/$b" --smoke > /dev/null)
  done
  for j in "$dir"/BENCH_*.json; do
    echo "-- validating $(basename "$j")"
    python3 -m json.tool "$j" > /dev/null
  done
  echo "-- bench_compare (structural) vs bench/baselines"
  python3 scripts/bench_compare.py "$dir" > /dev/null
  rm -rf "$dir"
}

# Boots sies_sim's live ops plane on an ephemeral port and scrapes every
# admin endpoint mid-run. The run is paced (--epoch-ms) and
# single-threaded so wall time is meaningful: beyond the 200/parse
# checks, the epoch timeline must satisfy critical <= wall on every
# record and the phase probes must explain >= 90% of the wall on the
# best-attributed epoch.
ops_smoke() {
  local build="$1" dir port sim_pid
  dir="$(mktemp -d)"
  echo "== ops smoke (live admin server scrape) =="
  "./$build/examples/sies_sim" --queries=4 --sources=64 --epochs=40 \
      --threads=1 --epoch-ms=50 --seed=5 --ops-port=0 \
      > "$dir/stdout" 2> "$dir/stderr" &
  sim_pid=$!
  # The sim announces the kernel-assigned port on stderr once bound.
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's|^ops: serving http://127\.0\.0\.1:||p' "$dir/stderr")"
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "ops smoke: server never announced its port" >&2
    cat "$dir/stderr" >&2
    kill "$sim_pid" 2> /dev/null || true
    exit 1
  fi
  if ! python3 - "$port" <<'PYEOF'
import json, sys, time, urllib.error, urllib.request

port = sys.argv[1]
base = f"http://127.0.0.1:{port}"

def get(path):
    try:
        with urllib.request.urlopen(base + path, timeout=5) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()

status, body = get("/healthz")
assert status == 200 and body.strip() == "ok", (status, body)

# Readiness flips once epoch 1 finishes (keys warm) and stays fresh.
for _ in range(100):
    status, body = get("/readyz")
    if status == 200:
        break
    time.sleep(0.05)
assert status == 200, (status, body)
ready = json.loads(body)
assert ready["ready"] is True, ready

status, body = get("/queries")
assert status == 200, (status, body)
queries = json.loads(body)
assert queries["count"] == 4, queries
for q in queries["queries"]:
    assert q["slots"], q

# Scrape /metrics twice: the first response must be visible as a
# counted 200 in the second (the server observes itself).
status, body = get("/metrics")
assert status == 200 and "# TYPE" in body, (status, body[:200])
status, body = get("/metrics")
assert 'ops_http_responses_total{code="200"}' in body, body[:400]

status, body = get("/nope")
assert status == 404, (status, body)

# Let a few paced epochs land, then check the timeline arithmetic.
time.sleep(0.5)
status, body = get("/epochs?last=16")
assert status == 200, (status, body)
timeline = json.loads(body)
epochs = timeline["epochs"]
assert epochs, timeline
best = 0.0
for rec in epochs:
    wall = rec["wall_seconds"]
    attributed = rec["attributed_seconds"]
    critical = rec["critical_path_seconds"]
    assert wall > 0.0, rec
    assert 0.0 < critical <= wall, rec
    assert critical <= attributed, rec
    assert rec["verified"] is True, rec
    assert rec["tampered_channels"] == 0, rec
    assert sum(p["total_seconds"] for p in rec["phases"]) > 0.0, rec
    best = max(best, attributed / wall)
assert best >= 0.9, f"best attribution {best:.3f} < 0.9 of wall"
print(f"ops smoke OK: {len(epochs)} epochs scraped, "
      f"best attribution {100.0 * best:.1f}% of wall")
PYEOF
  then
    echo "ops smoke FAILED" >&2
    kill "$sim_pid" 2> /dev/null || true
    exit 1
  fi
  if ! wait "$sim_pid"; then
    echo "ops smoke: sies_sim exited nonzero" >&2
    cat "$dir/stderr" >&2
    exit 1
  fi
  rm -rf "$dir"
}

BUILD=build
EXTRA=()
if [[ $SANITIZE -eq 1 ]]; then
  # Sanitized objects live in their own tree so the fast build stays warm.
  BUILD=build-sanitize
  EXTRA+=(-DSIES_SANITIZE=ON)
fi

if [[ $TIDY_ONLY -eq 1 ]]; then
  tidy_gate
  echo "TIDY GATE PASSED"
  exit 0
fi

if [[ $LINT_ONLY -eq 1 ]]; then
  echo "== secret-hygiene linter =="
  python3 scripts/lint_secrets.py --self-test
  # No path args: the linter's default roots (src/, bench/, examples/).
  python3 scripts/lint_secrets.py
  tidy_gate
  echo "LINT GATE PASSED"
  exit 0
fi

if [[ $FUZZ_ONLY -eq 1 ]]; then
  configure "$BUILD" "${EXTRA[@]}"
  cmake --build "$BUILD" --target fuzz_wire_envelope_replay \
      fuzz_datagram_replay fuzz_query_spec_replay fuzz_http_request_replay \
      fuzz_flags_replay fuzz_hex_replay
  echo "== fuzz smoke: corpus-replay ctests =="
  ctest --test-dir "$BUILD" -L fuzz --output-on-failure
  echo "== fuzz smoke: short campaign (fixed 10s budget) =="
  scripts/fuzz.sh --time 10
  echo "FUZZ SMOKE PASSED"
  exit 0
fi

if [[ $COVERAGE_ONLY -eq 1 ]]; then
  scripts/coverage.sh
  echo "COVERAGE GATE PASSED"
  exit 0
fi

if [[ $TSAN_ONLY -eq 1 ]]; then
  # TSan objects live in their own tree; only the concurrency-sensitive
  # test subset is built (the full suite under TSan is needlessly slow).
  BUILD=build-tsan
  configure "$BUILD" -DSIES_TSAN=ON
  cmake --build "$BUILD" --target sies_sim \
      race_stress_test pool_oversubscription_test thread_pool_test \
      loss_resilience_test \
      telemetry_metrics_test telemetry_trace_test telemetry_audit_test \
      telemetry_integration_test telemetry_epoch_timeline_test \
      engine_channel_plan_test \
      engine_query_registry_test engine_differential_test \
      engine_epoch_scheduler_test engine_query_spec_test \
      engine_pipeline_test \
      ops_http_server_test ops_admin_server_test ops_integration_test \
      transport_test transport_differential_test \
      fuzz_wire_envelope_replay fuzz_datagram_replay fuzz_query_spec_replay \
      fuzz_http_request_replay fuzz_flags_replay fuzz_hex_replay
  echo "== TSan run (labels: race engine telemetry threadpool loss ops net" \
       "predicate fuzz) =="
  TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
      ctest --test-dir "$BUILD" \
            -L 'race|engine|telemetry|threadpool|loss|ops|net|predicate|fuzz' \
            --output-on-failure
  echo "TSAN CHECKS PASSED"
  exit 0
fi

if [[ $TELEMETRY_ONLY -eq 1 ]]; then
  configure "$BUILD" "${EXTRA[@]}"
  cmake --build "$BUILD" --target sies_sim
  telemetry_smoke "$BUILD"
  echo "TELEMETRY SMOKE PASSED"
  exit 0
fi

if [[ $FAULT_ONLY -eq 1 ]]; then
  configure "$BUILD" "${EXTRA[@]}"
  cmake --build "$BUILD" --target sies_sim
  fault_smoke "$BUILD"
  echo "FAULT SMOKE PASSED"
  exit 0
fi

if [[ $BENCH_SMOKE_ONLY -eq 1 ]]; then
  configure "$BUILD" "${EXTRA[@]}"
  cmake --build "$BUILD" --target micro_crypto fig6a_querier_vs_n \
      telemetry_overhead engine_multiquery batched_crypto \
      transport_pipeline predicate_ranges
  bench_smoke "$BUILD"
  echo "BENCH SMOKE PASSED"
  exit 0
fi

if [[ $OPS_ONLY -eq 1 ]]; then
  configure "$BUILD" "${EXTRA[@]}"
  cmake --build "$BUILD" --target sies_sim
  ops_smoke "$BUILD"
  echo "OPS SMOKE PASSED"
  exit 0
fi

if [[ $TRANSPORT_ONLY -eq 1 ]]; then
  configure "$BUILD" "${EXTRA[@]}"
  cmake --build "$BUILD" --target sies_sim
  transport_smoke "$BUILD"
  echo "TRANSPORT SMOKE PASSED"
  exit 0
fi

if [[ $ENGINE_ONLY -eq 1 ]]; then
  configure "$BUILD" "${EXTRA[@]}"
  cmake --build "$BUILD"
  ctest --test-dir "$BUILD" -L engine --output-on-failure
  engine_smoke "$BUILD"
  echo "ENGINE SMOKE PASSED"
  exit 0
fi

if [[ $PREDICATE_ONLY -eq 1 ]]; then
  configure "$BUILD" "${EXTRA[@]}"
  cmake --build "$BUILD"
  ctest --test-dir "$BUILD" -L predicate --output-on-failure
  predicate_smoke "$BUILD"
  echo "PREDICATE SMOKE PASSED"
  exit 0
fi

configure "$BUILD" "${EXTRA[@]}"
cmake --build "$BUILD"
ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure

echo "== examples =="
for e in quickstart factory_monitoring battlefield_audit scheme_comparison \
         outsourced_aggregation climate_dashboard mixed_aggregates; do
  echo "-- $e"
  "./$BUILD/examples/$e" > /dev/null
done
"./$BUILD/examples/keygen" --sources=4 --out="$(mktemp -u)" > /dev/null
"./$BUILD/examples/sies_sim" --scheme=sies --sources=64 --epochs=2 > /dev/null
"./$BUILD/examples/sies_sim" --scheme=sies --sources=64 --epochs=2 \
    --threads=1 > /dev/null

telemetry_smoke "$BUILD"
fault_smoke "$BUILD"
engine_smoke "$BUILD"
ops_smoke "$BUILD"
transport_smoke "$BUILD"
predicate_smoke "$BUILD"

bench_smoke "$BUILD"

# Parser-coverage gate: the committed corpora must keep exercising the
# untrusted-input TUs (floors in fuzz/coverage_floors.tsv). Skipped in
# the sanitized pass — the gate owns its own instrumented tree.
if [[ $SANITIZE -eq 0 ]]; then
  scripts/coverage.sh
fi

if [[ $SKIP_BENCH -eq 0 && $SANITIZE -eq 0 ]]; then
  echo "== benches =="
  RUN_DIR="$(mktemp -d)"
  trap 'rm -rf "$RUN_DIR"' EXIT
  for b in "$BUILD"/bench/*; do
    echo "-- $b"
    (cd "$RUN_DIR" && "$OLDPWD/$b" > /dev/null)
  done
  echo "== bench_compare (--strict) vs bench/baselines =="
  python3 scripts/bench_compare.py --strict "$RUN_DIR" > /dev/null
fi
echo "ALL CHECKS PASSED"
