#!/usr/bin/env python3
"""Bench-regression gate: diff fresh BENCH_*.json against the committed
baselines in bench/baselines/.

Two modes share the same row-matching machinery:

  default (structural)  Every fresh bench with a committed baseline must
                        keep the same schema version, expose every metric
                        the baseline row has (finite numbers, no NaN/inf),
                        and hold every boolean invariant the baseline
                        holds (guard_met, all_verified, ...). Values are
                        NOT compared — smoke runs and cold containers are
                        too noisy for that. This is what check.sh's bench
                        smoke runs.

  --strict              Additionally compares numeric metrics row-by-row
                        with per-metric ratio tolerances: lower-is-better
                        metrics (*_ns/_us/_ms, *_pct) may regress up to
                        --slack x baseline; higher-is-better metrics
                        (speedup*) may drop to baseline / --slack.
                        Neutral metrics (counts such as channel_epochs)
                        must match exactly. For full bench runs only.

Rows are matched by a per-bench key column (op / n / kind / k); benches
whose baseline has a single keyless row (telemetry_overhead) match by
position. Fresh runs may have FEWER rows than the baseline (a smoke run
sweeps fewer points); a baseline row with no fresh counterpart is
reported but never fails the gate. A fresh bench with no baseline is
skipped — baselines are opt-in via bench/baselines/.

Output: one human line per bench on stderr, a machine-readable JSON
verdict on stdout (or --json-out FILE). Exit 0 on PASS, 1 on FAIL,
2 on usage/IO errors.

Usage:
  scripts/bench_compare.py RUN_DIR [--baseline-dir bench/baselines]
                           [--strict] [--slack 2.5] [--json-out FILE]
"""

import argparse
import json
import math
import os
import sys

# Row-identity column per bench. Benches absent here match by position,
# which is only sound for single-row reports.
KEY_COLUMNS = {
    "micro_crypto": "op",
    "fig6a_querier_vs_n": "n",
    "fig6b_querier_vs_domain": "domain_pow10",
    "batched_crypto": "kind",
    "engine_multiquery": "k",
    "transport": "mode",
    "predicate": "range",
}

# Metrics that must match exactly under --strict (determinism claims,
# not timings). Everything else numeric is classified by suffix.
EXACT_METRICS = {
    "channel_epochs",
    "naive_channel_epochs",
    "sessions_channel_epochs",
    "pairs",
    "reps",
}

LOWER_IS_BETTER_SUFFIXES = ("_ns", "_us", "_ms", "_seconds", "_pct")
HIGHER_IS_BETTER_PREFIXES = ("speedup",)
# Counters that legitimately drift between runs (cache warm-up order,
# pool scheduling) and noise-differencing ratios whose contract is
# already a guard boolean (guard_met / ops_guard_met); never
# value-compared.
IGNORED_SUFFIXES = ("_hits", "_misses", "_jobs", "_depth_peak",
                    "overhead_pct")


def classify(metric):
    """'lower' | 'higher' | 'exact' | 'ignore' for a numeric metric."""
    if metric in EXACT_METRICS:
        return "exact"
    if metric.endswith(IGNORED_SUFFIXES):
        return "ignore"
    if metric.startswith(HIGHER_IS_BETTER_PREFIXES) or metric.endswith(
            "_speedup"):
        return "higher"
    if metric.endswith(LOWER_IS_BETTER_SUFFIXES):
        return "lower"
    return "ignore"


def load_report(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    for field in ("bench", "rows"):
        if field not in doc:
            raise ValueError(f"{path}: missing '{field}'")
    return doc


def row_key(bench, row):
    column = KEY_COLUMNS.get(bench)
    return row.get(column) if column else None


def compare_rows(bench, key, base_row, fresh_row, strict, slack):
    """Yields failure dicts for one matched row pair."""
    where = f"{bench}[{key}]" if key is not None else bench
    for metric, base_value in base_row.items():
        if metric == KEY_COLUMNS.get(bench):
            continue
        if metric not in fresh_row:
            yield {"bench": bench, "row": key, "metric": metric,
                   "kind": "missing_metric",
                   "detail": f"{where}: baseline metric absent from fresh run"}
            continue
        fresh_value = fresh_row[metric]
        if isinstance(base_value, bool):
            # A boolean invariant the baseline holds must keep holding;
            # a baseline False (e.g. a guard that was failing) places no
            # obligation on the fresh run.
            if base_value and fresh_value is not True:
                yield {"bench": bench, "row": key, "metric": metric,
                       "kind": "invariant_broken",
                       "detail": f"{where}: {metric} was true in baseline, "
                                 f"got {fresh_value!r}"}
            continue
        if isinstance(base_value, (int, float)):
            if not isinstance(fresh_value, (int, float)) or isinstance(
                    fresh_value, bool) or not math.isfinite(fresh_value):
                yield {"bench": bench, "row": key, "metric": metric,
                       "kind": "not_finite",
                       "detail": f"{where}: {metric} = {fresh_value!r}"}
                continue
            if not strict:
                continue
            direction = classify(metric)
            if direction == "ignore":
                continue
            if direction == "exact":
                if fresh_value != base_value:
                    yield {"bench": bench, "row": key, "metric": metric,
                           "kind": "exact_mismatch",
                           "detail": f"{where}: {metric} {base_value} -> "
                                     f"{fresh_value}"}
                continue
            if base_value <= 0:
                continue  # ratio undefined; structural checks already ran
            ratio = fresh_value / base_value
            if direction == "lower" and ratio > slack:
                yield {"bench": bench, "row": key, "metric": metric,
                       "kind": "regression",
                       "detail": f"{where}: {metric} {base_value:.6g} -> "
                                 f"{fresh_value:.6g} ({ratio:.2f}x, "
                                 f"slack {slack:g}x)"}
            elif direction == "higher" and ratio < 1.0 / slack:
                yield {"bench": bench, "row": key, "metric": metric,
                       "kind": "regression",
                       "detail": f"{where}: {metric} {base_value:.6g} -> "
                                 f"{fresh_value:.6g} ({ratio:.2f}x, floor "
                                 f"{1.0 / slack:.2f}x)"}


def compare_bench(name, baseline, fresh, strict, slack):
    """Returns the per-bench verdict dict."""
    failures = []
    unmatched = []
    if baseline.get("schema") != fresh.get("schema"):
        failures.append({
            "bench": name, "row": None, "metric": "schema",
            "kind": "schema_mismatch",
            "detail": f"{name}: schema {baseline.get('schema')} -> "
                      f"{fresh.get('schema')}"})
    column = KEY_COLUMNS.get(name)
    if column:
        fresh_by_key = {row_key(name, r): r for r in fresh["rows"]}
        pairs = [(row_key(name, b), b, fresh_by_key.get(row_key(name, b)))
                 for b in baseline["rows"]]
    else:
        pairs = [(i if len(baseline["rows"]) > 1 else None, b,
                  fresh["rows"][i] if i < len(fresh["rows"]) else None)
                 for i, b in enumerate(baseline["rows"])]
    matched = 0
    for key, base_row, fresh_row in pairs:
        if fresh_row is None:
            unmatched.append(key)
            continue
        matched += 1
        failures.extend(
            compare_rows(name, key, base_row, fresh_row, strict, slack))
    return {
        "bench": name,
        "baseline_rows": len(baseline["rows"]),
        "fresh_rows": len(fresh["rows"]),
        "matched_rows": matched,
        "unmatched_baseline_rows": unmatched,
        "failures": failures,
    }


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff fresh BENCH_*.json against committed baselines.")
    parser.add_argument("run_dir", help="directory holding fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default=None,
                        help="baseline directory (default: bench/baselines "
                             "next to this script's repo)")
    parser.add_argument("--strict", action="store_true",
                        help="also compare numeric metrics with ratio "
                             "tolerances (full runs only)")
    parser.add_argument("--slack", type=float, default=2.5,
                        help="allowed regression factor under --strict "
                             "(default 2.5; containers are noisy)")
    parser.add_argument("--json-out", default=None,
                        help="write the JSON verdict here instead of stdout")
    args = parser.parse_args(argv)

    baseline_dir = args.baseline_dir
    if baseline_dir is None:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baseline_dir = os.path.join(repo, "bench", "baselines")
    if not os.path.isdir(args.run_dir):
        print(f"bench_compare: no such run dir: {args.run_dir}",
              file=sys.stderr)
        return 2
    if args.slack <= 1.0:
        print("bench_compare: --slack must be > 1.0", file=sys.stderr)
        return 2

    fresh_files = sorted(f for f in os.listdir(args.run_dir)
                         if f.startswith("BENCH_") and f.endswith(".json"))
    if not fresh_files:
        print(f"bench_compare: no BENCH_*.json in {args.run_dir}",
              file=sys.stderr)
        return 2

    benches = []
    skipped = []
    for fname in fresh_files:
        try:
            fresh = load_report(os.path.join(args.run_dir, fname))
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"bench_compare: unreadable fresh report: {err}",
                  file=sys.stderr)
            return 2
        base_path = os.path.join(baseline_dir, fname)
        if not os.path.exists(base_path):
            skipped.append(fresh["bench"])
            continue
        try:
            baseline = load_report(base_path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"bench_compare: unreadable baseline: {err}",
                  file=sys.stderr)
            return 2
        benches.append(compare_bench(fresh["bench"], baseline, fresh,
                                     args.strict, args.slack))

    total_failures = sum(len(b["failures"]) for b in benches)
    verdict = {
        "verdict": "PASS" if total_failures == 0 else "FAIL",
        "strict": args.strict,
        "slack": args.slack,
        "baseline_dir": baseline_dir,
        "benches_compared": len(benches),
        "benches_skipped_no_baseline": skipped,
        "failures": total_failures,
        "benches": benches,
    }

    for b in benches:
        status = "OK" if not b["failures"] else f"{len(b['failures'])} FAIL"
        extra = ""
        if b["unmatched_baseline_rows"]:
            extra = (f", {len(b['unmatched_baseline_rows'])} baseline "
                     f"row(s) not in fresh run (tolerated)")
        print(f"bench_compare: {b['bench']}: {b['matched_rows']}/"
              f"{b['baseline_rows']} rows matched{extra}: {status}",
              file=sys.stderr)
        for failure in b["failures"]:
            print(f"bench_compare:   {failure['detail']}", file=sys.stderr)
    if skipped:
        print(f"bench_compare: no baseline for: {', '.join(skipped)}",
              file=sys.stderr)

    payload = json.dumps(verdict, indent=2) + "\n"
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            f.write(payload)
    else:
        sys.stdout.write(payload)
    return 0 if total_failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
