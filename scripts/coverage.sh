#!/usr/bin/env bash
# Parser-coverage gate: fails if the fuzz corpus + parser unit tests
# stop covering the untrusted-input TUs.
#
#   scripts/coverage.sh [--report-only]
#
# Builds build-coverage/ with gcc's --coverage instrumentation, runs
# the fuzz-label replay ctests (the committed corpora) plus the parser
# unit tests, then reads per-TU line coverage out of `gcov
# --json-format` and compares it against the committed floors in
# fuzz/coverage_floors.tsv. A drop below a floor exits 1 — deleting
# corpus seeds, gutting a harness, or adding unreachable parser branches
# all trip it. Raise the floors when coverage genuinely improves.
#
# --report-only prints the table without enforcing (used to pick floors).
set -u -o pipefail

cd "$(dirname "$0")/.."

REPORT_ONLY=0
[[ "${1:-}" == "--report-only" ]] && REPORT_ONLY=1

if ! command -v gcov >/dev/null 2>&1; then
  echo "coverage gate: gcov not found; skipping (not a failure)" >&2
  exit 0
fi

# O0 keeps line tables honest (O2 merges lines and inflates coverage).
cmake -B build-coverage -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage -O0" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage" >/dev/null || exit 1

# Only the targets the gate needs: the six replay harnesses and the
# unit tests named in the floors file's `tests` column.
mapfile -t TARGETS < <(python3 scripts/coverage_gate.py --list-targets)
BUILD_ARGS=()
for t in "${TARGETS[@]}"; do BUILD_ARGS+=(--target "$t"); done
cmake --build build-coverage -j"$(nproc)" "${BUILD_ARGS[@]}" >/dev/null \
  || exit 1

# Stale counters from an earlier run would mask a coverage drop.
find build-coverage -name '*.gcda' -delete

(cd build-coverage && ctest -L 'fuzz' --output-on-failure >/dev/null) || {
  echo "coverage gate: fuzz replay tests failed" >&2; exit 1; }
mapfile -t TEST_RES < <(python3 scripts/coverage_gate.py --list-tests)
if [[ ${#TEST_RES[@]} -gt 0 ]]; then
  (cd build-coverage &&
   ctest --output-on-failure -R "$(IFS='|'; echo "${TEST_RES[*]}")" \
     >/dev/null) || { echo "coverage gate: parser unit tests failed" >&2
                      exit 1; }
fi

if [[ $REPORT_ONLY -eq 1 ]]; then
  python3 scripts/coverage_gate.py --build build-coverage --report-only
else
  python3 scripts/coverage_gate.py --build build-coverage
fi
