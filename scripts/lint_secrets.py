#!/usr/bin/env python3
"""Repo-aware secret-hygiene linter for the SIES codebase.

Machine-checks the paper's secret-handling obligations (one-time keys
K_t / k_{i,t} and shares ss_{i,t} must stay secret and be compared
without leaking timing) across src/. Three rules:

  ct-compare   Verification material (MACs, digests, share sums, SEAL
               residues, certs) must be compared with a ConstantTimeEqual
               variant, never with ==/!= or memcmp: both leak the first
               differing byte/limb through timing.

  secret-log   Key-material identifiers (global/source keys, k_i, K_t,
               ss_*, seeds, derived MAC keys, DRBG state) must not flow
               into logging or telemetry sinks (SIES_LOG streams, the
               AuditTrail, ToHex inside a sink expression). The audit
               trail records WHY verification failed, never WITH WHAT
               key.

  zeroize      A named buffer initialized from a key-derivation call
               (HmacSha*/EpochPrf*/DeriveMacKey/HmacDrbg::Generate) is
               key material: it must be owned by crypto::SecureBytes or
               explicitly wiped (SecureWipe/SecureZero/.Wipe()) in the
               same file before it can be flagged clean. The batch
               derivation kernels (HmacSha256Batch / HmacSha256x8 /
               EpochPrfSha256Batch) are covered too: a locally declared
               buffer passed as their output must be SecureZero'd in the
               same file — 8-lane staging arrays hold eight keys' worth
               of digest material at once.

Escape hatch: a finding on line N is suppressed when line N or N-1
carries `// lint:allow(<rule>)` -- use only with a justifying comment,
reviewed like any other code (policy: docs/DEVELOPING.md).

Usage:
  scripts/lint_secrets.py [paths...]   # default: src/ bench/ examples/
  scripts/lint_secrets.py --self-test  # fixture corpus must behave
Exit status: 0 = clean, 1 = findings, 2 = usage/self-test failure.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "security", "lint_fixtures")

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Identifiers whose comparison is a verification verdict: comparing them
# non-constant-time leaks where the mismatch happened.
CT_OPERAND_RE = re.compile(
    r"(^|[^\w])("
    r"\w*mac\b|\w*digest\w*|\w*checksum\w*|\w*_cert\b|cert\b|"
    r"\w*residue\w*|share_sum\w*|\w*_tag\b|tag\b|signature\w*"
    r")($|[^\w(])"
)
# Enum constants / type names that contain the words above but are not
# secret values (kHmacSha1, SharePrf::..., AuditKind::...).
CT_FALSE_POSITIVE_RE = re.compile(r"\bk[A-Z]\w*|::k[A-Z]\w*|SharePrf|AuditKind")

# Key-material identifiers that must never reach a log/telemetry sink.
SECRET_ID_RE = re.compile(
    r"(^|[^\w])("
    r"\w*_key\b|key_\w*|\bkey\b|global_key\w*|source_key\w*|mac_key\w*|"
    r"chain_key\w*|seed_key\w*|\w*secret\w*|\bseed\w*|master_seed\w*|"
    r"k_i\w*|K_t\w*|ss_\w*|\bshares?\b|share_sum\w*|\w*drbg\w*|"
    r"inflation_key\w*"
    r")($|[^\w])"
)
SECRET_FALSE_POSITIVE_RE = re.compile(
    r"\bk[A-Z]\w*|::k[A-Z]\w*|SharePrf|AuditKind|KeyDisclosure|"
    r"EpochKeyCache|keygen|key_cache|\bKeys?For\w*|QuerierKeys|SourceKeys"
)

# Sinks: expressions whose arguments end up on stderr / in exported JSON.
# ScopedSpan is a sink because span names/labels land verbatim in the
# exported Chrome trace — spans may carry phase names and epochs, never
# key bytes.
SINK_START_RE = re.compile(
    r"SIES_LOG\s*\(|\.Record\s*\(|\bLogLine\s*\(|std::cerr|std::cout|"
    r"\bScopedSpan\s+\w+\s*\("
)

# Key-derivation calls whose result IS key material.
DERIVATION_RE = re.compile(
    r"\b(HmacSha1|HmacSha256|EpochPrfSha1|EpochPrfSha256|DeriveMacKey|"
    r"DeriveTemporalSeed|HmacSha256Batch|HmacSha256x8|"
    r"EpochPrfSha256Batch)\s*\(|\b\w+\.Generate\s*\("
)

# Batch derivation kernels: the final argument receives the digests (one
# 32-byte derived key per lane). A local staging buffer passed there must
# be wiped in the same file.
BATCH_DERIVATION_RE = re.compile(
    r"\b(HmacSha256Batch|HmacSha256x8|EpochPrfSha256Batch|"
    r"HmacSha256BatchWithKernel)\s*\("
)
# Type tokens only appear in declarations/definitions of the kernels
# themselves, never at call sites — used to skip prototypes.
TYPE_TOKEN_RE = re.compile(r"\bconst\b|\bByteView\b|\buint8_t\b|\bsize_t\b")
LOCAL_BUF_FMT = (
    r"(uint8_t\s+{name}\s*\[|std::array<[^;]*>\s+{name}\b|"
    r"Bytes\s+{name}\b|std::vector<uint8_t>\s+{name}\b)"
)
# `Bytes name = <derivation>(...)` declarations; the name decides whether
# the buffer is treated as key material (`expected` MACs recomputed for
# comparison are not: they equal a value already on the wire).
DECL_RE = re.compile(r"\bBytes\s+(\w+)\s*=\s*(.+)$")
SECRET_NAME_RE = re.compile(r"(key|seed|secret|share|prf|^k$|^kv$|^ss)", re.I)
WIPE_FMT = (
    r"(SecureWipe\s*\(\s*{name}\b|SecureZero\s*\(\s*{name}\b|"
    r"{name}\s*\.\s*Wipe\s*\(\))"
)

RULES = ("ct-compare", "secret-log", "zeroize")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines and
    column positions so findings report real locations."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def allowed_lines(text):
    """line -> set of rules allowed on that line (the marker covers its
    own line and the next, so it can sit above the flagged statement)."""
    allows = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            allows.setdefault(lineno, set()).update(rules)
            allows.setdefault(lineno + 1, set()).update(rules)
    return allows


def has_secret_operand(expr, operand_re, fp_re):
    cleaned = fp_re.sub(" ", expr)
    return operand_re.search(cleaned) is not None


def check_ct_compare(path, code_lines):
    findings = []
    for lineno, line in enumerate(code_lines, 1):
        if "memcmp" in line:
            findings.append(Finding(
                path, lineno, "ct-compare",
                "memcmp leaks the first differing byte through timing; "
                "use ConstantTimeEqual (or lint:allow(ct-compare) for "
                "public framing data)"))
            continue
        for m in re.finditer(r"[^=!<>]=="
                             r"|!=", line):
            # Operands: longest identifier-ish runs to the left and right.
            left = line[: m.start() + 1]
            right = line[m.end():]
            lm = re.search(r"([\w.:\]\)\->]+)\s*$", left)
            rm = re.match(r"\s*([\w.:\(\[\->]+)", right)
            operands = " ".join(g.group(1) for g in (lm, rm) if g)
            if has_secret_operand(operands, CT_OPERAND_RE,
                                  CT_FALSE_POSITIVE_RE):
                findings.append(Finding(
                    path, lineno, "ct-compare",
                    "==/!= over verification material exits at the first "
                    "difference; use ConstantTimeEqual"))
                break
    return findings


def sink_expressions(code_text):
    """Yields (start_line, expression_text) for every sink call, captured
    to the terminating ';' so multi-line streams are covered."""
    for m in SINK_START_RE.finditer(code_text):
        start_line = code_text.count("\n", 0, m.start()) + 1
        end = code_text.find(";", m.start())
        if end == -1:
            end = len(code_text)
        yield start_line, code_text[m.start():end]


def check_secret_log(path, code_text):
    findings = []
    for lineno, expr in sink_expressions(code_text):
        if has_secret_operand(expr, SECRET_ID_RE, SECRET_FALSE_POSITIVE_RE):
            findings.append(Finding(
                path, lineno, "secret-log",
                "key-material identifier flows into a log/telemetry sink; "
                "log sizes or verdicts, never key bytes"))
        elif "ToHex" in expr:
            findings.append(Finding(
                path, lineno, "secret-log",
                "hex-encoding inside a log/telemetry sink; confirm the "
                "buffer is public or lint:allow(secret-log) with a "
                "justification"))
    return findings


def check_zeroize(path, code_text, code_lines):
    findings = []
    for lineno, line in enumerate(code_lines, 1):
        decl = DECL_RE.search(line)
        if not decl:
            continue
        name, init = decl.group(1), decl.group(2)
        # Multi-line initializers: extend to the statement's ';'.
        if ";" not in init:
            rest = "\n".join(code_lines[lineno:lineno + 3])
            init = init + " " + rest.split(";")[0]
        if not DERIVATION_RE.search(init):
            continue
        if not SECRET_NAME_RE.search(name):
            continue
        wipe_re = re.compile(WIPE_FMT.format(name=re.escape(name)))
        if not wipe_re.search(code_text):
            findings.append(Finding(
                path, lineno, "zeroize",
                f"'{name}' holds key-derivation output but is never "
                f"wiped; wrap it in crypto::SecureBytes or call "
                f"SecureWipe before scope exit"))
    return findings


def check_zeroize_batch(path, code_text, code_lines):
    """A locally declared buffer receiving a batch kernel's digests must
    be SecureZero'd in the same file. Prototypes/definitions (recognized
    by type tokens in the argument list) and out-parameters declared
    elsewhere are the caller's responsibility and are skipped."""
    findings = []
    for lineno, line in enumerate(code_lines, 1):
        m = BATCH_DERIVATION_RE.search(line)
        if not m:
            continue
        # Capture the argument list to the statement's ';' so multi-line
        # calls are covered.
        rest = line[m.end():] + "\n" + "\n".join(
            code_lines[lineno:lineno + 4])
        args = rest.split(";")[0].rstrip().rstrip(")")
        if TYPE_TOKEN_RE.search(args):
            continue  # declaration or definition, not a call
        last = args.rsplit(",", 1)[-1]
        ident = re.search(r"([A-Za-z_]\w*)", last)
        if not ident:
            continue
        name = ident.group(1)
        local_re = re.compile(LOCAL_BUF_FMT.format(name=re.escape(name)))
        if not local_re.search(code_text):
            continue  # out-param or member owned by the caller
        wipe_re = re.compile(WIPE_FMT.format(name=re.escape(name)))
        if not wipe_re.search(code_text):
            findings.append(Finding(
                path, lineno, "zeroize",
                f"'{name}' receives batch-derived key digests but is "
                f"never wiped; SecureZero it after the derived keys are "
                f"consumed"))
    return findings


def lint_file(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    allows = allowed_lines(text)
    code_text = strip_comments_and_strings(text)
    code_lines = code_text.splitlines()

    findings = []
    findings += check_ct_compare(path, code_lines)
    findings += check_secret_log(path, code_text)
    findings += check_zeroize(path, code_text, code_lines)
    findings += check_zeroize_batch(path, code_text, code_lines)
    return [f for f in findings if f.rule not in allows.get(f.line, set())]


def lint_paths(paths):
    findings = []
    for root in paths:
        if os.path.isfile(root):
            findings += lint_file(root)
            continue
        for dirpath, _, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    findings += lint_file(os.path.join(dirpath, name))
    return findings


def self_test():
    """The fixture corpus pins the linter itself: every bad_<rule>_*.cc
    must trip exactly its rule, good_*.cc must be clean."""
    failures = []
    fixtures = sorted(os.listdir(FIXTURE_DIR))
    if not fixtures:
        print("self-test: no fixtures found", file=sys.stderr)
        return 2
    for name in fixtures:
        path = os.path.join(FIXTURE_DIR, name)
        if not name.endswith(".cc"):
            continue
        findings = lint_file(path)
        rules_hit = {f.rule for f in findings}
        if name.startswith("bad_"):
            expected = name[len("bad_"):].split(".")[0]
            expected = expected.rsplit("_", 0)[0].replace("_", "-")
            # bad_ct_compare_memcmp.cc -> ct-compare (longest rule prefix)
            matched = [r for r in RULES if expected.startswith(r)]
            if not matched:
                failures.append(f"{name}: cannot map to a rule")
                continue
            rule = matched[0]
            if rule not in rules_hit:
                failures.append(
                    f"{name}: expected a {rule} finding, got {rules_hit}")
        elif name.startswith("good_"):
            if findings:
                failures.append(
                    f"{name}: expected clean, got "
                    + "; ".join(str(f) for f in findings))
    for failure in failures:
        print(f"self-test FAILED: {failure}", file=sys.stderr)
    if not failures:
        count = len([n for n in fixtures if n.endswith('.cc')])
        print(f"lint_secrets self-test OK ({count} fixtures)")
    return 2 if failures else 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    # Default roots: everything that handles key material. bench/ and
    # examples/ copy src/ idioms (timing loops over keys, demo logging),
    # so they inherit the same hygiene rules.
    paths = [a for a in argv if not a.startswith("-")] or [
        os.path.join(REPO_ROOT, root) for root in ("src", "bench", "examples")
    ]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_secrets: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_secrets: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
