#!/usr/bin/env bash
# Regenerates the committed benchmark baselines in bench/baselines/.
#
# Every JSON-emitting bench binary is run with pinned flags (fixed seeds
# are compiled in; thread sweeps are pinned here) so successive runs on
# the same machine are comparable and later PRs can diff the numbers.
# Timings are machine-dependent — a baseline is a reference point for
# the machine that produced it, not a portable truth; the config block
# of each JSON records the dispatch kernel (avx2/scalar) and thread
# count that produced it (see docs/PERFORMANCE.md).
#
# Usage: scripts/bench.sh [--smoke] [--out DIR]
#   --smoke   run the tiny grids (JSON plumbing only; for CI and the
#             check.sh --bench-smoke gate, NOT for committed baselines)
#   --out DIR write BENCH_*.json to DIR (default: bench/baselines)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
OUT="bench/baselines"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

# The JSON-emitting benches that feed the perf trajectory. batched_crypto
# sweeps --threads itself (pinned to 1,2,4 so the scaling rows are
# stable across regenerations).
BENCHES=(micro_crypto fig6a_querier_vs_n telemetry_overhead
         engine_multiquery batched_crypto predicate_ranges)

cmake -B build > /dev/null
cmake --build build -j"$(nproc)" --target "${BENCHES[@]}"

mkdir -p "$OUT"
RUN_DIR="$(mktemp -d)"
trap 'rm -rf "$RUN_DIR"' EXIT

for b in "${BENCHES[@]}"; do
  args=()
  [[ $SMOKE -eq 1 ]] && args+=(--smoke)
  [[ $b == batched_crypto ]] && args+=(--threads=1,2,4)
  echo "== $b ${args[*]:-} =="
  (cd "$RUN_DIR" && "$OLDPWD/build/bench/$b" "${args[@]}")
done

for j in "$RUN_DIR"/BENCH_*.json; do
  python3 -m json.tool "$j" > /dev/null  # refuse to commit broken JSON
  cp "$j" "$OUT/"
  echo "baseline: $OUT/$(basename "$j")"
done
