#include "net/latency.h"

#include <gtest/gtest.h>

namespace sies::net {
namespace {

UpPassCosts UniformCosts(uint64_t bytes, double proc_s) {
  UpPassCosts costs;
  costs.tx_bytes = [bytes](NodeId) { return bytes; };
  costs.proc_seconds = [proc_s](NodeId) { return proc_s; };
  return costs;
}

TEST(LinkParamsTest, HopSeconds) {
  LinkParams link;
  link.bandwidth_bytes_per_s = 1000.0;
  link.hop_overhead_s = 0.01;
  EXPECT_DOUBLE_EQ(link.HopSeconds(0), 0.01);
  EXPECT_DOUBLE_EQ(link.HopSeconds(100), 0.01 + 0.1);
}

TEST(UpPassLatencyTest, SingleSourceChain) {
  // querier <- root(A0) <- source(S1): two hops.
  auto t = Topology::FromParentVector({kQuerierId, 0}).value();
  LinkParams link;
  link.bandwidth_bytes_per_s = 3200.0;  // 32 bytes = 10 ms
  link.hop_overhead_s = 0.001;
  auto costs = UniformCosts(32, 0.002);
  // source: proc 2ms, hop 11ms -> 13ms at root; root: +2ms proc,
  // +11ms hop -> 26ms.
  EXPECT_NEAR(UpPassLatency(t, link, costs), 0.026, 1e-9);
}

TEST(UpPassLatencyTest, AggregatorWaitsForSlowestChild) {
  // Root with two children: a direct source and a deeper subtree.
  // 0=root, 1=source, 2=agg, 3=source under 2.
  auto t = Topology::FromParentVector({kQuerierId, 0, 0, 2}).value();
  LinkParams link;
  link.bandwidth_bytes_per_s = 3200.0;
  link.hop_overhead_s = 0.0;
  auto costs = UniformCosts(32, 0.0);
  // Deep path: S3 (10ms) -> A2 (+10ms) -> arrives 20ms; shallow path
  // arrives 10ms. Root departs at 20ms, +10ms hop = 30ms.
  EXPECT_NEAR(UpPassLatency(t, link, costs), 0.030, 1e-9);
}

TEST(UpPassLatencyTest, GrowsWithHeightNotN) {
  // SIES's key latency property: constant payloads mean latency tracks
  // tree HEIGHT, not source count.
  LinkParams link;
  auto costs = UniformCosts(32, 1e-5);
  auto shallow = Topology::BuildCompleteTree(4096, 16).value();   // h=3
  auto deep = Topology::BuildCompleteTree(4096, 2).value();       // h=12
  double shallow_latency = UpPassLatency(shallow, link, costs);
  double deep_latency = UpPassLatency(deep, link, costs);
  EXPECT_GT(deep_latency, 3 * shallow_latency);
  // Same fanout, 16x more sources: only +2 levels of latency.
  auto small = Topology::BuildCompleteTree(256, 4).value();     // h=4
  auto big = Topology::BuildCompleteTree(256 * 16, 4).value();  // h=6
  double ratio = UpPassLatency(big, link, costs) /
                 UpPassLatency(small, link, costs);
  EXPECT_LT(ratio, 1.6);
  EXPECT_GT(ratio, 1.0);
}

TEST(UpPassLatencyTest, ProportionalToPayloadWidth) {
  auto t = Topology::BuildCompleteTree(64, 4).value();
  LinkParams link;
  link.hop_overhead_s = 0.0;
  auto thin = UniformCosts(32, 0.0);
  auto fat = UniformCosts(32 * 100, 0.0);
  EXPECT_NEAR(UpPassLatency(t, link, fat) / UpPassLatency(t, link, thin),
              100.0, 0.01);
}

TEST(UpPassLatencyTest, PerNodeBytesRespected) {
  // Commit-and-attest profile: edges near the root carry O(subtree)
  // bytes; latency must reflect the fattest path, not the average.
  auto t = Topology::BuildCompleteTree(64, 4).value();
  LinkParams link;
  UpPassCosts caa;
  caa.proc_seconds = [](NodeId) { return 0.0; };
  caa.tx_bytes = [&t](NodeId node) -> uint64_t {
    // crude subtree size: sources below * 12 bytes
    if (t.role(node) == NodeRole::kSource) return 12;
    uint64_t leaves = 0;
    std::vector<NodeId> stack = {node};
    while (!stack.empty()) {
      NodeId cur = stack.back();
      stack.pop_back();
      if (t.children(cur).empty()) {
        ++leaves;
      } else {
        for (NodeId c : t.children(cur)) stack.push_back(c);
      }
    }
    return leaves * 12;
  };
  auto sies = UniformCosts(32, 0.0);
  EXPECT_GT(UpPassLatency(t, link, caa),
            UpPassLatency(t, link, sies));
}

TEST(DownPassLatencyTest, BroadcastReachesDeepestLast) {
  auto shallow = Topology::BuildCompleteTree(64, 8).value();
  auto deep = Topology::BuildCompleteTree(64, 2).value();
  LinkParams link;
  auto costs = UniformCosts(60, 1e-4);
  EXPECT_GT(DownPassLatency(deep, link, costs),
            DownPassLatency(shallow, link, costs));
}

TEST(DownPassLatencyTest, StartOffsetShifts) {
  auto t = Topology::BuildCompleteTree(16, 4).value();
  LinkParams link;
  auto costs = UniformCosts(60, 0.0);
  double base = DownPassLatency(t, link, costs, 0.0);
  EXPECT_NEAR(DownPassLatency(t, link, costs, 1.5), base + 1.5, 1e-9);
}

}  // namespace
}  // namespace sies::net
