#include "net/adversary.h"

#include <gtest/gtest.h>

namespace sies::net {
namespace {

Message MakeMessage(NodeId from, uint64_t epoch, Bytes payload) {
  Message msg;
  msg.from = from;
  msg.to = 99;
  msg.epoch = epoch;
  msg.payload = std::move(payload);
  return msg;
}

TEST(BitFlipAdversaryTest, FlipsExactlyOneBit) {
  BitFlipAdversary adv(std::nullopt, 5);
  Message msg = MakeMessage(1, 1, {0x00, 0x00});
  EXPECT_TRUE(adv.OnMessage(msg));
  EXPECT_EQ(msg.payload, (Bytes{0x20, 0x00}));
  EXPECT_EQ(adv.tampered_count(), 1u);
}

TEST(BitFlipAdversaryTest, TargetsOnlyNamedNode) {
  BitFlipAdversary adv(NodeId{7}, 0);
  Message hit = MakeMessage(7, 1, {0x00});
  Message miss = MakeMessage(8, 1, {0x00});
  adv.OnMessage(hit);
  adv.OnMessage(miss);
  EXPECT_EQ(hit.payload[0], 0x01);
  EXPECT_EQ(miss.payload[0], 0x00);
  EXPECT_EQ(adv.tampered_count(), 1u);
}

TEST(BitFlipAdversaryTest, BitIndexWrapsModuloSize) {
  BitFlipAdversary adv(std::nullopt, 8);  // == bit 0 of a 1-byte payload
  Message msg = MakeMessage(1, 1, {0x00});
  adv.OnMessage(msg);
  EXPECT_EQ(msg.payload[0], 0x01);
}

TEST(BitFlipAdversaryTest, EmptyPayloadUntouched) {
  BitFlipAdversary adv;
  Message msg = MakeMessage(1, 1, {});
  EXPECT_TRUE(adv.OnMessage(msg));
  EXPECT_EQ(adv.tampered_count(), 0u);
}

TEST(ReplayAdversaryTest, CapturesThenReplays) {
  ReplayAdversary adv(/*capture_epoch=*/1);
  Message original = MakeMessage(3, 1, {0xaa, 0xbb});
  EXPECT_TRUE(adv.OnMessage(original));
  EXPECT_EQ(original.payload, (Bytes{0xaa, 0xbb}));  // capture is passive

  Message later = MakeMessage(3, 2, {0xcc, 0xdd});
  EXPECT_TRUE(adv.OnMessage(later));
  EXPECT_EQ(later.payload, (Bytes{0xaa, 0xbb}));  // stale payload injected
  EXPECT_EQ(adv.replayed_count(), 1u);
}

TEST(ReplayAdversaryTest, UncapturedSendersPassThrough) {
  ReplayAdversary adv(1);
  Message captured = MakeMessage(3, 1, {0xaa});
  adv.OnMessage(captured);
  Message other = MakeMessage(4, 2, {0xcc});
  adv.OnMessage(other);
  EXPECT_EQ(other.payload, (Bytes{0xcc}));
  EXPECT_EQ(adv.replayed_count(), 0u);
}

TEST(ReplayAdversaryTest, EarlierEpochsUntouched) {
  ReplayAdversary adv(5);
  Message early = MakeMessage(3, 2, {0x11});
  adv.OnMessage(early);
  EXPECT_EQ(early.payload, (Bytes{0x11}));
}

TEST(DropAdversaryTest, DropsOnlyTarget) {
  DropAdversary adv(3);
  Message target = MakeMessage(3, 1, {0x01});
  Message other = MakeMessage(4, 1, {0x02});
  EXPECT_FALSE(adv.OnMessage(target));
  EXPECT_TRUE(adv.OnMessage(other));
  EXPECT_EQ(adv.dropped_count(), 1u);
}

TEST(CallbackAdversaryTest, ForwardsVerdict) {
  int calls = 0;
  CallbackAdversary adv([&](Message& msg) {
    ++calls;
    return msg.epoch != 13;
  });
  Message ok = MakeMessage(1, 1, {});
  Message doomed = MakeMessage(1, 13, {});
  EXPECT_TRUE(adv.OnMessage(ok));
  EXPECT_FALSE(adv.OnMessage(doomed));
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace sies::net
