#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace sies::net {
namespace {

TEST(TopologyTest, PerfectQuaternaryTree) {
  auto t = Topology::BuildCompleteTree(16, 4).value();
  EXPECT_EQ(t.num_sources(), 16u);
  // 16 leaves under fanout 4: root + 4 internal = 5 aggregators.
  EXPECT_EQ(t.num_aggregators(), 5u);
  EXPECT_EQ(t.num_nodes(), 21u);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.parent(t.root()), kQuerierId);
  EXPECT_EQ(t.children(t.root()).size(), 4u);
  EXPECT_EQ(t.height(), 2u);
}

TEST(TopologyTest, PerfectBinaryTree) {
  auto t = Topology::BuildCompleteTree(8, 2).value();
  EXPECT_EQ(t.num_sources(), 8u);
  EXPECT_EQ(t.num_aggregators(), 7u);
  EXPECT_EQ(t.height(), 3u);
}

TEST(TopologyTest, SingleSource) {
  auto t = Topology::BuildCompleteTree(1, 4).value();
  EXPECT_EQ(t.num_sources(), 1u);
  EXPECT_EQ(t.num_aggregators(), 1u);  // root still an aggregator
  EXPECT_EQ(t.role(0), NodeRole::kAggregator);
}

TEST(TopologyTest, RejectsBadParameters) {
  EXPECT_FALSE(Topology::BuildCompleteTree(0, 4).ok());
  EXPECT_FALSE(Topology::BuildCompleteTree(10, 1).ok());
  EXPECT_FALSE(Topology::BuildCompleteTree(10, 0).ok());
}

TEST(TopologyTest, EveryNonRootHasValidParent) {
  auto t = Topology::BuildCompleteTree(100, 3).value();
  for (NodeId i = 1; i < t.num_nodes(); ++i) {
    EXPECT_LT(t.parent(i), i);
  }
}

TEST(TopologyTest, SourcesAreExactlyTheLeaves) {
  auto t = Topology::BuildCompleteTree(37, 4).value();
  EXPECT_EQ(t.sources().size(), 37u);
  std::set<NodeId> leaves(t.sources().begin(), t.sources().end());
  for (NodeId i = 0; i < t.num_nodes(); ++i) {
    bool is_leaf = t.children(i).empty();
    EXPECT_EQ(leaves.contains(i), is_leaf) << "node " << i;
    EXPECT_EQ(t.role(i),
              is_leaf ? NodeRole::kSource : NodeRole::kAggregator);
  }
}

TEST(TopologyTest, BottomUpOrderVisitsChildrenFirst) {
  auto t = Topology::BuildCompleteTree(64, 4).value();
  std::set<NodeId> visited;
  for (NodeId agg : t.aggregators_bottom_up()) {
    for (NodeId child : t.children(agg)) {
      if (!t.children(child).empty()) {
        EXPECT_TRUE(visited.contains(child))
            << "aggregator " << agg << " visited before child " << child;
      }
    }
    visited.insert(agg);
  }
  EXPECT_EQ(visited.size(), t.num_aggregators());
  EXPECT_EQ(t.aggregators_bottom_up().back(), t.root());
}

TEST(TopologyTest, FanoutBoundRespected) {
  for (uint32_t f = 2; f <= 6; ++f) {
    auto t = Topology::BuildCompleteTree(1024, f).value();
    EXPECT_EQ(t.num_sources(), 1024u);
    for (NodeId i = 0; i < t.num_nodes(); ++i) {
      EXPECT_LE(t.children(i).size(), f) << "fanout " << f << " node " << i;
    }
  }
}

TEST(TopologyTest, DepthsAreConsistent) {
  auto t = Topology::BuildCompleteTree(256, 4).value();
  EXPECT_EQ(t.depth(t.root()), 0u);
  for (NodeId i = 1; i < t.num_nodes(); ++i) {
    EXPECT_EQ(t.depth(i), t.depth(t.parent(i)) + 1);
  }
  // Perfect 4-ary tree over 256 leaves: height log4(256) = 4.
  EXPECT_EQ(t.height(), 4u);
}

TEST(TopologyTest, FromParentVectorArbitraryTree) {
  // 0 <- 1, 0 <- 2, 1 <- 3, 1 <- 4, 2 <- 5 (3,4,5 leaves).
  auto t = Topology::FromParentVector({kQuerierId, 0, 0, 1, 1, 2}).value();
  EXPECT_EQ(t.num_sources(), 3u);
  EXPECT_EQ(t.num_aggregators(), 3u);
  EXPECT_EQ(t.children(1), (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(t.depth(5), 2u);
}

TEST(TopologyTest, FromParentVectorValidation) {
  EXPECT_FALSE(Topology::FromParentVector({}).ok());
  EXPECT_FALSE(Topology::FromParentVector({0}).ok());  // root must be querier
  EXPECT_FALSE(
      Topology::FromParentVector({kQuerierId, 2, 1}).ok());  // not topo order
}

TEST(TopologyRepairTest, RemoveSource) {
  auto t = Topology::BuildCompleteTree(16, 4).value();
  NodeId victim = t.sources()[5];
  auto repair = t.RemoveNode(victim).value();
  EXPECT_EQ(repair.topology.num_sources(), 15u);
  EXPECT_EQ(repair.topology.num_nodes(), t.num_nodes() - 1);
  EXPECT_EQ(repair.old_to_new[victim], kQuerierId);
  // Every surviving node maps to a valid new id with the same role...
  for (NodeId old_id = 0; old_id < t.num_nodes(); ++old_id) {
    if (old_id == victim) continue;
    NodeId new_id = repair.old_to_new[old_id];
    ASSERT_LT(new_id, repair.topology.num_nodes());
    if (t.parent(old_id) != kQuerierId && t.parent(old_id) != victim) {
      EXPECT_EQ(repair.topology.parent(new_id),
                repair.old_to_new[t.parent(old_id)]);
    }
  }
}

TEST(TopologyRepairTest, RemoveAggregatorReattachesChildren) {
  auto t = Topology::BuildCompleteTree(16, 4).value();
  // Pick a non-root aggregator.
  NodeId victim = kQuerierId;
  for (NodeId agg : t.aggregators_bottom_up()) {
    if (agg != t.root()) {
      victim = agg;
      break;
    }
  }
  ASSERT_NE(victim, kQuerierId);
  NodeId old_parent = t.parent(victim);
  auto repair = t.RemoveNode(victim).value();
  // All sources survive: only the relay disappeared.
  EXPECT_EQ(repair.topology.num_sources(), 16u);
  // The victim's children now hang off its old parent.
  for (NodeId child : t.children(victim)) {
    NodeId new_child = repair.old_to_new[child];
    EXPECT_EQ(repair.topology.parent(new_child),
              repair.old_to_new[old_parent]);
  }
}

TEST(TopologyRepairTest, GuardRails) {
  auto t = Topology::BuildCompleteTree(4, 2).value();
  EXPECT_FALSE(t.RemoveNode(t.root()).ok());
  EXPECT_FALSE(t.RemoveNode(t.num_nodes()).ok());
  auto single = Topology::BuildCompleteTree(1, 2).value();
  EXPECT_FALSE(single.RemoveNode(single.sources()[0]).ok());
}

TEST(TopologyRepairTest, RepeatedRepairsStayConsistent) {
  auto t = Topology::BuildCompleteTree(32, 4).value();
  Topology current = t;
  // Knock out 10 sources one at a time.
  for (int round = 0; round < 10; ++round) {
    NodeId victim = current.sources()[0];
    auto repair = current.RemoveNode(victim).value();
    current = repair.topology;
    // Structural invariants hold after each repair.
    uint32_t edges = 0;
    for (NodeId i = 0; i < current.num_nodes(); ++i) {
      edges += current.children(i).size();
    }
    EXPECT_EQ(edges, current.num_nodes() - 1);
  }
  // 10 nodes were removed in total.
  EXPECT_EQ(current.num_nodes(), t.num_nodes() - 10);
  EXPECT_LE(current.num_sources(), 32u);
  EXPECT_GE(current.num_sources(), 22u);
}

TEST(TopologyRepairTest, RemovingOnlyChildDemotesParentToLeaf) {
  // Documented behaviour: an aggregator left childless becomes a leaf
  // and is therefore classified as a source by role().
  auto t = Topology::FromParentVector({kQuerierId, 0, 0, 1}).value();
  ASSERT_EQ(t.role(1), NodeRole::kAggregator);
  auto repair = t.RemoveNode(3).value();  // node 1's only child
  NodeId demoted = repair.old_to_new[1];
  EXPECT_EQ(repair.topology.role(demoted), NodeRole::kSource);
}

class TreeShapeSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(TreeShapeSweep, StructureInvariants) {
  auto [n, f] = GetParam();
  auto t = Topology::BuildCompleteTree(n, f).value();
  EXPECT_EQ(t.num_sources(), n);
  // Every aggregator has at least one child; node count is consistent.
  uint32_t edge_count = 0;
  for (NodeId i = 0; i < t.num_nodes(); ++i) {
    if (t.role(i) == NodeRole::kAggregator) {
      EXPECT_GE(t.children(i).size(), 1u);
    }
    edge_count += t.children(i).size();
  }
  EXPECT_EQ(edge_count, t.num_nodes() - 1);  // it is a tree
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeShapeSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 16, 17, 64, 100, 1024),
                       ::testing::Values(2, 3, 4, 5, 6)));

TEST(RandomTreeTest, ExactLeafCountAndBoundedFanout) {
  Xoshiro256 rng(5);
  for (uint32_t n : {1u, 2u, 7u, 32u, 100u}) {
    for (uint32_t f : {2u, 3u, 5u}) {
      auto t = Topology::BuildRandomTree(n, f, rng).value();
      EXPECT_EQ(t.num_sources(), n) << "n=" << n << " f=" << f;
      for (NodeId i = 0; i < t.num_nodes(); ++i) {
        EXPECT_LE(t.children(i).size(), f);
      }
      uint32_t edges = 0;
      for (NodeId i = 0; i < t.num_nodes(); ++i) {
        edges += t.children(i).size();
      }
      EXPECT_EQ(edges, t.num_nodes() - 1);
    }
  }
}

TEST(RandomTreeTest, ShapesVary) {
  Xoshiro256 rng(6);
  auto a = Topology::BuildRandomTree(32, 4, rng).value();
  auto b = Topology::BuildRandomTree(32, 4, rng).value();
  // Almost surely different shapes (node counts or heights differ).
  EXPECT_TRUE(a.num_nodes() != b.num_nodes() || a.height() != b.height() ||
              a.children(0).size() != b.children(0).size());
}

TEST(TopologyDotTest, RendersAllNodesAndEdges) {
  auto t = Topology::BuildCompleteTree(4, 2).value();
  std::string dot = t.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("querier"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> querier"), std::string::npos);
  // Every non-root node contributes exactly one edge.
  size_t edges = 0;
  for (size_t pos = dot.find(" -> n"); pos != std::string::npos;
       pos = dot.find(" -> n", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, t.num_nodes() - 1);
  // Sources render as boxes, aggregators as circles.
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);
}

TEST(RandomTreeTest, Validation) {
  Xoshiro256 rng(7);
  EXPECT_FALSE(Topology::BuildRandomTree(0, 4, rng).ok());
  EXPECT_FALSE(Topology::BuildRandomTree(8, 1, rng).ok());
}

}  // namespace
}  // namespace sies::net
