#include "net/network.h"

#include <gtest/gtest.h>

#include "net/adversary.h"

namespace sies::net {
namespace {

// A trivial unsecured protocol: payloads are 8-byte big-endian partial
// sums. Isolates the simulator mechanics from any cryptography.
class PlainSumProtocol : public AggregationProtocol {
 public:
  std::string Name() const override { return "PlainSum"; }

  StatusOr<Bytes> SourceInitialize(NodeId id, uint64_t epoch) override {
    return EncodeUint64(Value(id, epoch));
  }

  StatusOr<Bytes> AggregatorMerge(NodeId, uint64_t,
                                  const std::vector<Bytes>& children) override {
    uint64_t sum = 0;
    for (const Bytes& child : children) {
      if (child.size() != 8) {
        return Status::InvalidArgument("bad payload");
      }
      sum += LoadBigEndian64(child.data());
    }
    return EncodeUint64(sum);
  }

  StatusOr<EvalOutcome> QuerierEvaluate(
      uint64_t, const Bytes& final_payload,
      const std::vector<NodeId>&) override {
    if (final_payload.size() != 8) {
      return Status::InvalidArgument("bad payload");
    }
    EvalOutcome outcome;
    outcome.value = static_cast<double>(LoadBigEndian64(final_payload.data()));
    outcome.verified = true;
    return outcome;
  }

  static uint64_t Value(NodeId id, uint64_t epoch) {
    return 100 * static_cast<uint64_t>(id) + epoch;
  }
};

uint64_t ExpectedSum(const Topology& t, uint64_t epoch) {
  uint64_t sum = 0;
  for (NodeId src : t.sources()) sum += PlainSumProtocol::Value(src, epoch);
  return sum;
}

TEST(NetworkTest, ComputesExactSum) {
  Network net(Topology::BuildCompleteTree(16, 4).value());
  PlainSumProtocol protocol;
  auto report = net.RunEpoch(protocol, 3);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().outcome.value,
            static_cast<double>(ExpectedSum(net.topology(), 3)));
}

TEST(NetworkTest, CpuSamplesCounted) {
  Network net(Topology::BuildCompleteTree(16, 4).value());
  PlainSumProtocol protocol;
  auto report = net.RunEpoch(protocol, 1).value();
  EXPECT_EQ(report.source_cpu.samples(), 16u);
  EXPECT_EQ(report.aggregator_cpu.samples(),
            net.topology().num_aggregators());
  EXPECT_EQ(report.querier_cpu.samples(), 1u);
}

TEST(NetworkTest, TrafficAccounting) {
  Network net(Topology::BuildCompleteTree(16, 4).value());
  PlainSumProtocol protocol;
  auto report = net.RunEpoch(protocol, 1).value();
  // 16 sources each send one 8-byte payload to an aggregator.
  EXPECT_EQ(report.source_to_aggregator.messages, 16u);
  EXPECT_EQ(report.source_to_aggregator.bytes, 16u * 8);
  // 4 internal aggregators send to the root.
  EXPECT_EQ(report.aggregator_to_aggregator.messages, 4u);
  // The root sends exactly one message to the querier.
  EXPECT_EQ(report.aggregator_to_querier.messages, 1u);
  EXPECT_EQ(report.aggregator_to_querier.bytes, 8u);
  EXPECT_DOUBLE_EQ(report.source_to_aggregator.MeanBytes(), 8.0);
}

TEST(NetworkTest, FailedSourceExcludedFromSumAndParticipants) {
  Network net(Topology::BuildCompleteTree(8, 2).value());
  PlainSumProtocol protocol;
  NodeId victim = net.topology().sources()[0];
  net.FailSource(victim);
  auto report = net.RunEpoch(protocol, 5).value();
  EXPECT_EQ(report.outcome.value,
            static_cast<double>(ExpectedSum(net.topology(), 5) -
                                PlainSumProtocol::Value(victim, 5)));
  EXPECT_EQ(report.source_cpu.samples(), 7u);
}

TEST(NetworkTest, HealRestoresSources) {
  Network net(Topology::BuildCompleteTree(4, 2).value());
  PlainSumProtocol protocol;
  net.FailSource(net.topology().sources()[0]);
  net.HealAllSources();
  auto report = net.RunEpoch(protocol, 1).value();
  EXPECT_EQ(report.source_cpu.samples(), 4u);
}

TEST(NetworkTest, AllSourcesFailedMeansUnansweredEpoch) {
  Network net(Topology::BuildCompleteTree(2, 2).value());
  PlainSumProtocol protocol;
  for (NodeId src : net.topology().sources()) net.FailSource(src);
  auto report = net.RunEpoch(protocol, 1);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().answered);
  EXPECT_FALSE(report.value().outcome.verified);
  EXPECT_DOUBLE_EQ(report.value().coverage, 0.0);
}

TEST(NetworkTest, AdversaryCanMutatePayloads) {
  Network net(Topology::BuildCompleteTree(4, 2).value());
  PlainSumProtocol protocol;
  // Add 1000 to everything flowing into the querier.
  CallbackAdversary adv([&](Message& msg) {
    if (msg.to == kQuerierId) {
      uint64_t v = LoadBigEndian64(msg.payload.data());
      StoreBigEndian64(v + 1000, msg.payload.data());
    }
    return true;
  });
  net.SetAdversary(&adv);
  auto report = net.RunEpoch(protocol, 2).value();
  EXPECT_EQ(report.outcome.value,
            static_cast<double>(ExpectedSum(net.topology(), 2) + 1000));
}

TEST(NetworkTest, AdversaryCanDropSubtree) {
  Network net(Topology::BuildCompleteTree(4, 2).value());
  PlainSumProtocol protocol;
  NodeId victim = net.topology().sources()[0];
  DropAdversary adv(victim);
  net.SetAdversary(&adv);
  auto report = net.RunEpoch(protocol, 2).value();
  EXPECT_EQ(report.outcome.value,
            static_cast<double>(ExpectedSum(net.topology(), 2) -
                                PlainSumProtocol::Value(victim, 2)));
  EXPECT_EQ(adv.dropped_count(), 1u);
  // The drop happens in flight: the victim still radiates (tx counted),
  // but the frame never arrives (one undelivered message).
  EXPECT_EQ(report.source_to_aggregator.messages, 4u);
  EXPECT_EQ(report.source_to_aggregator.undelivered, 1u);
}

TEST(NetworkTest, MultipleEpochsIndependent) {
  Network net(Topology::BuildCompleteTree(9, 3).value());
  PlainSumProtocol protocol;
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    auto report = net.RunEpoch(protocol, epoch).value();
    EXPECT_EQ(report.outcome.value,
              static_cast<double>(ExpectedSum(net.topology(), epoch)));
    EXPECT_EQ(report.epoch, epoch);
  }
}

TEST(NetworkTest, LossRateValidation) {
  Network net(Topology::BuildCompleteTree(4, 2).value());
  EXPECT_FALSE(net.SetLossRate(-0.1, 1).ok());
  EXPECT_FALSE(net.SetLossRate(1.1, 1).ok());
  EXPECT_TRUE(net.SetLossRate(0.0, 1).ok());
  EXPECT_TRUE(net.SetLossRate(0.5, 1).ok());
  // A total blackout is a legitimate fault model.
  EXPECT_TRUE(net.SetLossRate(1.0, 1).ok());
}

TEST(NetworkTest, LossyChannelDropsMessages) {
  Network net(Topology::BuildCompleteTree(64, 4).value());
  PlainSumProtocol protocol;
  ASSERT_TRUE(net.SetLossRate(0.3, 42).ok());
  uint64_t delivered = 0;
  for (uint64_t epoch = 1; epoch <= 10; ++epoch) {
    auto report = net.RunEpoch(protocol, epoch);
    if (report.ok()) {
      delivered += report.value().source_to_aggregator.messages;
    }
  }
  EXPECT_GT(net.lost_messages(), 0u);
  // ~30% of ~640+ messages should be gone.
  EXPECT_GT(net.lost_messages(), 100u);
  EXPECT_LT(net.lost_messages(), 400u);
  (void)delivered;
}

TEST(NetworkTest, LossIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Network net(Topology::BuildCompleteTree(32, 4).value());
    PlainSumProtocol protocol;
    EXPECT_TRUE(net.SetLossRate(0.2, seed).ok());
    for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
      (void)net.RunEpoch(protocol, epoch);
    }
    return net.lost_messages();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(NetworkTest, UnreportedLossLooksLikeMissingData) {
  // With a lossy channel and no failure reporting, sums are silently
  // smaller than the truth — the operational reason SIES's share check
  // matters: it turns silent loss into a visible verification failure
  // (see SiesLossTest in security/attack_test.cc).
  Network net(Topology::BuildCompleteTree(32, 4).value());
  PlainSumProtocol protocol;
  ASSERT_TRUE(net.SetLossRate(0.25, 9).ok());
  bool any_loss_epoch = false;
  for (uint64_t epoch = 1; epoch <= 10; ++epoch) {
    uint64_t lost_before = net.lost_messages();
    auto report = net.RunEpoch(protocol, epoch);
    if (!report.ok()) continue;  // final message itself lost
    if (net.lost_messages() > lost_before) {
      any_loss_epoch = true;
      EXPECT_LT(report.value().outcome.value,
                static_cast<double>(ExpectedSum(net.topology(), epoch)));
    }
  }
  EXPECT_TRUE(any_loss_epoch);
}

TEST(NetworkTest, SingleSourceTree) {
  Network net(Topology::BuildCompleteTree(1, 4).value());
  PlainSumProtocol protocol;
  auto report = net.RunEpoch(protocol, 7).value();
  EXPECT_EQ(report.outcome.value,
            static_cast<double>(ExpectedSum(net.topology(), 7)));
  EXPECT_EQ(report.aggregator_to_querier.messages, 1u);
}

}  // namespace
}  // namespace sies::net
