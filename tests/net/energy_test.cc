#include "net/energy.h"

#include <gtest/gtest.h>

#include "net/network.h"

namespace sies::net {
namespace {

// A fixed-width dummy protocol for traffic shaping.
class FixedWidthProtocol : public AggregationProtocol {
 public:
  explicit FixedWidthProtocol(size_t width) : width_(width) {}
  std::string Name() const override { return "FixedWidth"; }
  StatusOr<Bytes> SourceInitialize(NodeId, uint64_t) override {
    return Bytes(width_, 0x01);
  }
  StatusOr<Bytes> AggregatorMerge(NodeId, uint64_t,
                                  const std::vector<Bytes>&) override {
    return Bytes(width_, 0x02);
  }
  StatusOr<EvalOutcome> QuerierEvaluate(uint64_t, const Bytes&,
                                        const std::vector<NodeId>&) override {
    return EvalOutcome{0.0, true, true};
  }

 private:
  size_t width_;
};

TEST(RadioParamsTest, TxRxFormulas) {
  RadioParams radio;
  radio.e_elec_j_per_bit = 50e-9;
  radio.e_amp_j_per_bit_m2 = 100e-12;
  radio.hop_distance_m = 10.0;
  // 1 byte = 8 bits: tx = 8*(50n + 100p*100) = 8*60n = 480 nJ.
  EXPECT_NEAR(radio.TxJoules(1), 480e-9, 1e-12);
  EXPECT_NEAR(radio.RxJoules(1), 400e-9, 1e-12);
  // Linear in bytes.
  EXPECT_NEAR(radio.TxJoules(100), 100 * radio.TxJoules(1), 1e-10);
}

TEST(EnergyTest, PerNodeAccountingMatchesTraffic) {
  Network net(Topology::BuildCompleteTree(16, 4).value());
  FixedWidthProtocol protocol(32);
  auto report = net.RunEpoch(protocol, 1).value();
  ASSERT_EQ(report.node_tx_bytes.size(), net.topology().num_nodes());
  // Every node transmits exactly one 32-byte payload.
  for (NodeId i = 0; i < net.topology().num_nodes(); ++i) {
    EXPECT_EQ(report.node_tx_bytes[i], 32u) << "node " << i;
  }
  // Sources receive nothing; each aggregator receives 32 bytes/child.
  for (NodeId src : net.topology().sources()) {
    EXPECT_EQ(report.node_rx_bytes[src], 0u);
  }
  for (NodeId agg : net.topology().aggregators_bottom_up()) {
    EXPECT_EQ(report.node_rx_bytes[agg],
              32u * net.topology().children(agg).size());
  }
}

TEST(EnergyTest, HottestNodeIsNearTheSink) {
  Network net(Topology::BuildCompleteTree(64, 4).value());
  FixedWidthProtocol protocol(32);
  auto report = net.RunEpoch(protocol, 1).value();
  RadioParams radio;
  auto joules = EpochEnergyJoules(report, radio);
  EnergySummary summary = Summarize(joules);
  // With uniform payloads, aggregators (which also receive) burn more
  // than leaf sources; the hottest node must be an aggregator.
  EXPECT_EQ(net.topology().role(summary.hottest_node),
            NodeRole::kAggregator);
  EXPECT_GT(summary.total_joules, 0.0);
  EXPECT_GT(summary.max_node_joules, 0.0);
}

TEST(EnergyTest, WiderPayloadsBurnProportionallyMore) {
  Network net(Topology::BuildCompleteTree(16, 4).value());
  RadioParams radio;
  FixedWidthProtocol small(32), big(320);
  auto r_small = net.RunEpoch(small, 1).value();
  auto r_big = net.RunEpoch(big, 2).value();
  EnergySummary s_small = Summarize(EpochEnergyJoules(r_small, radio));
  EnergySummary s_big = Summarize(EpochEnergyJoules(r_big, radio));
  EXPECT_NEAR(s_big.total_joules / s_small.total_joules, 10.0, 0.01);
}

TEST(EnergyTest, LifetimeInverseInEnergy) {
  EnergySummary summary;
  summary.max_node_joules = 0.002;
  EXPECT_DOUBLE_EQ(LifetimeEpochs(summary, 10.0), 5000.0);
  summary.max_node_joules = 0.004;
  EXPECT_DOUBLE_EQ(LifetimeEpochs(summary, 10.0), 2500.0);
  EnergySummary idle;
  EXPECT_DOUBLE_EQ(LifetimeEpochs(idle, 10.0), 0.0);
}

TEST(EnergyTest, SummarizeEmptyIsZero) {
  EnergySummary summary = Summarize({});
  EXPECT_DOUBLE_EQ(summary.total_joules, 0.0);
  EXPECT_DOUBLE_EQ(summary.max_node_joules, 0.0);
}

}  // namespace
}  // namespace sies::net
