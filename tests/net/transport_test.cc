// Transport-layer contract: the simulator backend preserves the exact
// loss/retry/backoff semantics that used to live inside
// Network::RunEpoch, the datagram framing round-trips and rejects every
// malformed shape, and the UDP backend really moves bytes through
// loopback sockets with the SAME deterministic injected-loss pattern as
// the simulator.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/datagram.h"
#include "net/udp_transport.h"

namespace sies::net {
namespace {

Bytes Payload(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(RetryBackoffSlotsTest, DeterministicAndWindowed) {
  for (uint32_t attempt = 1; attempt <= 12; ++attempt) {
    const uint64_t a = RetryBackoffSlots(7, 3, attempt);
    const uint64_t b = RetryBackoffSlots(7, 3, attempt);
    EXPECT_EQ(a, b) << "pure function of (epoch, sender, attempt)";
    const uint32_t window_bits = attempt < 10 ? attempt : 10;
    EXPECT_LT(a, uint64_t{1} << window_bits) << "attempt " << attempt;
  }
  // The epoch feeds the hash. At attempt 1 the window is 1 bit, so two
  // epochs collide half the time — compare whole 10-bit-window
  // sequences instead, which collide with probability ~2^-30.
  bool differs = false;
  for (uint32_t attempt = 10; attempt <= 12 && !differs; ++attempt) {
    differs = RetryBackoffSlots(7, 3, attempt) !=
              RetryBackoffSlots(8, 3, attempt);
  }
  EXPECT_TRUE(differs) << "epoch must perturb the backoff schedule";
}

TEST(SimTransportTest, LosslessDeliversFirstAttempt) {
  SimTransport transport;
  auto d = transport.Deliver(1, 2, 5, Payload("hello"));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().delivered);
  EXPECT_EQ(d.value().attempts, 1u);
  EXPECT_EQ(d.value().backoff_slots, 0u);
  EXPECT_EQ(d.value().payload, Payload("hello"));
}

TEST(SimTransportTest, RejectsBadLossRate) {
  SimTransport transport;
  EXPECT_FALSE(transport.SetLossRate(-0.1, 1).ok());
  EXPECT_FALSE(transport.SetLossRate(1.1, 1).ok());
  EXPECT_TRUE(transport.SetLossRate(0.5, 1).ok());
}

TEST(SimTransportTest, CertainLossExhaustsRetryBudget) {
  SimTransport transport;
  ASSERT_TRUE(transport.SetLossRate(1.0, 42).ok());
  transport.SetMaxRetries(3);
  auto d = transport.Deliver(9, 2, 1, Payload("doomed"));
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d.value().delivered);
  EXPECT_EQ(d.value().attempts, 4u) << "1 try + 3 retries";
  uint64_t want_backoff = 0;
  for (uint32_t attempt = 1; attempt <= 3; ++attempt) {
    want_backoff += RetryBackoffSlots(1, 9, attempt);
  }
  EXPECT_EQ(d.value().backoff_slots, want_backoff);
}

TEST(SimTransportTest, SameSeedSameLossPattern) {
  // Two instances with the same seed must agree on every delivery
  // verdict — the property that makes loss runs reproducible.
  SimTransport a, b;
  ASSERT_TRUE(a.SetLossRate(0.4, 77).ok());
  ASSERT_TRUE(b.SetLossRate(0.4, 77).ok());
  a.SetMaxRetries(1);
  b.SetMaxRetries(1);
  for (int i = 0; i < 64; ++i) {
    auto da = a.Deliver(1, 2, 3, Payload("x"));
    auto db = b.Deliver(1, 2, 3, Payload("x"));
    ASSERT_TRUE(da.ok());
    ASSERT_TRUE(db.ok());
    EXPECT_EQ(da.value().delivered, db.value().delivered) << "delivery " << i;
    EXPECT_EQ(da.value().attempts, db.value().attempts) << "delivery " << i;
  }
}

TEST(DatagramTest, DataFrameRoundTrips) {
  DatagramFrame frame;
  frame.kind = FrameKind::kData;
  frame.epoch = 0x0123456789ABCDEFull;
  frame.from = 7;
  frame.to = kQuerierId;
  frame.attempt = 3;
  frame.payload = Payload("wire body");
  const Bytes wire = SerializeDatagramFrame(frame);
  ASSERT_EQ(wire.size(), kDatagramHeaderBytes + frame.payload.size());
  auto parsed = ParseDatagramFrame(wire.data(), wire.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().kind, FrameKind::kData);
  EXPECT_EQ(parsed.value().epoch, frame.epoch);
  EXPECT_EQ(parsed.value().from, 7u);
  EXPECT_EQ(parsed.value().to, kQuerierId);
  EXPECT_EQ(parsed.value().attempt, 3u);
  EXPECT_EQ(parsed.value().payload, frame.payload);
}

TEST(DatagramTest, AckFrameRoundTrips) {
  DatagramFrame ack;
  ack.kind = FrameKind::kAck;
  ack.epoch = 12;
  ack.from = 1;
  ack.to = 2;
  ack.attempt = 1;
  const Bytes wire = SerializeDatagramFrame(ack);
  EXPECT_EQ(wire.size(), kDatagramHeaderBytes);
  auto parsed = ParseDatagramFrame(wire.data(), wire.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kind, FrameKind::kAck);
}

TEST(DatagramTest, RejectsEveryMalformedShape) {
  DatagramFrame frame;
  frame.kind = FrameKind::kData;
  frame.epoch = 1;
  frame.from = 1;
  frame.to = 2;
  frame.payload = Payload("p");
  const Bytes good = SerializeDatagramFrame(frame);
  ASSERT_TRUE(ParseDatagramFrame(good.data(), good.size()).ok());

  // Truncated header.
  EXPECT_FALSE(ParseDatagramFrame(good.data(), kDatagramHeaderBytes - 1).ok());
  // Bad magic.
  Bytes bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(ParseDatagramFrame(bad.data(), bad.size()).ok());
  // Unsupported version.
  bad = good;
  bad[4] = kDatagramVersion + 1;
  EXPECT_FALSE(ParseDatagramFrame(bad.data(), bad.size()).ok());
  // Unknown kind.
  bad = good;
  bad[5] = 99;
  EXPECT_FALSE(ParseDatagramFrame(bad.data(), bad.size()).ok());
  // Nonzero flags / reserved bits (must stay zero until a version bump).
  bad = good;
  bad[6] = 1;
  EXPECT_FALSE(ParseDatagramFrame(bad.data(), bad.size()).ok());
  bad = good;
  bad[27] = 1;
  EXPECT_FALSE(ParseDatagramFrame(bad.data(), bad.size()).ok());
  // Payload length disagreeing with the datagram size — both ways.
  bad = good;
  bad[28] = 2;
  EXPECT_FALSE(ParseDatagramFrame(bad.data(), bad.size()).ok());
  EXPECT_FALSE(ParseDatagramFrame(good.data(), good.size() - 1).ok());
  // Ack frames carry no payload.
  DatagramFrame ack;
  ack.kind = FrameKind::kAck;
  ack.payload = Payload("x");
  const Bytes ack_wire = SerializeDatagramFrame(ack);
  EXPECT_FALSE(ParseDatagramFrame(ack_wire.data(), ack_wire.size()).ok());
}

class UdpTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(transport_.Start({1, 2, 3, kQuerierId}).ok());
  }
  UdpTransport transport_;
};

TEST_F(UdpTransportTest, DeliversThroughRealSockets) {
  auto d = transport_.Deliver(1, 2, 5, Payload("over loopback"));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d.value().delivered);
  EXPECT_EQ(d.value().attempts, 1u);
  EXPECT_EQ(d.value().payload, Payload("over loopback"));
  EXPECT_EQ(transport_.datagrams_sent(), 1u);
  EXPECT_GE(transport_.acks_sent(), 1u);
  // To the querier endpoint too (the root's report edge).
  auto q = transport_.Deliver(3, kQuerierId, 5, Payload("final"));
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().delivered);
}

TEST_F(UdpTransportTest, SequentialEpochsReuseTheEdges) {
  for (uint64_t epoch = 1; epoch <= 20; ++epoch) {
    auto d = transport_.Deliver(1, 2, epoch,
                                Payload("e" + std::to_string(epoch)));
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d.value().delivered) << "epoch " << epoch;
    EXPECT_EQ(d.value().payload, Payload("e" + std::to_string(epoch)));
  }
}

TEST_F(UdpTransportTest, UnknownNodeIsNotFound) {
  auto d = transport_.Deliver(1, 99, 1, Payload("x"));
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST_F(UdpTransportTest, OversizedPayloadIsRejected) {
  Bytes huge(kMaxDatagramPayload + 1, 0xAB);
  auto d = transport_.Deliver(1, 2, 1, std::move(huge));
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UdpTransportTest, InjectedLossNeverRadiates) {
  // Deterministic sender-side loss: a "lost" attempt is destroyed
  // before the antenna, so certain loss radiates nothing and costs the
  // same accounting as the simulator — not ack timeouts.
  ASSERT_TRUE(transport_.SetLossRate(1.0, 11).ok());
  transport_.SetMaxRetries(2);
  auto d = transport_.Deliver(1, 2, 1, Payload("doomed"));
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d.value().delivered);
  EXPECT_EQ(d.value().attempts, 3u);
  EXPECT_EQ(transport_.datagrams_sent(), 0u);
  uint64_t want_backoff = 0;
  for (uint32_t attempt = 1; attempt <= 2; ++attempt) {
    want_backoff += RetryBackoffSlots(1, 1, attempt);
  }
  EXPECT_EQ(d.value().backoff_slots, want_backoff);
}

TEST_F(UdpTransportTest, InjectedLossPatternMatchesSimulator) {
  // Same seed, same per-attempt draw sequence: the UDP backend's
  // delivered/attempt pattern must be bit-identical to SimTransport's
  // on a healthy loopback. This is the transport differential's core.
  SimTransport sim;
  ASSERT_TRUE(sim.SetLossRate(0.35, 1234).ok());
  ASSERT_TRUE(transport_.SetLossRate(0.35, 1234).ok());
  sim.SetMaxRetries(2);
  transport_.SetMaxRetries(2);
  for (int i = 0; i < 40; ++i) {
    auto ds = sim.Deliver(1, 2, 7, Payload("x"));
    auto du = transport_.Deliver(1, 2, 7, Payload("x"));
    ASSERT_TRUE(ds.ok());
    ASSERT_TRUE(du.ok()) << du.status().ToString();
    EXPECT_EQ(ds.value().delivered, du.value().delivered) << "delivery " << i;
    EXPECT_EQ(ds.value().attempts, du.value().attempts) << "delivery " << i;
    EXPECT_EQ(ds.value().backoff_slots, du.value().backoff_slots);
  }
}

TEST_F(UdpTransportTest, StopMakesDeliverFail) {
  transport_.Stop();
  auto d = transport_.Deliver(1, 2, 1, Payload("x"));
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kFailedPrecondition);
}

TEST(UdpTransportStartTest, RejectsDuplicateIdsAndDoubleStart) {
  UdpTransport transport;
  EXPECT_FALSE(transport.Start({1, 1}).ok());
  ASSERT_TRUE(transport.Start({1, 2}).ok());
  EXPECT_FALSE(transport.Start({3, 4}).ok());
  transport.Stop();
  transport.Stop();  // idempotent
}

}  // namespace
}  // namespace sies::net
