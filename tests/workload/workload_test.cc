#include "workload/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sies::workload {
namespace {

TraceConfig SmallConfig() {
  TraceConfig c;
  c.num_sources = 32;
  c.scale_pow10 = 2;
  c.seed = 42;
  return c;
}

TEST(TraceGeneratorTest, TemperatureWithinIntelLabEnvelope) {
  TraceGenerator gen(SmallConfig());
  for (uint32_t i = 0; i < 32; ++i) {
    for (uint64_t epoch = 0; epoch < 10; ++epoch) {
      double t = gen.ReadingAt(i, epoch).temperature;
      EXPECT_GE(t, 18.0);
      EXPECT_LE(t, 50.0);
    }
  }
}

TEST(TraceGeneratorTest, FourDecimalPrecision) {
  TraceGenerator gen(SmallConfig());
  for (uint32_t i = 0; i < 10; ++i) {
    double t = gen.ReadingAt(i, 0).temperature;
    double scaled = t * 1e4;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-6)
        << "temperature should have 4 decimal digits";
  }
}

TEST(TraceGeneratorTest, Deterministic) {
  TraceGenerator a(SmallConfig()), b(SmallConfig());
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.ValueAt(i, 5), b.ValueAt(i, 5));
    EXPECT_DOUBLE_EQ(a.ReadingAt(i, 5).humidity, b.ReadingAt(i, 5).humidity);
  }
}

TEST(TraceGeneratorTest, SeedsSeparateTraces) {
  TraceConfig c1 = SmallConfig(), c2 = SmallConfig();
  c2.seed = 43;
  TraceGenerator a(c1), b(c2);
  int same = 0;
  for (uint32_t i = 0; i < 20; ++i) {
    if (a.ValueAt(i, 0) == b.ValueAt(i, 0)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(TraceGeneratorTest, EpochsAndSourcesVary) {
  TraceGenerator gen(SmallConfig());
  std::set<uint64_t> values;
  for (uint32_t i = 0; i < 16; ++i) values.insert(gen.ValueAt(i, 0));
  EXPECT_GT(values.size(), 10u) << "sources should differ";
  values.clear();
  for (uint64_t e = 0; e < 16; ++e) values.insert(gen.ValueAt(0, e));
  EXPECT_GT(values.size(), 10u) << "epochs should differ";
}

TEST(TraceGeneratorTest, DomainScaling) {
  for (uint32_t k = 0; k <= 4; ++k) {
    TraceConfig c = SmallConfig();
    c.scale_pow10 = k;
    TraceGenerator gen(c);
    uint64_t lo = gen.DomainLower(), hi = gen.DomainUpper();
    EXPECT_EQ(lo, 18 * static_cast<uint64_t>(std::pow(10, k)));
    EXPECT_EQ(hi, 50 * static_cast<uint64_t>(std::pow(10, k)));
    for (uint32_t i = 0; i < 8; ++i) {
      uint64_t v = gen.ValueAt(i, 1);
      EXPECT_GE(v, lo);
      EXPECT_LE(v, hi);
    }
  }
}

TEST(TraceGeneratorTest, ScalingIsTruncationOfSameReading) {
  // D = [18,50] x 10^k: value at k+1 begins with the digits of value at
  // k (truncation, not re-rounding) — the paper's scaling semantics.
  TraceConfig c2 = SmallConfig();
  TraceConfig c3 = SmallConfig();
  c3.scale_pow10 = 3;
  TraceGenerator g2(c2), g3(c3);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(g3.ValueAt(i, 2) / 10, g2.ValueAt(i, 2));
  }
}

TEST(TraceGeneratorTest, CompanionChannelsPlausible) {
  TraceGenerator gen(SmallConfig());
  core::SensorReading r = gen.ReadingAt(3, 3);
  EXPECT_GE(r.humidity, 30.0);
  EXPECT_LE(r.humidity, 70.0);
  EXPECT_GE(r.light, 100.0);
  EXPECT_LE(r.light, 1000.0);
  EXPECT_GE(r.voltage, 2.0);
  EXPECT_LE(r.voltage, 2.8);
}

TEST(RandomWalkTest, StaysInDomainAndDrifts) {
  TraceConfig c = SmallConfig();
  c.temporal_model = TemporalModel::kRandomWalk;
  c.walk_step = 0.5;
  TraceGenerator gen(c);
  for (uint32_t i = 0; i < 8; ++i) {
    double prev = gen.ReadingAt(i, 0).temperature;
    for (uint64_t e = 1; e <= 20; ++e) {
      double t = gen.ReadingAt(i, e).temperature;
      EXPECT_GE(t, 18.0);
      EXPECT_LE(t, 50.0);
      // Smoothness: consecutive epochs differ by at most the step
      // (plus reflection, bounded by 2 steps).
      EXPECT_LE(std::abs(t - prev), 1.0 + 1e-9)
          << "source " << i << " epoch " << e;
      prev = t;
    }
  }
}

TEST(RandomWalkTest, DeterministicAndDistinctFromIid) {
  TraceConfig walk = SmallConfig();
  walk.temporal_model = TemporalModel::kRandomWalk;
  TraceGenerator a(walk), b(walk);
  EXPECT_EQ(a.ValueAt(3, 7), b.ValueAt(3, 7));
  TraceGenerator iid(SmallConfig());
  int same = 0;
  for (uint64_t e = 1; e <= 10; ++e) {
    if (a.ValueAt(0, e) == iid.ValueAt(0, e)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomWalkTest, WalkActuallyMoves) {
  TraceConfig c = SmallConfig();
  c.temporal_model = TemporalModel::kRandomWalk;
  TraceGenerator gen(c);
  std::set<uint64_t> values;
  for (uint64_t e = 0; e <= 20; ++e) values.insert(gen.ValueAt(0, e));
  EXPECT_GT(values.size(), 5u);
}

TEST(SnapshotTest, SumMatchesValues) {
  TraceGenerator gen(SmallConfig());
  EpochSnapshot snap = Snapshot(gen, 7);
  ASSERT_EQ(snap.values.size(), 32u);
  uint64_t sum = 0;
  for (uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(snap.values[i], gen.ValueAt(i, 7));
    sum += snap.values[i];
  }
  EXPECT_EQ(snap.exact_sum, sum);
}

TEST(SnapshotTest, MeanNearDomainCenter) {
  TraceConfig c = SmallConfig();
  c.num_sources = 1024;
  TraceGenerator gen(c);
  EpochSnapshot snap = Snapshot(gen, 1);
  double mean = static_cast<double>(snap.exact_sum) / 1024.0;
  // Uniform over [1800, 5000]: mean ~3400.
  EXPECT_NEAR(mean, 3400.0, 120.0);
}

}  // namespace
}  // namespace sies::workload
