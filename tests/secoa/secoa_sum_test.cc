#include "secoa/secoa_sum.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "crypto/prime.h"

namespace sies::secoa {
namespace {

class SecoaSumTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 4;
  static constexpr uint32_t kJ = 16;  // small J keeps the suite fast

  SecoaSumTest()
      : rng_(321),
        kp_(crypto::GenerateRsaKeyPair(512, rng_).value()),
        ops_(kp_.public_key),
        keys_(GenerateKeys(kN, {7})),
        aggregator_(ops_, Params()),
        querier_(ops_, Params(), keys_) {
    for (uint32_t i = 0; i < kN; ++i) {
      sources_.emplace_back(ops_, Params(), i, keys_.sources[i]);
    }
    all_.resize(kN);
    std::iota(all_.begin(), all_.end(), 0u);
  }

  static SumParams Params() {
    SumParams p;
    p.num_sources = kN;
    p.j = kJ;
    p.sketch_seed = 99;
    return p;
  }

  // Full honest run: sources -> one aggregator -> finalize at the sink.
  SumPsr RunNetwork(const std::vector<uint64_t>& values, uint64_t epoch) {
    std::vector<SumPsr> psrs;
    for (uint32_t i = 0; i < values.size(); ++i) {
      psrs.push_back(sources_[i].CreatePsr(values[i], epoch).value());
    }
    SumPsr merged = aggregator_.Merge(psrs).value();
    return aggregator_.Finalize(merged).value();
  }

  Xoshiro256 rng_;
  crypto::RsaKeyPair kp_;
  SealOps ops_;
  QuerierKeys keys_;
  std::vector<SumSource> sources_;
  SumAggregator aggregator_;
  SumQuerier querier_;
  std::vector<uint32_t> all_;
};

TEST_F(SecoaSumTest, SourcePsrShape) {
  SumPsr psr = sources_[0].CreatePsr(100, 1).value();
  EXPECT_FALSE(psr.final_form);
  EXPECT_EQ(psr.values.size(), kJ);
  EXPECT_EQ(psr.winners.size(), kJ);
  EXPECT_EQ(psr.certs.size(), kJ);
  EXPECT_EQ(psr.seals.size(), kJ);
  for (uint32_t j = 0; j < kJ; ++j) {
    EXPECT_EQ(psr.winners[j], 0u);
    EXPECT_EQ(psr.seals[j].position, psr.values[j]);
  }
}

TEST_F(SecoaSumTest, HonestRunVerifies) {
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 1);
  EXPECT_TRUE(final_psr.final_form);
  auto eval = querier_.Evaluate(final_psr, 1, all_).value();
  EXPECT_TRUE(eval.verified);
  // 2^x̄ estimate within a loose envelope of the truth (small J).
  EXPECT_GT(eval.estimate, 2400.0 / 16);
  EXPECT_LT(eval.estimate, 2400.0 * 16);
}

TEST_F(SecoaSumTest, MergeTakesPerInstanceMax) {
  SumPsr a = sources_[0].CreatePsr(500, 2).value();
  SumPsr b = sources_[1].CreatePsr(800, 2).value();
  SumPsr merged = aggregator_.Merge({a, b}).value();
  for (uint32_t j = 0; j < kJ; ++j) {
    EXPECT_EQ(merged.values[j], std::max(a.values[j], b.values[j]));
    uint32_t expect_winner =
        a.values[j] >= b.values[j] ? 0u : 1u;
    // Tie keeps the first child (our deterministic convention).
    EXPECT_EQ(merged.winners[j], expect_winner) << "instance " << j;
  }
}

TEST_F(SecoaSumTest, MergeOrderIndependentValues) {
  SumPsr a = sources_[0].CreatePsr(400, 3).value();
  SumPsr b = sources_[1].CreatePsr(600, 3).value();
  SumPsr c = sources_[2].CreatePsr(800, 3).value();
  SumPsr abc = aggregator_.Merge({a, b, c}).value();
  SumPsr cab = aggregator_.Merge({c, a, b}).value();
  EXPECT_EQ(abc.values, cab.values);
  // SEAL residues also match (folding is commutative).
  for (uint32_t j = 0; j < kJ; ++j) {
    EXPECT_EQ(abc.seals[j].residue, cab.seals[j].residue);
  }
}

TEST_F(SecoaSumTest, FinalizeGroupsSealsByPosition) {
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 4);
  std::set<uint64_t> positions;
  for (const Seal& seal : final_psr.seals) {
    EXPECT_TRUE(positions.insert(seal.position).second)
        << "duplicate SEAL group position";
  }
  std::set<uint8_t> distinct_values(final_psr.values.begin(),
                                    final_psr.values.end());
  EXPECT_EQ(positions.size(), distinct_values.size());
}

TEST_F(SecoaSumTest, EstimateTracksMagnitude) {
  auto estimate_for = [&](uint64_t v) {
    SumPsr f = RunNetwork({v, v, v, v}, 5);
    return querier_.Evaluate(f, 5, all_).value().estimate;
  };
  EXPECT_LT(estimate_for(100), estimate_for(100000));
}

TEST_F(SecoaSumTest, TamperedSketchValueDetected) {
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 6);
  SumPsr attacked = final_psr;
  attacked.values[0] += 3;  // inflate one instance's value
  EXPECT_FALSE(querier_.Evaluate(attacked, 6, all_).value().verified);
}

TEST_F(SecoaSumTest, TamperedXorCertDetected) {
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 7);
  SumPsr attacked = final_psr;
  attacked.xor_cert[0] ^= 0x01;
  EXPECT_FALSE(querier_.Evaluate(attacked, 7, all_).value().verified);
}

TEST_F(SecoaSumTest, TamperedSealDetected) {
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 8);
  SumPsr attacked = final_psr;
  attacked.seals[0].residue =
      ops_.key().MulMod(attacked.seals[0].residue, crypto::BigUint(2)).value();
  EXPECT_FALSE(querier_.Evaluate(attacked, 8, all_).value().verified);
}

TEST_F(SecoaSumTest, ReplayedEpochDetected) {
  SumPsr old_psr = RunNetwork({500, 700, 300, 900}, 9);
  EXPECT_TRUE(querier_.Evaluate(old_psr, 9, all_).value().verified);
  EXPECT_FALSE(querier_.Evaluate(old_psr, 10, all_).value().verified);
}

TEST_F(SecoaSumTest, ForeignWinnerRejected) {
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 11);
  SumPsr attacked = final_psr;
  attacked.winners[0] = 77;  // not a participating source
  EXPECT_FALSE(querier_.Evaluate(attacked, 11, all_).value().verified);
}

TEST_F(SecoaSumTest, SerializationRoundTripInNetwork) {
  SumPsr psr = sources_[1].CreatePsr(650, 12).value();
  Bytes wire = SerializeSumPsr(ops_, psr);
  SumPsr back = ParseSumPsr(ops_, Params(), wire).value();
  EXPECT_FALSE(back.final_form);
  EXPECT_EQ(back.values, psr.values);
  EXPECT_EQ(back.winners, psr.winners);
  EXPECT_EQ(back.certs, psr.certs);
  for (uint32_t j = 0; j < kJ; ++j) {
    EXPECT_EQ(back.seals[j].residue, psr.seals[j].residue);
    EXPECT_EQ(back.seals[j].position, psr.seals[j].position);
  }
}

TEST_F(SecoaSumTest, SerializationRoundTripFinal) {
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 13);
  Bytes wire = SerializeSumPsr(ops_, final_psr);
  SumPsr back = ParseSumPsr(ops_, Params(), wire).value();
  EXPECT_TRUE(back.final_form);
  EXPECT_EQ(back.values, final_psr.values);
  EXPECT_EQ(back.xor_cert, final_psr.xor_cert);
  EXPECT_EQ(back.seals.size(), final_psr.seals.size());
  // Round-tripped PSR still verifies.
  EXPECT_TRUE(querier_.Evaluate(back, 13, all_).value().verified);
}

TEST_F(SecoaSumTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseSumPsr(ops_, Params(), Bytes(3, 0)).ok());
  SumPsr psr = sources_[0].CreatePsr(100, 1).value();
  Bytes wire = SerializeSumPsr(ops_, psr);
  wire.pop_back();
  EXPECT_FALSE(ParseSumPsr(ops_, Params(), wire).ok());
}

TEST_F(SecoaSumTest, ParseRejectsNonCanonicalGroups) {
  // A final-form PSR whose SEAL groups repeat or descend is rejected at
  // parse time (canonical encoding).
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 16);
  ASSERT_GE(final_psr.seals.size(), 2u);
  SumPsr shuffled = final_psr;
  std::swap(shuffled.seals[0], shuffled.seals[1]);  // descending pair
  Bytes wire = SerializeSumPsr(ops_, shuffled);
  EXPECT_FALSE(ParseSumPsr(ops_, Params(), wire).ok());
  SumPsr duplicated = final_psr;
  duplicated.seals[1] = duplicated.seals[0];  // duplicate position
  wire = SerializeSumPsr(ops_, duplicated);
  EXPECT_FALSE(ParseSumPsr(ops_, Params(), wire).ok());
}

TEST_F(SecoaSumTest, PaperModelByteFormulas) {
  SumParams p;
  p.j = 300;
  // RSA-1024 SEALs are 128 bytes; here the test key is 512-bit (64B).
  EXPECT_EQ(PaperModelEdgeBytes(p, ops_), 300u + 300u * 64 + 20);
  EXPECT_EQ(PaperModelFinalBytes(p, ops_, 4), 300u + 4u * 64 + 20);
}

TEST_F(SecoaSumTest, SoundWireFormulasMatchSerializedBytesExactly) {
  // The predicted wire widths must equal actual serialization, byte for
  // byte — the numbers Table V's "measured" rows rest on.
  SumPsr psr = sources_[0].CreatePsr(700, 17).value();
  EXPECT_EQ(SerializeSumPsr(ops_, psr).size(),
            SoundWireEdgeBytes(Params(), ops_));
  SumPsr final_psr = RunNetwork({500, 700, 300, 900}, 17);
  EXPECT_EQ(SerializeSumPsr(ops_, final_psr).size(),
            SoundWireFinalBytes(Params(), ops_, final_psr.seals.size()));
}

TEST_F(SecoaSumTest, FabricatedFinalPsrVerifies) {
  // The large-N bench helper must produce PSRs indistinguishable (to the
  // querier's verification) from honest ones.
  Xoshiro256 rng(5);
  std::vector<uint8_t> values = SampleSketchValues(Params(), 2400, rng);
  std::vector<uint32_t> winners(kJ);
  for (auto& w : winners) w = static_cast<uint32_t>(rng.NextBelow(kN));
  SumPsr psr = FabricateHonestFinalPsr(ops_, Params(), keys_, 14, all_,
                                       values, winners)
                   .value();
  EXPECT_TRUE(querier_.Evaluate(psr, 14, all_).value().verified);
  // And a tampered fabricated PSR still fails.
  psr.values[0] += 1;
  EXPECT_FALSE(querier_.Evaluate(psr, 14, all_).value().verified);
}

TEST_F(SecoaSumTest, SampleSketchValuesDistribution) {
  Xoshiro256 rng(6);
  SumParams p = Params();
  p.j = 300;
  std::vector<uint8_t> values = SampleSketchValues(p, 1 << 20, rng);
  ASSERT_EQ(values.size(), 300u);
  double mean = 0;
  for (uint8_t v : values) mean += v;
  mean /= 300.0;
  // max of 2^20 geometric draws has mean ~ log2(2^20) = 20 +- ~2.
  EXPECT_NEAR(mean, 20.0, 3.0);
}

TEST_F(SecoaSumTest, MergeValidation) {
  EXPECT_FALSE(aggregator_.Merge({}).ok());
  SumPsr final_form = RunNetwork({1, 2, 3, 4}, 15);
  EXPECT_FALSE(aggregator_.Merge({final_form}).ok());
  EXPECT_FALSE(aggregator_.Finalize(final_form).ok());  // already final
}

TEST_F(SecoaSumTest, QuerierRequiresFinalForm) {
  SumPsr psr = sources_[0].CreatePsr(100, 1).value();
  EXPECT_FALSE(querier_.Evaluate(psr, 1, all_).ok());
}

}  // namespace
}  // namespace sies::secoa
