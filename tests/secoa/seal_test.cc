#include "secoa/seal.h"

#include <gtest/gtest.h>

#include "crypto/prime.h"

namespace sies::secoa {
namespace {

class SealTest : public ::testing::Test {
 protected:
  SealTest()
      : rng_(77),
        kp_(crypto::GenerateRsaKeyPair(512, rng_).value()),
        ops_(kp_.public_key) {}

  Xoshiro256 rng_;
  crypto::RsaKeyPair kp_;
  SealOps ops_;
};

TEST_F(SealTest, CreateAtPositionZeroIsSeed) {
  crypto::BigUint seed(12345);
  Seal seal = ops_.Create(seed, 0).value();
  EXPECT_EQ(seal.residue, seed);
  EXPECT_EQ(seal.position, 0u);
}

TEST_F(SealTest, CreateRollsSeedForward) {
  crypto::BigUint seed(999);
  Seal s3 = ops_.Create(seed, 3).value();
  EXPECT_EQ(s3.position, 3u);
  EXPECT_EQ(s3.residue, kp_.public_key.ApplyTimes(seed, 3).value());
}

TEST_F(SealTest, CreateValidatesSeed) {
  EXPECT_FALSE(ops_.Create(crypto::BigUint(), 1).ok());       // zero
  EXPECT_FALSE(ops_.Create(kp_.public_key.n(), 1).ok());      // >= n
}

TEST_F(SealTest, RollForwardComposes) {
  crypto::BigUint seed(4242);
  Seal s2 = ops_.Create(seed, 2).value();
  Seal s5 = ops_.RollTo(s2, 5).value();
  EXPECT_EQ(s5.position, 5u);
  EXPECT_EQ(s5.residue, ops_.Create(seed, 5).value().residue);
}

TEST_F(SealTest, RollToSamePositionIsIdentity) {
  Seal s = ops_.Create(crypto::BigUint(7), 4).value();
  Seal same = ops_.RollTo(s, 4).value();
  EXPECT_EQ(same.residue, s.residue);
}

TEST_F(SealTest, CannotRollBackwards) {
  Seal s = ops_.Create(crypto::BigUint(7), 4).value();
  EXPECT_FALSE(ops_.RollTo(s, 3).ok());
}

TEST_F(SealTest, FoldRequiresEqualPositions) {
  Seal a = ops_.Create(crypto::BigUint(11), 2).value();
  Seal b = ops_.Create(crypto::BigUint(13), 3).value();
  EXPECT_FALSE(ops_.Fold(a, b).ok());
}

TEST_F(SealTest, FoldIsSealOfSeedProduct) {
  // E^k(a) * E^k(b) = E^k(a*b): the verification identity.
  crypto::BigUint sa(111), sb(222);
  for (uint64_t k : {0ull, 1ull, 4ull}) {
    Seal a = ops_.Create(sa, k).value();
    Seal b = ops_.Create(sb, k).value();
    Seal folded = ops_.Fold(a, b).value();
    crypto::BigUint product = ops_.FoldSeeds(sa, sb).value();
    EXPECT_EQ(folded.residue, ops_.Create(product, k).value().residue)
        << "position " << k;
  }
}

TEST_F(SealTest, RollThenFoldEqualsFoldThenRoll) {
  crypto::BigUint sa(333), sb(444);
  Seal a = ops_.Create(sa, 1).value();
  Seal b = ops_.Create(sb, 3).value();
  // Roll a to 3, fold, then roll to 6.
  Seal path1 = ops_.RollTo(
                       ops_.Fold(ops_.RollTo(a, 3).value(), b).value(), 6)
                   .value();
  // Fold seeds first, roll to 6 directly.
  Seal path2 =
      ops_.Create(ops_.FoldSeeds(kp_.public_key.ApplyTimes(sa, 1).value(),
                                 crypto::BigUint(1))
                      .value(),
                  0)
          .value();
  // Simpler independent check: E^6(E^1(sa) * sb') where sb' = E^3(sb)
  // rolled appropriately — compute expected directly.
  crypto::BigUint expected =
      kp_.public_key
          .ApplyTimes(kp_.public_key
                          .MulMod(kp_.public_key.ApplyTimes(sa, 3).value(),
                                  kp_.public_key.ApplyTimes(sb, 3).value())
                          .value(),
                      3)
          .value();
  EXPECT_EQ(path1.residue, expected);
  (void)path2;
}

TEST_F(SealTest, OneWayness) {
  // Without the private key, a rolled SEAL cannot be matched to a lower
  // position: check that rolling a *different* residue never collides.
  crypto::BigUint seed(5555);
  Seal high = ops_.Create(seed, 5).value();
  // An adversary claiming position 4 would need E^4(seed); verify that
  // hashing forward from the true position-5 value diverges.
  Seal four = ops_.Create(seed, 4).value();
  EXPECT_NE(high.residue, four.residue);
  // But the trapdoor holder CAN unroll (sanity of the RSA inverse).
  EXPECT_EQ(kp_.Invert(high.residue).value(), four.residue);
}

TEST_F(SealTest, TemporalSeedProperties) {
  Bytes key(20, 0x3c);
  crypto::BigUint n = kp_.public_key.n();
  crypto::BigUint s1 = DeriveTemporalSeed(key, 0, 1, n);
  EXPECT_FALSE(s1.IsZero());
  EXPECT_LT(s1, n);
  // Instance and epoch separation.
  EXPECT_NE(s1, DeriveTemporalSeed(key, 1, 1, n));
  EXPECT_NE(s1, DeriveTemporalSeed(key, 0, 2, n));
  // Determinism.
  EXPECT_EQ(s1, DeriveTemporalSeed(key, 0, 1, n));
  // Key separation.
  EXPECT_NE(s1, DeriveTemporalSeed(Bytes(20, 0x3d), 0, 1, n));
}

TEST_F(SealTest, SealBytesMatchesModulus) {
  EXPECT_EQ(ops_.SealBytes(), 64u);  // 512-bit test key
}

}  // namespace
}  // namespace sies::secoa
