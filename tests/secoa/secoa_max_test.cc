#include "secoa/secoa_max.h"

#include <gtest/gtest.h>

#include <numeric>

#include "crypto/prime.h"

namespace sies::secoa {
namespace {

class SecoaMaxTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 6;

  SecoaMaxTest()
      : rng_(123),
        kp_(crypto::GenerateRsaKeyPair(512, rng_).value()),
        ops_(kp_.public_key),
        keys_(GenerateKeys(kN, {9, 9, 9})),
        aggregator_(ops_),
        querier_(ops_, keys_) {
    for (uint32_t i = 0; i < kN; ++i) {
      sources_.emplace_back(ops_, i, keys_.sources[i]);
    }
    all_.resize(kN);
    std::iota(all_.begin(), all_.end(), 0u);
  }

  MaxPsr RunNetwork(const std::vector<uint64_t>& values, uint64_t epoch) {
    std::vector<MaxPsr> psrs;
    for (uint32_t i = 0; i < values.size(); ++i) {
      psrs.push_back(sources_[i].CreatePsr(values[i], epoch).value());
    }
    // Two-level aggregation: halves, then root.
    size_t half = psrs.size() / 2;
    MaxPsr left = aggregator_
                      .Merge(std::vector<MaxPsr>(psrs.begin(),
                                                 psrs.begin() + half))
                      .value();
    MaxPsr right = aggregator_
                       .Merge(std::vector<MaxPsr>(psrs.begin() + half,
                                                  psrs.end()))
                       .value();
    return aggregator_.Merge({left, right}).value();
  }

  Xoshiro256 rng_;
  crypto::RsaKeyPair kp_;
  SealOps ops_;
  QuerierKeys keys_;
  std::vector<MaxSource> sources_;
  MaxAggregator aggregator_;
  MaxQuerier querier_;
  std::vector<uint32_t> all_;
};

TEST_F(SecoaMaxTest, KeyGeneration) {
  EXPECT_EQ(keys_.sources.size(), kN);
  for (const auto& sk : keys_.sources) {
    EXPECT_EQ(sk.inflation_key.size(), 20u);
    EXPECT_EQ(sk.seed_key.size(), 20u);
    EXPECT_NE(sk.inflation_key, sk.seed_key);
  }
}

TEST_F(SecoaMaxTest, HonestMaxVerifies) {
  MaxPsr final_psr = RunNetwork({3, 9, 1, 7, 9, 2}, /*epoch=*/1);
  EXPECT_EQ(final_psr.value, 9u);
  auto eval = querier_.Evaluate(final_psr, 1, all_).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.max, 9u);
}

TEST_F(SecoaMaxTest, WinnerIdentityPropagates) {
  MaxPsr final_psr = RunNetwork({3, 9, 1, 7, 5, 2}, 1);
  EXPECT_EQ(final_psr.winner, 1u);
}

TEST_F(SecoaMaxTest, AllEqualValues) {
  MaxPsr final_psr = RunNetwork({4, 4, 4, 4, 4, 4}, 2);
  EXPECT_EQ(final_psr.value, 4u);
  EXPECT_TRUE(querier_.Evaluate(final_psr, 2, all_).value().verified);
}

TEST_F(SecoaMaxTest, ZeroValuesSupported) {
  MaxPsr final_psr = RunNetwork({0, 0, 0, 0, 0, 0}, 3);
  EXPECT_EQ(final_psr.value, 0u);
  EXPECT_TRUE(querier_.Evaluate(final_psr, 3, all_).value().verified);
}

TEST_F(SecoaMaxTest, InflatedValueDetected) {
  MaxPsr final_psr = RunNetwork({3, 9, 1, 7, 5, 2}, 4);
  // A compromised sink claims max = 12 (keeps everything else).
  MaxPsr attacked = final_psr;
  attacked.value = 12;
  attacked.seal = ops_.RollTo(attacked.seal, 12).value();  // rolling is easy
  // ...but the inflation certificate cannot be forged.
  EXPECT_FALSE(querier_.Evaluate(attacked, 4, all_).value().verified);
}

TEST_F(SecoaMaxTest, DeflatedValueDetected) {
  MaxPsr final_psr = RunNetwork({3, 9, 1, 7, 5, 2}, 5);
  // Claim max = 7 with source 3 (a real value + valid certificate!)...
  MaxPsr attacked = final_psr;
  attacked.value = 7;
  attacked.winner = 3;
  attacked.inflation_cert =
      MakeInflationCert(keys_.sources[3].inflation_key, 7, 0, 5);
  // ...but the SEAL cannot be unrolled from 9 back to 7.
  // The best the adversary can do is present the position-9 aggregate.
  EXPECT_FALSE(querier_.Evaluate(attacked, 5, all_).value().verified);
}

TEST_F(SecoaMaxTest, ReplayedEpochDetected) {
  MaxPsr old_psr = RunNetwork({3, 9, 1, 7, 5, 2}, 6);
  // Replay epoch-6 result at epoch 7: temporal seeds and certs differ.
  EXPECT_TRUE(querier_.Evaluate(old_psr, 6, all_).value().verified);
  EXPECT_FALSE(querier_.Evaluate(old_psr, 7, all_).value().verified);
}

TEST_F(SecoaMaxTest, UnknownWinnerRejected) {
  MaxPsr final_psr = RunNetwork({3, 9, 1, 7, 5, 2}, 8);
  MaxPsr attacked = final_psr;
  attacked.winner = 99;  // not a real source
  EXPECT_FALSE(querier_.Evaluate(attacked, 8, all_).value().verified);
}

TEST_F(SecoaMaxTest, SerializationRoundTrip) {
  MaxPsr psr = sources_[2].CreatePsr(5, 9).value();
  Bytes wire = SerializeMaxPsr(ops_, psr);
  EXPECT_EQ(wire.size(), 12 + kInflationCertBytes + ops_.SealBytes());
  MaxPsr back = ParseMaxPsr(ops_, wire).value();
  EXPECT_EQ(back.value, psr.value);
  EXPECT_EQ(back.winner, psr.winner);
  EXPECT_EQ(back.inflation_cert, psr.inflation_cert);
  EXPECT_EQ(back.seal.residue, psr.seal.residue);
  EXPECT_EQ(back.seal.position, psr.seal.position);
}

TEST_F(SecoaMaxTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseMaxPsr(ops_, Bytes(10, 0)).ok());
  // Residue >= n rejected.
  MaxPsr psr = sources_[0].CreatePsr(3, 1).value();
  Bytes wire = SerializeMaxPsr(ops_, psr);
  for (size_t i = 12 + kInflationCertBytes; i < wire.size(); ++i) {
    wire[i] = 0xff;
  }
  EXPECT_FALSE(ParseMaxPsr(ops_, wire).ok());
}

TEST_F(SecoaMaxTest, MergeValidatesInput) {
  EXPECT_FALSE(aggregator_.Merge({}).ok());
}

TEST_F(SecoaMaxTest, PartialParticipation) {
  // Sources 0 and 2 report; querier verifies with just those seeds.
  std::vector<MaxPsr> psrs = {sources_[0].CreatePsr(5, 10).value(),
                              sources_[2].CreatePsr(8, 10).value()};
  MaxPsr merged = aggregator_.Merge(psrs).value();
  EXPECT_TRUE(querier_.Evaluate(merged, 10, {0, 2}).value().verified);
  // With the wrong participation list the reference SEAL mismatches.
  EXPECT_FALSE(querier_.Evaluate(merged, 10, all_).value().verified);
}

}  // namespace
}  // namespace sies::secoa
