// SECOA_S at the paper's default J = 300: a full network epoch at small
// N to prove the protocol operates at paper-scale sketch counts (the
// other SECOA tests use small J for speed).
#include <gtest/gtest.h>

#include "runner/runner.h"

namespace sies::runner {
namespace {

TEST(SecoaDefaultJTest, FullEpochAtJ300) {
  ExperimentConfig config;
  config.scheme = Scheme::kSecoa;
  config.num_sources = 8;
  config.fanout = 4;
  config.scale_pow10 = 2;  // D = [1800, 5000]
  config.epochs = 1;
  config.secoa_j = 300;    // the paper's accuracy calibration
  config.rsa_modulus_bits = 512;
  config.seed = 4;
  auto result = RunExperiment(config).value();
  EXPECT_TRUE(result.all_verified);
  // Accuracy: J=300 bounds the raw estimator within its known envelope.
  EXPECT_LT(result.mean_relative_error, 0.6);
  // Edge bytes: J * (1 sketch + 4 winner + 20 cert + 64 seal) + 1 form
  // byte = 300 * 89 + 1 = 26701.
  EXPECT_DOUBLE_EQ(result.source_to_aggregator_bytes, 26701.0);
  // Final edge is the compact form: far smaller than in-network.
  EXPECT_LT(result.aggregator_to_querier_bytes,
            result.source_to_aggregator_bytes / 5);
}

}  // namespace
}  // namespace sies::runner
