// Race stress: the concurrency surfaces the engine actually exposes,
// hammered from real threads so ThreadSanitizer (scripts/check.sh --tsan)
// has something to bite on. The documented contract is exercised, not
// violated: registry mutations happen between epochs on the driver
// thread; everything cross-thread is the telemetry singletons, the
// shared epoch-key caches under the pool fan-out, and concurrent const
// evaluation.
//
// Threads in flight simultaneously:
//   - two engine drivers, each running its own epoch loop (admission and
//     teardown between epochs) over a shared ThreadPool, both reporting
//     into the global MetricsRegistry / AuditTrail / Tracer;
//   - a metrics scraper calling ToJson()/ToPrometheus() in a loop;
//   - an audit scraper calling ToJson()/CountOf()/Events() while the
//     drivers Record() admission/teardown events;
//   - a trace scraper pulling ToChromeTrace() while spans are recorded.
//
// Functional assertions keep the test honest under plain builds too:
// every epoch of both drivers must verify, and the scrapers must see
// monotonically growing state.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "engine/engine.h"
#include "telemetry/audit.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/workload.h"

namespace sies::engine {
namespace {

constexpr uint32_t kN = 12;
constexpr uint64_t kEpochs = 24;

core::Query MakeQuery(core::Aggregate aggregate, uint32_t id) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = core::Field::kTemperature;
  q.scale_pow10 = 2;
  q.query_id = id;
  return q;
}

// One engine's full life: admit a base query, run epochs, admit a second
// query mid-run, tear it down again, verify every outcome. Telemetry is
// poked every epoch so the scraper threads race against live writers.
void DriveEngine(uint64_t seed, common::ThreadPool* pool,
                 std::atomic<bool>* failed) {
  auto params = core::MakeParams(kN, seed, /*value_bytes=*/8);
  if (!params.ok()) { failed->store(true); return; }
  core::QuerierKeys keys = core::GenerateKeys(params.value(),
                                              EncodeUint64(seed));
  MultiQueryEngine eng(params.value(), keys);
  eng.SetThreadPool(pool);

  workload::TraceConfig tc;
  tc.num_sources = kN;
  tc.seed = seed;
  workload::TraceGenerator trace(tc);

  if (!eng.Admit(MakeQuery(core::Aggregate::kSum, 0), 1).ok()) {
    failed->store(true);
    return;
  }
  telemetry::Counter* epochs_run = telemetry::MetricsRegistry::Global()
      .GetCounter("race_stress_epochs", {{"driver", std::to_string(seed)}});

  for (uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    // Live admission/teardown between epochs (the documented mutation
    // window), from this driver thread only.
    if (epoch == 8) {
      if (!eng.Admit(MakeQuery(core::Aggregate::kVariance, 1), epoch).ok()) {
        failed->store(true);
        return;
      }
      telemetry::AuditTrail::Global().Record(
          telemetry::AuditKind::kQueryAdmitted, epoch, telemetry::kAuditNoNode,
          "race stress admits q1");
    }
    if (epoch == 16) {
      if (!eng.Teardown(1, epoch).ok()) { failed->store(true); return; }
      telemetry::AuditTrail::Global().Record(
          telemetry::AuditKind::kQueryTeardown, epoch, telemetry::kAuditNoNode,
          "race stress tears q1 down");
    }

    telemetry::ScopedSpan span("race_epoch", "engine", epoch);
    std::vector<Bytes> payloads;
    for (uint32_t i = 0; i < kN; ++i) {
      auto p = eng.CreateSourcePayload(i, trace.ReadingAt(i, epoch), epoch);
      if (!p.ok()) { failed->store(true); return; }
      payloads.push_back(std::move(p).value());
    }
    auto merged = eng.Merge(payloads);
    if (!merged.ok()) { failed->store(true); return; }
    auto outcomes = eng.Evaluate(merged.value(), epoch);
    if (!outcomes.ok()) { failed->store(true); return; }
    for (const QueryEpochOutcome& out : outcomes.value()) {
      if (!out.outcome.verified) failed->store(true);
    }
    epochs_run->Increment();
  }
}

TEST(RaceStressTest, ConcurrentEnginesScrapersAndTelemetry) {
  telemetry::MetricsRegistry::Global().Reset();
  telemetry::AuditTrail::Global().Reset();
  telemetry::AuditTrail::Global().Enable();
  telemetry::Tracer::Global().Reset();
  telemetry::Tracer::Global().Enable();

  // Sentinel handle so the scrapers never observe an empty registry —
  // the drivers' own counters appear only once engine setup finishes.
  telemetry::MetricsRegistry::Global()
      .GetCounter("race_stress_sentinel")->Increment();

  common::ThreadPool pool(4);
  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};

  std::thread driver_a([&] { DriveEngine(17, &pool, &failed); });
  std::thread driver_b([&] { DriveEngine(29, &pool, &failed); });

  std::thread metrics_scraper([&] {
    size_t scrapes = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::string json = telemetry::MetricsRegistry::Global().ToJson();
      std::string prom = telemetry::MetricsRegistry::Global().ToPrometheus();
      if (json.empty() || prom.empty()) failed.store(true);
      ++scrapes;
    }
    if (scrapes == 0) failed.store(true);
  });
  std::thread audit_scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::string json = telemetry::AuditTrail::Global().ToJson();
      if (json.empty()) failed.store(true);
      telemetry::AuditTrail::Global().CountOf(
          telemetry::AuditKind::kQueryAdmitted);
      telemetry::AuditTrail::Global().Events();
    }
  });
  std::thread trace_scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      telemetry::Tracer::Global().ToChromeTrace();
    }
  });

  driver_a.join();
  driver_b.join();
  done.store(true, std::memory_order_release);
  metrics_scraper.join();
  audit_scraper.join();
  trace_scraper.join();

  EXPECT_FALSE(failed.load()) << "a driver failed to verify an epoch or a "
                                 "scraper observed broken telemetry";
  // Both drivers ran to completion and their counters landed.
  std::string json = telemetry::MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("race_stress_epochs"), std::string::npos);
  // Admission/teardown audit events from both drivers. Per driver: the
  // engine records each Admit internally (epochs 1 and 8) plus our one
  // explicit cross-thread Record at epoch 8 — 3 admissions; teardown is
  // 1 internal + 1 explicit.
  EXPECT_EQ(telemetry::AuditTrail::Global().CountOf(
                telemetry::AuditKind::kQueryAdmitted), 6u);
  EXPECT_EQ(telemetry::AuditTrail::Global().CountOf(
                telemetry::AuditKind::kQueryTeardown), 4u);
  telemetry::AuditTrail::Global().Disable();
  telemetry::Tracer::Global().Disable();
}

// Concurrent scrapes against a registry that is also handing out new
// handles: GetCounter/GetGauge allocate under the registry mutex while
// ToJson iterates — a classic iterator-invalidation race if the lock
// were ever narrowed incorrectly.
TEST(RaceStressTest, RegistryHandleChurnVsScrape) {
  telemetry::MetricsRegistry::Global().Reset();
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};

  std::thread churn([&] {
    for (int i = 0; i < 400; ++i) {
      telemetry::Counter* c = telemetry::MetricsRegistry::Global().GetCounter(
          "churn_counter", {{"i", std::to_string(i % 13)}});
      c->Increment();
      telemetry::Gauge* g = telemetry::MetricsRegistry::Global().GetGauge(
          "churn_gauge", {{"i", std::to_string(i % 7)}});
      g->Set(i);
    }
    done.store(true, std::memory_order_release);
  });
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (telemetry::MetricsRegistry::Global().ToPrometheus().empty()) {
        failed.store(true);
      }
    }
  });
  churn.join();
  scraper.join();
  EXPECT_FALSE(failed.load());
}

// The shared source-side EpochKeyCache is hit from every pool worker
// during the per-channel fan-out; two engines on one pool double the
// pressure. Single-epoch variant so failures localize.
TEST(RaceStressTest, SharedPoolTwoEnginesOneEpoch) {
  common::ThreadPool pool(4);
  std::atomic<bool> failed{false};
  std::thread a([&] { DriveEngine(101, &pool, &failed); });
  std::thread b([&] { DriveEngine(102, &pool, &failed); });
  a.join();
  b.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace sies::engine
