// Capstone integration: one long-lived deployment exercising every layer
// together — provisioning blobs, μTesla query registration, epochs over
// a lossy radio, a node failure with topology repair, an in-flight
// attack, a query switch without re-keying, and the querier's log at the
// end. If the layers compose, this test is quiet; any seam failure
// surfaces here even when the per-module tests pass.
#include <gtest/gtest.h>

#include "net/adversary.h"
#include "runner/deployment.h"
#include "runner/runner.h"
#include "sies/message_format.h"
#include "sies/provisioning.h"

namespace sies::runner {
namespace {

TEST(FullStackTest, LifecycleAcrossAllLayers) {
  constexpr uint32_t kN = 32;
  constexpr uint64_t kSeed = 2026;

  // --- Provisioning: keys survive a serialization round trip. ---
  auto params = core::MakeParams(kN, kSeed).value();
  core::Deployment provisioned;
  provisioned.params = params;
  provisioned.keys = core::GenerateKeys(params, EncodeUint64(kSeed));
  Bytes blob = core::SerializeDeployment(provisioned).value();
  ASSERT_TRUE(core::ParseDeployment(blob).ok());

  // --- Deployment over an irregular topology. ---
  Xoshiro256 topo_rng(kSeed);
  auto topology = net::Topology::BuildRandomTree(kN, 4, topo_rng).value();
  workload::TraceConfig tc;
  tc.seed = kSeed;
  tc.temporal_model = workload::TemporalModel::kRandomWalk;
  auto deployment =
      ContinuousDeployment::Create(topology, kSeed, tc).value();

  core::Query sum_query;
  sum_query.aggregate = core::Aggregate::kSum;
  sum_query.query_id = 1;
  ASSERT_TRUE(deployment.RegisterQuery(sum_query).ok());

  // --- Epochs 1-3: clean. ---
  for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
    auto out = deployment.RunEpoch(epoch).value();
    EXPECT_TRUE(out.verified) << "epoch " << epoch;
  }

  // --- Epoch 4: in-flight tampering is rejected. ---
  net::BitFlipAdversary tamper(deployment.network().topology().root(), 9);
  deployment.network().SetAdversary(&tamper);
  auto attacked = deployment.RunEpoch(4);
  deployment.network().SetAdversary(nullptr);
  if (attacked.ok() && tamper.tampered_count() > 0) {
    EXPECT_FALSE(attacked.value().verified);
  }

  // --- Epoch 5: a source fails, is reported, and the epoch verifies
  // --- against the reduced participant set. ---
  net::NodeId victim = deployment.network().topology().sources()[3];
  deployment.network().FailSource(victim);
  EXPECT_TRUE(deployment.RunEpoch(5).value().verified);
  deployment.network().HealAllSources();

  // --- Epoch 6+: lossy radio; every answered epoch verifies over the
  // --- contributor set it declares, and loss shows up as coverage. ---
  ASSERT_TRUE(deployment.network().SetLossRate(0.2, kSeed).ok());
  int clean = 0;
  for (uint64_t epoch = 6; epoch <= 12; ++epoch) {
    auto out = deployment.RunEpoch(epoch);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    if (!out.value().answered) continue;  // the final payload was lost
    EXPECT_TRUE(out.value().verified) << "epoch " << epoch;
    EXPECT_EQ(out.value().contributors == kN, out.value().coverage == 1.0);
    if (out.value().coverage == 1.0) ++clean;
  }
  ASSERT_TRUE(deployment.network().SetLossRate(0.0, kSeed).ok());

  // --- Query switch WITHOUT re-keying, then more clean epochs. ---
  core::Query avg_query;
  avg_query.aggregate = core::Aggregate::kAvg;
  avg_query.attribute = core::Field::kHumidity;
  avg_query.scale_pow10 = 1;
  avg_query.query_id = 2;
  ASSERT_TRUE(deployment.RegisterQuery(avg_query).ok());
  auto avg_out = deployment.RunEpoch(13).value();
  EXPECT_TRUE(avg_out.verified);
  EXPECT_GT(avg_out.result.value, 30.0);
  EXPECT_LT(avg_out.result.value, 70.0);

  // --- The log saw everything: some rejections, maybe gaps, and a
  // --- recovering tail. ---
  const core::ResultLog& log = deployment.log();
  EXPECT_GE(log.recorded_epochs(), 6u);
  EXPECT_FALSE(log.UnderAttack(0.9)) << "the clean tail should dominate";
  (void)clean;
}

// The same end-to-end flow holds at every supported prime width.
class PrimeWidthEndToEnd : public ::testing::TestWithParam<size_t> {};

TEST_P(PrimeWidthEndToEnd, FullNetworkExactAtWidth) {
  size_t bits = GetParam();
  constexpr uint32_t kN = 12;
  auto params = core::MakeParams(kN, bits, 4, bits).value();
  auto keys = core::GenerateKeys(params, EncodeUint64(bits));
  auto topology = net::Topology::BuildCompleteTree(kN, 3).value();
  net::Network network(topology);
  workload::TraceConfig tc;
  tc.num_sources = kN;
  tc.seed = bits;
  workload::TraceGenerator trace(tc);
  SiesProtocol protocol(params, keys, topology,
                        [&trace](uint32_t i, uint64_t e) {
                          return trace.ValueAt(i, e);
                        });
  for (uint64_t epoch = 1; epoch <= 2; ++epoch) {
    auto report = network.RunEpoch(protocol, epoch).value();
    EXPECT_TRUE(report.outcome.verified) << bits << " bits";
    EXPECT_EQ(report.outcome.value,
              static_cast<double>(Snapshot(trace, epoch).exact_sum));
    EXPECT_DOUBLE_EQ(
        report.source_to_aggregator.MeanBytes(),
        static_cast<double>((bits + 7) / 8 +
                            core::WireBitmapBytes(params)));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PrimeWidthEndToEnd,
                         ::testing::Values(224, 256, 320, 512));

}  // namespace
}  // namespace sies::runner
