// Transport differential: the UDP backend carries the SAME bytes the
// simulator hands over in memory, and its injected loss draws from the
// same sender-side RNG sequence — so for any (seed, loss, retries) the
// two backends must produce bit-identical outcomes, verdicts and
// retry accounting. Timing is the ONLY thing allowed to differ.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "runner/engine_runner.h"

namespace sies::runner {
namespace {

core::Query MakeQuery(core::Aggregate aggregate, uint32_t id,
                      core::Field attribute = core::Field::kTemperature) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = attribute;
  q.scale_pow10 = 2;
  q.query_id = id;
  return q;
}

EngineExperimentConfig BaseConfig() {
  EngineExperimentConfig config;
  config.num_sources = 16;
  config.fanout = 4;
  config.epochs = 6;
  config.seed = 7;
  config.threads = 1;
  config.queries.push_back({MakeQuery(core::Aggregate::kSum, 0)});
  config.queries.push_back({MakeQuery(core::Aggregate::kVariance, 1)});
  return config;
}

/// Flattens everything semantically observable about a run into one
/// string: per-epoch per-query (id, value, verified, coverage) plus the
/// run-level delivery accounting. Two backends agree iff the strings do.
std::string SemanticFingerprint(EngineExperimentConfig config,
                                const char* tag) {
  std::ostringstream out;
  config.on_epoch_outcomes =
      [&out](uint64_t epoch, bool answered,
             const std::vector<engine::QueryEpochOutcome>& outcomes) {
        if (!answered) {
          out << "e" << epoch << ":unanswered\n";
          return;
        }
        for (const engine::QueryEpochOutcome& qo : outcomes) {
          out << "e" << epoch << ":q" << qo.query_id << "="
              << qo.outcome.result.value << " v=" << qo.outcome.verified
              << " c=" << qo.outcome.coverage << "\n";
        }
      };
  auto result = RunEngineExperiment(config);
  EXPECT_TRUE(result.ok()) << tag << ": " << result.status().ToString();
  if (!result.ok()) return "<failed:" + std::string(tag) + ">";
  const EngineExperimentResult& r = result.value();
  out << "answered=" << r.answered_epochs
      << " verified=" << r.all_verified << " retx=" << r.retransmits
      << " lost=" << r.lost_messages;
  for (const EngineQueryStats& qs : r.queries) {
    out << " | q" << qs.query_id << " ve=" << qs.verified_epochs
        << " last=" << qs.last_value << " cov=" << qs.mean_coverage;
  }
  return out.str();
}

TEST(TransportDifferentialTest, LosslessUdpRunIsBitIdenticalToSim) {
  EngineExperimentConfig config = BaseConfig();
  const std::string sim = SemanticFingerprint(config, "sim");
  config.transport = EngineTransport::kUdp;
  const std::string udp = SemanticFingerprint(config, "udp");
  EXPECT_EQ(sim, udp);
  EXPECT_NE(sim.find("answered=6 verified=1"), std::string::npos) << sim;
}

TEST(TransportDifferentialTest, InjectedLossMatrixMatchesSim) {
  // The loss draw happens BEFORE the datagram is radiated (sender-side
  // injection, identical RNG consumption), so delivered/lost patterns,
  // retransmit counts and the resulting partial aggregates must line up
  // across the whole matrix — not just in the lossless corner.
  for (double loss : {0.1, 0.35}) {
    for (uint32_t retries : {0u, 2u}) {
      EngineExperimentConfig config = BaseConfig();
      config.loss_rate = loss;
      config.max_retries = retries;
      const std::string sim = SemanticFingerprint(config, "sim");
      config.transport = EngineTransport::kUdp;
      const std::string udp = SemanticFingerprint(config, "udp");
      EXPECT_EQ(sim, udp) << "loss=" << loss << " retries=" << retries;
    }
  }
}

TEST(TransportDifferentialTest, AdmissionAndTeardownMidRunMatchSim) {
  EngineExperimentConfig config = BaseConfig();
  config.queries.push_back({MakeQuery(core::Aggregate::kAvg, 2,
                                      core::Field::kHumidity),
                            /*admit_epoch=*/3, /*teardown_epoch=*/5});
  const std::string sim = SemanticFingerprint(config, "sim");
  config.transport = EngineTransport::kUdp;
  const std::string udp = SemanticFingerprint(config, "udp");
  EXPECT_EQ(sim, udp)
      << "plan width changes mid-run must resize the datagrams in step";
}

TEST(TransportDifferentialTest, PipelinedUdpStillMatchesSerialSim) {
  // The full tentpole stack — real sockets AND background key prefetch —
  // against the plain serial simulator.
  EngineExperimentConfig config = BaseConfig();
  config.loss_rate = 0.15;
  config.max_retries = 2;
  const std::string sim = SemanticFingerprint(config, "sim");
  config.transport = EngineTransport::kUdp;
  config.pipeline = true;
  const std::string udp = SemanticFingerprint(config, "udp+pipeline");
  EXPECT_EQ(sim, udp);
}

TEST(TransportDifferentialTest, UdpCountsItsDatagrams) {
  EngineExperimentConfig config = BaseConfig();
  auto sim = RunEngineExperiment(config);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim.value().udp_datagrams_sent, 0u);
  config.transport = EngineTransport::kUdp;
  auto udp = RunEngineExperiment(config);
  ASSERT_TRUE(udp.ok());
  // Every edge of the 16-source fanout-4 tree fires once per answered
  // epoch (data + ack are both datagrams, but only data counts here);
  // a lossless run radiates exactly edges x epochs data datagrams.
  EXPECT_GT(udp.value().udp_datagrams_sent, 0u);
  EXPECT_EQ(udp.value().udp_datagrams_sent % udp.value().answered_epochs, 0u);
  EXPECT_EQ(udp.value().udp_malformed_datagrams, 0u);
}

}  // namespace
}  // namespace sies::runner
