// Oversubscription regression for the batched derivation path.
//
// ThreadPool runs nested ParallelFor calls inline on the issuing lane —
// safe, but the inner loop then serializes on one lane. The hot paths
// are therefore structured to fan out exactly once at the outermost
// level: EpochKeyCache::Sources batches per-source derivations into
// groups under ONE flat ParallelFor, and the engine warms each
// channel's epoch material from the driver thread before its
// per-channel Evaluate dispatch. ThreadPool::nested_inline_jobs()
// counts every nested dispatch, so these tests pin the invariant: the
// batched paths keep it at zero, while deliberate nesting completes
// without deadlock and is counted.
//
// Runs under check.sh --tsan (label: race) so the flat fan-out is also
// exercised for data races.
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "engine/engine.h"
#include "sies/epoch_key_cache.h"
#include "workload/workload.h"

namespace sies {
namespace {

// Deliberate nesting: completes (no deadlock on the pool's own lanes)
// and every nested dispatch is counted.
TEST(PoolOversubscriptionTest, NestedParallelForRunsInlineAndIsCounted) {
  common::ThreadPool pool(4);
  ASSERT_EQ(pool.nested_inline_jobs(), 0u);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      calls.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(calls.load(), 32u);
  EXPECT_EQ(pool.nested_inline_jobs(), 8u)
      << "every inner dispatch came from inside a lane";
}

// The cold N-way derivation itself: groups fan out in one flat
// ParallelFor, so nothing nests even for N spanning several groups.
TEST(PoolOversubscriptionTest, BatchedSourcesDerivationNeverNests) {
  core::Params params = core::MakeParams(600, 42).value();  // 3 groups
  core::QuerierKeys keys = core::GenerateKeys(params, EncodeUint64(42));
  common::ThreadPool pool(4);
  core::EpochKeyCache cache;
  auto entry = cache.Sources(params, keys.source_keys, 1, &pool);
  ASSERT_EQ(entry->keys_fp.size(), 600u);
  EXPECT_EQ(pool.nested_inline_jobs(), 0u);
  EXPECT_GE(pool.max_job_size(), 3u) << "groups must reach the workers";
}

core::Query MakeQuery(core::Aggregate aggregate, uint32_t id) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = core::Field::kTemperature;
  q.scale_pow10 = 2;
  q.query_id = id;
  return q;
}

// The full engine epoch: multi-channel Evaluate over a shared pool with
// cold epoch-key caches at N > one derivation group. The per-channel
// fan-out must not trigger a nested dispatch (the engine pre-warms each
// channel's epoch from the driver thread), and the epoch must verify.
TEST(PoolOversubscriptionTest, EngineEvaluateFanOutKeepsNestingAtZero) {
  constexpr uint32_t kN = 300;  // > one 256-wide derivation group
  auto params = core::MakeParams(kN, 7, /*value_bytes=*/8);
  ASSERT_TRUE(params.ok());
  core::QuerierKeys keys = core::GenerateKeys(params.value(), EncodeUint64(7));
  engine::MultiQueryEngine eng(params.value(), keys);
  common::ThreadPool pool(4);
  eng.SetThreadPool(&pool);

  ASSERT_TRUE(eng.Admit(MakeQuery(core::Aggregate::kSum, 0), 1).ok());
  ASSERT_TRUE(eng.Admit(MakeQuery(core::Aggregate::kVariance, 1), 1).ok());

  workload::TraceConfig tc;
  tc.num_sources = kN;
  tc.seed = 7;
  workload::TraceGenerator trace(tc);

  for (uint64_t epoch = 1; epoch <= 2; ++epoch) {
    std::vector<Bytes> payloads;
    payloads.reserve(kN);
    for (uint32_t i = 0; i < kN; ++i) {
      auto p = eng.CreateSourcePayload(i, trace.ReadingAt(i, epoch), epoch);
      ASSERT_TRUE(p.ok()) << p.status().message();
      payloads.push_back(std::move(p).value());
    }
    auto merged = eng.Merge(payloads);
    ASSERT_TRUE(merged.ok()) << merged.status().message();
    auto outcomes = eng.Evaluate(merged.value(), epoch);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status().message();
    for (const engine::QueryEpochOutcome& out : outcomes.value()) {
      EXPECT_TRUE(out.outcome.verified) << "epoch " << epoch;
    }
  }
  EXPECT_EQ(pool.nested_inline_jobs(), 0u)
      << "a cold derivation ran inside a pool lane — the engine must warm "
         "epoch keys on the driver thread before the channel fan-out";
}

}  // namespace
}  // namespace sies
