// Loss-resilience integration: seeded lossy epochs through the full
// stack. Radio loss must degrade coverage — never correctness, never
// determinism, and never masquerade as tampering.
#include <gtest/gtest.h>

#include "net/adversary.h"
#include "runner/runner.h"
#include "telemetry/audit.h"

namespace sies::runner {
namespace {

ExperimentConfig LossyConfig(double loss_rate, uint32_t max_retries) {
  ExperimentConfig c;
  c.scheme = Scheme::kSies;
  c.num_sources = 32;
  c.fanout = 4;
  c.epochs = 60;
  c.seed = 404;
  c.loss_rate = loss_rate;
  c.max_retries = max_retries;
  return c;
}

TEST(LossResilienceTest, LossyEpochsYieldVerifiedPartialSums) {
  auto result = RunExperiment(LossyConfig(0.1, 3)).value();
  // Loss is reported in-band, so every answered epoch still verifies
  // and is exact over its reported contributor set.
  EXPECT_TRUE(result.all_verified);
  EXPECT_EQ(result.unverified_epochs, 0u);
  EXPECT_DOUBLE_EQ(result.mean_relative_error, 0.0);
  EXPECT_EQ(result.answered_epochs + result.unanswered_epochs,
            result.epochs);
  EXPECT_GT(result.answered_epochs, 0u);
  EXPECT_GT(result.mean_coverage, 0.0);
  EXPECT_LE(result.mean_coverage, 1.0);
  // At 10% per-attempt loss some message always slips through the
  // 4-attempt budget in 60 epochs x 40 edges.
  EXPECT_GT(result.retransmits, 0u);
}

TEST(LossResilienceTest, LossRngBitIdenticalAcrossThreadCounts) {
  auto run = [](uint32_t threads) {
    ExperimentConfig c = LossyConfig(0.15, 2);
    c.threads = threads;
    return RunExperiment(c).value();
  };
  ExperimentResult serial = run(1);
  for (uint32_t threads : {2u, 8u}) {
    ExperimentResult parallel = run(threads);
    EXPECT_EQ(parallel.answered_epochs, serial.answered_epochs);
    EXPECT_EQ(parallel.unanswered_epochs, serial.unanswered_epochs);
    EXPECT_EQ(parallel.partial_epochs, serial.partial_epochs);
    EXPECT_EQ(parallel.retransmits, serial.retransmits);
    EXPECT_EQ(parallel.lost_messages, serial.lost_messages);
    EXPECT_EQ(parallel.mean_coverage, serial.mean_coverage);
    EXPECT_EQ(parallel.mean_relative_error, serial.mean_relative_error);
  }
}

TEST(LossResilienceTest, RetransmissionRecoversCoverage) {
  auto without = RunExperiment(LossyConfig(0.2, 0)).value();
  auto with = RunExperiment(LossyConfig(0.2, 3)).value();
  EXPECT_EQ(without.retransmits, 0u);
  EXPECT_GT(with.retransmits, 0u);
  // Four attempts at p=0.2 leave p^4 = 0.16% residual loss per message:
  // far fewer dead messages and better coverage than one attempt.
  EXPECT_LT(with.lost_messages, without.lost_messages);
  EXPECT_GT(with.mean_coverage, without.mean_coverage);
}

TEST(LossResilienceTest, TotalBlackoutLeavesAllEpochsUnanswered) {
  ExperimentConfig c = LossyConfig(1.0, 2);
  c.epochs = 5;
  auto result = RunExperiment(c).value();
  EXPECT_EQ(result.answered_epochs, 0u);
  EXPECT_EQ(result.unanswered_epochs, result.epochs);
  EXPECT_DOUBLE_EQ(result.mean_coverage, 0.0);
  // Unanswered epochs are loss, not failed verification.
  EXPECT_TRUE(result.all_verified);
}

// Shared fixture for audit-trail checks over the raw network.
struct AuditFixture {
  explicit AuditFixture(uint32_t n = 16, uint64_t seed = 51)
      : network(net::Topology::BuildCompleteTree(n, 4).value()),
        params(core::MakeParams(n, seed).value()),
        keys(core::GenerateKeys(params, EncodeUint64(seed))),
        trace([&] {
          workload::TraceConfig c;
          c.num_sources = n;
          c.seed = seed;
          return workload::TraceGenerator(c);
        }()),
        protocol(params, keys, network.topology(),
                 [this](uint32_t index, uint64_t epoch) {
                   return trace.ValueAt(index, epoch);
                 }) {}

  net::Network network;
  core::Params params;
  core::QuerierKeys keys;
  workload::TraceGenerator trace;
  SiesProtocol protocol;
};

TEST(LossResilienceTest, PureRadioLossNeverAuditedAsTampering) {
  AuditFixture fx;
  auto& audit = telemetry::AuditTrail::Global();
  audit.Reset();
  audit.Enable();
  ASSERT_TRUE(fx.network.SetLossRate(0.2, 77).ok());
  for (uint64_t epoch = 1; epoch <= 20; ++epoch) {
    (void)fx.network.RunEpoch(fx.protocol, epoch);
  }
  EXPECT_GT(fx.network.lost_messages(), 0u);
  EXPECT_GT(audit.CountOf(telemetry::AuditKind::kRadioLoss), 0u);
  EXPECT_GT(audit.CountOf(telemetry::AuditKind::kReportedLoss), 0u);
  EXPECT_EQ(audit.CountOf(telemetry::AuditKind::kTamper), 0u);
  EXPECT_EQ(audit.CountOf(telemetry::AuditKind::kVerificationFailure), 0u);
  audit.Disable();
  audit.Reset();
}

TEST(LossResilienceTest, AdversaryDropAndRadioLossAreDistinctEvents) {
  AuditFixture fx;
  auto& audit = telemetry::AuditTrail::Global();
  audit.Reset();
  audit.Enable();
  // A targeted in-flight drop with a perfectly clean radio...
  net::NodeId victim = fx.network.topology().sources()[2];
  net::DropAdversary adv(victim);
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 1).value();
  fx.network.SetAdversary(nullptr);
  EXPECT_TRUE(report.outcome.verified);
  EXPECT_LT(report.coverage, 1.0);
  // ...is attributed to the adversary, not the radio.
  EXPECT_EQ(audit.CountOf(telemetry::AuditKind::kAdversaryDrop), 1u);
  EXPECT_EQ(audit.CountOf(telemetry::AuditKind::kRadioLoss), 0u);
  // Both degradation paths end in the same querier-side verdict: a
  // verified partial, recorded as reported loss.
  EXPECT_EQ(audit.CountOf(telemetry::AuditKind::kReportedLoss), 1u);
  audit.Disable();
  audit.Reset();
}

TEST(LossResilienceTest, RetransmitCountersAttributedPerEdge) {
  AuditFixture fx;
  ASSERT_TRUE(fx.network.SetLossRate(0.3, 12).ok());
  fx.network.SetMaxRetries(4);
  uint64_t edge_retransmits = 0;
  for (uint64_t epoch = 1; epoch <= 10; ++epoch) {
    auto report = fx.network.RunEpoch(fx.protocol, epoch).value();
    edge_retransmits += report.source_to_aggregator.retransmits +
                        report.aggregator_to_aggregator.retransmits +
                        report.aggregator_to_querier.retransmits;
    if (report.retransmits > 0) {
      EXPECT_GT(report.backoff_slots, 0u) << "epoch " << epoch;
    }
  }
  EXPECT_GT(edge_retransmits, 0u);
  EXPECT_EQ(edge_retransmits, fx.network.retransmits());
}

}  // namespace
}  // namespace sies::runner
