#include "mht/merkle_tree.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace sies::mht {
namespace {

std::vector<Bytes> MakeLeaves(size_t n) {
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(EncodeUint64(1000 + i));
  }
  return leaves;
}

TEST(MerkleTreeTest, SingleLeaf) {
  auto leaves = MakeLeaves(1);
  auto tree = MerkleTree::Build(leaves).value();
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.root(), HashLeaf(leaves[0]));
  auto proof = tree.Prove(0).value();
  EXPECT_TRUE(proof.steps.empty());
  EXPECT_TRUE(VerifyMembership(tree.root(), leaves[0], proof));
}

TEST(MerkleTreeTest, TwoLeavesRootIsInteriorHash) {
  auto leaves = MakeLeaves(2);
  auto tree = MerkleTree::Build(leaves).value();
  EXPECT_EQ(tree.root(),
            HashInterior(HashLeaf(leaves[0]), HashLeaf(leaves[1])));
}

TEST(MerkleTreeTest, EmptyRejected) {
  EXPECT_FALSE(MerkleTree::Build({}).ok());
}

TEST(MerkleTreeTest, DomainSeparation) {
  // A leaf hash of X must differ from an interior hash over anything:
  // prefixes 0x00 / 0x01 prevent leaf-as-node forgeries.
  Bytes x(64, 0xaa);
  Bytes left(x.begin(), x.begin() + 32);
  Bytes right(x.begin() + 32, x.end());
  EXPECT_NE(HashLeaf(x), HashInterior(left, right));
}

TEST(MerkleTreeTest, ProofBoundsChecked) {
  auto tree = MerkleTree::Build(MakeLeaves(5)).value();
  EXPECT_TRUE(tree.Prove(4).ok());
  EXPECT_FALSE(tree.Prove(5).ok());
}

TEST(MerkleTreeTest, WrongPayloadFailsVerification) {
  auto leaves = MakeLeaves(8);
  auto tree = MerkleTree::Build(leaves).value();
  auto proof = tree.Prove(3).value();
  EXPECT_TRUE(VerifyMembership(tree.root(), leaves[3], proof));
  EXPECT_FALSE(VerifyMembership(tree.root(), leaves[4], proof));
  Bytes tampered = leaves[3];
  tampered[0] ^= 1;
  EXPECT_FALSE(VerifyMembership(tree.root(), tampered, proof));
}

TEST(MerkleTreeTest, WrongRootFailsVerification) {
  auto leaves = MakeLeaves(8);
  auto tree = MerkleTree::Build(leaves).value();
  auto proof = tree.Prove(2).value();
  Bytes bad_root = tree.root();
  bad_root[10] ^= 0x80;
  EXPECT_FALSE(VerifyMembership(bad_root, leaves[2], proof));
}

TEST(MerkleTreeTest, TamperedProofStepFails) {
  auto leaves = MakeLeaves(16);
  auto tree = MerkleTree::Build(leaves).value();
  auto proof = tree.Prove(7).value();
  proof.steps[1].sibling[0] ^= 1;
  EXPECT_FALSE(VerifyMembership(tree.root(), leaves[7], proof));
}

TEST(MerkleTreeTest, SwappedSideFails) {
  auto leaves = MakeLeaves(4);
  auto tree = MerkleTree::Build(leaves).value();
  auto proof = tree.Prove(1).value();
  proof.steps[0].sibling_left = !proof.steps[0].sibling_left;
  EXPECT_FALSE(VerifyMembership(tree.root(), leaves[1], proof));
}

TEST(MerkleTreeTest, LeafOrderMatters) {
  auto a = MakeLeaves(4);
  auto b = a;
  std::swap(b[0], b[1]);
  EXPECT_NE(MerkleTree::Build(a).value().root(),
            MerkleTree::Build(b).value().root());
}

TEST(MerkleTreeTest, ProofSizeLogarithmic) {
  auto tree = MerkleTree::Build(MakeLeaves(1024)).value();
  auto proof = tree.Prove(512).value();
  EXPECT_EQ(proof.steps.size(), 10u);  // log2(1024)
  EXPECT_EQ(proof.WireBytes(), 10u * 33 + 8);
}

TEST(MerkleTreeTest, ExpectedProofLengthMatchesActual) {
  for (size_t n : {1ul, 2ul, 3ul, 5ul, 8ul, 13ul, 16ul, 31ul, 64ul}) {
    auto tree = MerkleTree::Build(MakeLeaves(n)).value();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(tree.Prove(i).value().steps.size(),
                ExpectedProofLength(i, n))
          << "leaf " << i << " of " << n;
    }
  }
}

TEST(MerkleTreeTest, ProofLengthPinsTreeSize) {
  // Growing the leaf count changes the expected proof length of at
  // least one of the original leaves — the property the commit-and-
  // attest audit relies on to catch injected leaves.
  for (size_t n : {2ul, 3ul, 4ul, 5ul, 8ul, 16ul, 17ul}) {
    bool some_leaf_changes = false;
    for (size_t i = 0; i < n; ++i) {
      if (ExpectedProofLength(i, n) != ExpectedProofLength(i, n + 1)) {
        some_leaf_changes = true;
      }
    }
    EXPECT_TRUE(some_leaf_changes) << "n=" << n;
  }
}

class MerkleSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleSweep, EveryLeafProvableNoCrossAcceptance) {
  size_t n = GetParam();
  auto leaves = MakeLeaves(n);
  auto tree = MerkleTree::Build(leaves).value();
  EXPECT_EQ(tree.leaf_count(), n);
  for (size_t i = 0; i < n; ++i) {
    auto proof = tree.Prove(i).value();
    EXPECT_TRUE(VerifyMembership(tree.root(), leaves[i], proof))
        << "leaf " << i << " of " << n;
    // The proof for i must not authenticate a different leaf payload.
    size_t other = (i + 1) % n;
    if (other != i) {
      EXPECT_FALSE(VerifyMembership(tree.root(), leaves[other], proof))
          << "cross-acceptance at " << i << "/" << other;
    }
  }
}

// Odd sizes exercise the promotion rule; powers of two the perfect case.
INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 31, 33, 64, 100));

}  // namespace
}  // namespace sies::mht
