#include "mutesla/mutesla.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace sies::mutesla {
namespace {

Bytes Ascii(std::string_view s) { return Bytes(s.begin(), s.end()); }

class MuTeslaTest : public ::testing::Test {
 protected:
  MuTeslaTest()
      : broadcaster_(Broadcaster::Create(Ascii("seed"), /*chain_length=*/20,
                                         /*disclosure_delay=*/2)
                         .value()),
        receiver_(broadcaster_.commitment(), 2) {}

  Broadcaster broadcaster_;
  Receiver receiver_;
};

TEST_F(MuTeslaTest, HonestBroadcastAuthenticates) {
  Bytes query = Ascii("SELECT SUM(temp) FROM Sensors");
  auto packet = broadcaster_.Broadcast(1, query).value();
  ASSERT_TRUE(receiver_.Accept(packet, /*current_interval=*/1).ok());
  EXPECT_EQ(receiver_.pending_count(), 1u);

  auto disclosure = broadcaster_.Disclose(1).value();
  auto authenticated = receiver_.OnDisclosure(disclosure);
  ASSERT_TRUE(authenticated.ok());
  ASSERT_EQ(authenticated.value().size(), 1u);
  EXPECT_EQ(authenticated.value()[0], query);
  EXPECT_EQ(receiver_.pending_count(), 0u);
}

TEST_F(MuTeslaTest, ChainIsOneWay) {
  // K_{i-1} = H(K_i): walking the disclosed key for interval 2 once must
  // produce the key for interval 1.
  auto k1 = broadcaster_.Disclose(1).value();
  auto k2 = broadcaster_.Disclose(2).value();
  EXPECT_EQ(crypto::Sha256::Hash(k2.chain_key), k1.chain_key);
  // ...and hashing K_1 gives the commitment.
  EXPECT_EQ(crypto::Sha256::Hash(k1.chain_key), broadcaster_.commitment());
}

TEST_F(MuTeslaTest, ForgedMacRejected) {
  Bytes query = Ascii("legit query");
  auto packet = broadcaster_.Broadcast(1, query).value();
  packet.payload = Ascii("evil query");  // MAC no longer matches
  ASSERT_TRUE(receiver_.Accept(packet, 1).ok());
  auto authenticated =
      receiver_.OnDisclosure(broadcaster_.Disclose(1).value());
  ASSERT_TRUE(authenticated.ok());
  EXPECT_TRUE(authenticated.value().empty()) << "forged packet authenticated";
}

TEST_F(MuTeslaTest, WrongChainKeyRejected) {
  auto packet = broadcaster_.Broadcast(1, Ascii("q")).value();
  ASSERT_TRUE(receiver_.Accept(packet, 1).ok());
  KeyDisclosure bogus{1, Bytes(32, 0x42)};
  auto result = receiver_.OnDisclosure(bogus);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kVerificationFailed);
}

TEST_F(MuTeslaTest, LatePacketRejectedBySecurityCondition) {
  // A packet for interval 1 arriving at local time 3 could have been
  // forged with the already-disclosed key: must be rejected on arrival.
  auto packet = broadcaster_.Broadcast(1, Ascii("q")).value();
  Status s = receiver_.Accept(packet, /*current_interval=*/3);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kVerificationFailed);
}

TEST_F(MuTeslaTest, PacketAtDisclosureBoundaryRejected) {
  // interval + delay == current is exactly the disclosure instant.
  auto packet = broadcaster_.Broadcast(1, Ascii("q")).value();
  EXPECT_FALSE(receiver_.Accept(packet, 3).ok());
  EXPECT_TRUE(receiver_.Accept(packet, 2).ok());
}

TEST_F(MuTeslaTest, StaleDisclosureRejected) {
  auto p1 = broadcaster_.Broadcast(1, Ascii("a")).value();
  ASSERT_TRUE(receiver_.Accept(p1, 1).ok());
  ASSERT_TRUE(receiver_.OnDisclosure(broadcaster_.Disclose(1).value()).ok());
  // Replaying the same (or an older) disclosure must fail.
  auto replay = receiver_.OnDisclosure(broadcaster_.Disclose(1).value());
  EXPECT_FALSE(replay.ok());
}

TEST_F(MuTeslaTest, SkippedIntervalsStillAuthenticate) {
  // Disclose interval 5 directly: the receiver walks the chain 5 steps.
  auto packet = broadcaster_.Broadcast(5, Ascii("jump")).value();
  ASSERT_TRUE(receiver_.Accept(packet, 5).ok());
  auto authenticated =
      receiver_.OnDisclosure(broadcaster_.Disclose(5).value());
  ASSERT_TRUE(authenticated.ok());
  ASSERT_EQ(authenticated.value().size(), 1u);
  EXPECT_EQ(authenticated.value()[0], Ascii("jump"));
}

TEST_F(MuTeslaTest, MultiplePacketsPerInterval) {
  auto p1 = broadcaster_.Broadcast(2, Ascii("query A")).value();
  auto p2 = broadcaster_.Broadcast(2, Ascii("query B")).value();
  ASSERT_TRUE(receiver_.Accept(p1, 2).ok());
  ASSERT_TRUE(receiver_.Accept(p2, 2).ok());
  auto authenticated =
      receiver_.OnDisclosure(broadcaster_.Disclose(2).value());
  ASSERT_TRUE(authenticated.ok());
  EXPECT_EQ(authenticated.value().size(), 2u);
}

TEST_F(MuTeslaTest, PendingPacketsBelowDisclosureAreDropped) {
  // Packet buffered for interval 2, but the next disclosure we see is 3:
  // interval 2's key is now public, so the packet must be discarded.
  auto p2 = broadcaster_.Broadcast(2, Ascii("late")).value();
  ASSERT_TRUE(receiver_.Accept(p2, 2).ok());
  auto authenticated =
      receiver_.OnDisclosure(broadcaster_.Disclose(3).value());
  ASSERT_TRUE(authenticated.ok());
  EXPECT_TRUE(authenticated.value().empty());
  EXPECT_EQ(receiver_.pending_count(), 0u);
}

TEST(MuTeslaCreateTest, ParameterValidation) {
  EXPECT_FALSE(Broadcaster::Create(Bytes{1}, 0, 1).ok());
  EXPECT_FALSE(Broadcaster::Create(Bytes{1}, 10, 0).ok());
  EXPECT_TRUE(Broadcaster::Create(Bytes{1}, 10, 1).ok());
}

TEST(MuTeslaBroadcastTest, IntervalBounds) {
  auto b = Broadcaster::Create(Bytes{1}, 5, 1).value();
  EXPECT_FALSE(b.Broadcast(0, Bytes{}).ok());
  EXPECT_FALSE(b.Broadcast(6, Bytes{}).ok());
  EXPECT_TRUE(b.Broadcast(5, Bytes{}).ok());
  EXPECT_FALSE(b.Disclose(0).ok());
  EXPECT_FALSE(b.Disclose(6).ok());
}

TEST(MuTeslaKeyTest, MacKeyDiffersFromChainKey) {
  Bytes chain_key(32, 0x11);
  Bytes mac_key = DeriveMacKey(chain_key);
  EXPECT_NE(mac_key, chain_key);
  EXPECT_EQ(mac_key.size(), 32u);
  EXPECT_EQ(DeriveMacKey(chain_key), mac_key);  // deterministic
}

}  // namespace
}  // namespace sies::mutesla
