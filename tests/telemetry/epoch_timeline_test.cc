// EpochTimeline unit contract: phase accumulation, lane-based critical
// path, the bounded ring, verdict stamping, and the JSON export.
#include "telemetry/epoch_timeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sies::telemetry {
namespace {

/// Fresh, enabled, isolated timeline per test.
class EpochTimelineTest : public ::testing::Test {
 protected:
  void SetUp() override { timeline_.Enable(); }
  EpochTimeline timeline_;
};

EpochVerdict CleanVerdict() {
  EpochVerdict verdict;
  verdict.answered = true;
  verdict.verified = true;
  verdict.coverage = 1.0;
  verdict.live_queries = 2;
  verdict.contributors = 8;
  verdict.expected_contributors = 8;
  return verdict;
}

TEST_F(EpochTimelineTest, DisabledTimelineRecordsNothing) {
  timeline_.Disable();
  timeline_.BeginEpoch(1);
  timeline_.RecordPhase(EpochPhase::kPsrCreate, 0.5);
  timeline_.EndEpoch(CleanVerdict());
  EXPECT_EQ(timeline_.size(), 0u);
  EXPECT_EQ(timeline_.epochs_recorded(), 0u);
}

TEST_F(EpochTimelineTest, AccumulatesPhaseStatsAndVerdict) {
  timeline_.BeginEpoch(42);
  timeline_.RecordPhase(EpochPhase::kPsrCreate, 0.010);
  timeline_.RecordPhase(EpochPhase::kPsrCreate, 0.030);
  timeline_.RecordPhase(EpochPhase::kTreeAggregate, 0.005);
  timeline_.EndEpoch(CleanVerdict());

  auto records = timeline_.Last(1);
  ASSERT_EQ(records.size(), 1u);
  const EpochRecord& r = records[0];
  EXPECT_EQ(r.epoch, 42u);
  const PhaseStat& psr =
      r.phases[static_cast<size_t>(EpochPhase::kPsrCreate)];
  EXPECT_NEAR(psr.total_seconds, 0.040, 1e-12);
  EXPECT_DOUBLE_EQ(psr.max_call_seconds, 0.030);
  EXPECT_EQ(psr.calls, 2u);
  EXPECT_NEAR(r.attributed_seconds, 0.045, 1e-12);
  EXPECT_TRUE(r.answered);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.live_queries, 2u);
  EXPECT_EQ(r.contributors, 8u);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST_F(EpochTimelineTest, ChannelVerifyFeedsVerifyPhaseAndTamperCount) {
  timeline_.BeginEpoch(1);
  ChannelVerifySample good;
  good.slot = 0;
  good.salt_id = 7;
  good.kind = "sum";
  good.seconds = 0.002;
  good.verified = true;
  good.tid = 0;
  ChannelVerifySample bad = good;
  bad.slot = 1;
  bad.kind = "count";
  bad.seconds = 0.003;
  bad.verified = false;
  bad.tid = 1;
  // Out of slot order on purpose: the record must come back sorted.
  timeline_.RecordChannelVerify(bad);
  timeline_.RecordChannelVerify(good);
  timeline_.EndEpoch(CleanVerdict());

  auto records = timeline_.Last(1);
  ASSERT_EQ(records.size(), 1u);
  const EpochRecord& r = records[0];
  ASSERT_EQ(r.channels.size(), 2u);
  EXPECT_EQ(r.channels[0].slot, 0u);
  EXPECT_EQ(r.channels[1].slot, 1u);
  EXPECT_EQ(r.tampered_channels, 1u);
  const PhaseStat& verify = r.phases[static_cast<size_t>(EpochPhase::kVerify)];
  EXPECT_NEAR(verify.total_seconds, 0.005, 1e-12);
  EXPECT_EQ(verify.calls, 2u);
  // Two lanes: the busiest (tid 1, 3ms) is the critical contribution.
  EXPECT_DOUBLE_EQ(verify.lane_max_seconds, 0.003);
}

TEST_F(EpochTimelineTest, CriticalPathSumsBusiestLanesClampedToWall) {
  timeline_.BeginEpoch(1);
  // Serial phase: lane max == total.
  timeline_.RecordPhase(EpochPhase::kWireParse, 1e-9);
  // Fanned-out verify over two lanes.
  ChannelVerifySample s;
  s.kind = "sum";
  s.seconds = 2e-9;
  s.tid = 0;
  timeline_.RecordChannelVerify(s);
  s.slot = 1;
  s.seconds = 5e-9;
  s.tid = 1;
  timeline_.RecordChannelVerify(s);
  timeline_.EndEpoch(CleanVerdict());

  const EpochRecord r = timeline_.Last(1)[0];
  // 1ns parse + busiest verify lane 5ns; wall is far larger, so no
  // clamping: critical == 6ns exactly.
  EXPECT_NEAR(r.critical_path_seconds, 6e-9, 1e-18);
  EXPECT_LE(r.critical_path_seconds, r.wall_seconds);
  EXPECT_NEAR(r.attributed_seconds, 8e-9, 1e-18);
}

TEST_F(EpochTimelineTest, ClampsCriticalPathToWall) {
  timeline_.BeginEpoch(1);
  // A fake 10-hour phase: the wall is microseconds, so the reported
  // critical path must clamp to it.
  timeline_.RecordPhase(EpochPhase::kPsrCreate, 36000.0);
  timeline_.EndEpoch(CleanVerdict());
  const EpochRecord r = timeline_.Last(1)[0];
  EXPECT_DOUBLE_EQ(r.critical_path_seconds, r.wall_seconds);
  EXPECT_DOUBLE_EQ(r.attributed_seconds, 36000.0);
}

TEST_F(EpochTimelineTest, RingEvictsOldestAndCountsEverything) {
  timeline_.SetCapacity(3);
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    timeline_.BeginEpoch(epoch);
    timeline_.EndEpoch(CleanVerdict());
  }
  EXPECT_EQ(timeline_.size(), 3u);
  EXPECT_EQ(timeline_.epochs_recorded(), 5u);
  auto records = timeline_.Last(10);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().epoch, 3u);  // oldest first
  EXPECT_EQ(records.back().epoch, 5u);
  // Shrinking evicts immediately.
  timeline_.SetCapacity(1);
  EXPECT_EQ(timeline_.size(), 1u);
  EXPECT_EQ(timeline_.Last(10)[0].epoch, 5u);
}

TEST_F(EpochTimelineTest, ReopeningAnEpochDiscardsTheAbandonedOne) {
  timeline_.BeginEpoch(1);
  timeline_.RecordPhase(EpochPhase::kPsrCreate, 1.0);
  timeline_.BeginEpoch(2);  // epoch 1 never ended: discard it
  timeline_.EndEpoch(CleanVerdict());
  auto records = timeline_.Last(10);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].epoch, 2u);
  EXPECT_DOUBLE_EQ(records[0].attributed_seconds, 0.0);
}

TEST_F(EpochTimelineTest, RecordsOutsideAnOpenEpochAreDropped) {
  timeline_.RecordPhase(EpochPhase::kPsrCreate, 1.0);
  ChannelVerifySample s;
  s.kind = "sum";
  timeline_.RecordChannelVerify(s);
  timeline_.EndEpoch(CleanVerdict());
  EXPECT_EQ(timeline_.size(), 0u);
}

TEST_F(EpochTimelineTest, ToJsonShapeAndWindow) {
  timeline_.BeginEpoch(7);
  timeline_.RecordPhase(EpochPhase::kKeyDerive, 0.001);
  ChannelVerifySample s;
  s.slot = 0;
  s.salt_id = 3;
  s.kind = "sum_squares";
  s.seconds = 0.002;
  s.verified = false;
  s.tid = 1;
  timeline_.RecordChannelVerify(s);
  EpochVerdict verdict = CleanVerdict();
  verdict.verified = false;
  timeline_.EndEpoch(verdict);

  const std::string json = timeline_.ToJson(5);
  EXPECT_NE(json.find("\"window\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epochs_recorded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"key_derive\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"sum_squares\""), std::string::npos);
  EXPECT_NE(json.find("\"salt_id\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"tampered_channels\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"verified\": false"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
}

TEST_F(EpochTimelineTest, ResetDropsRecordsAndOpenEpoch) {
  timeline_.BeginEpoch(1);
  timeline_.EndEpoch(CleanVerdict());
  timeline_.BeginEpoch(2);
  timeline_.Reset();
  EXPECT_EQ(timeline_.size(), 0u);
  EXPECT_EQ(timeline_.epochs_recorded(), 0u);
  timeline_.EndEpoch(CleanVerdict());  // open epoch was dropped: no-op
  EXPECT_EQ(timeline_.size(), 0u);
  EXPECT_TRUE(timeline_.enabled()) << "Reset must keep the enabled state";
}

}  // namespace
}  // namespace sies::telemetry
