// Tracer unit tests: disabled tracers record nothing, enabled tracers
// capture span fields and per-thread ids, and the Chrome trace_event
// export carries every field about://tracing needs.
#include <gtest/gtest.h>

#include <thread>

#include "telemetry/trace.h"

namespace sies::telemetry {
namespace {

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer;  // disabled by default
  EXPECT_FALSE(tracer.enabled());
  { ScopedSpan span("work", "test", 1, tracer); }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, EnabledCapturesSpanFields) {
  Tracer tracer;
  tracer.Enable();
  { ScopedSpan span("merge", "phase", 7, tracer); }
  ASSERT_EQ(tracer.size(), 1u);
  SpanEvent e = tracer.Events()[0];
  EXPECT_STREQ(e.name, "merge");
  EXPECT_STREQ(e.category, "phase");
  EXPECT_EQ(e.epoch, 7u);
  EXPECT_EQ(e.tid, Tracer::CurrentThreadId());
}

TEST(TracerTest, EnableIsCheckedAtSpanConstruction) {
  // A span that starts while the tracer is disabled records nothing,
  // even if the tracer is enabled before the span closes — the whole
  // point of the single relaxed load on the disabled path.
  Tracer tracer;
  {
    ScopedSpan span("late", "test", 1, tracer);
    tracer.Enable();
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, ResetDropsEventsButKeepsEnabledState) {
  Tracer tracer;
  tracer.Enable();
  { ScopedSpan span("a", "t", 1, tracer); }
  ASSERT_EQ(tracer.size(), 1u);
  tracer.Reset();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.enabled());
}

TEST(TracerTest, SpansFromDifferentThreadsGetDistinctIds) {
  Tracer tracer;
  tracer.Enable();
  { ScopedSpan span("main-span", "test", 1, tracer); }
  std::thread worker(
      [&tracer] { ScopedSpan span("worker-span", "test", 1, tracer); });
  worker.join();
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TracerTest, TimestampsAreMonotoneWithinAThread) {
  Tracer tracer;
  tracer.Enable();
  { ScopedSpan span("first", "test", 1, tracer); }
  { ScopedSpan span("second", "test", 1, tracer); }
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
}

TEST(TracerTest, ChromeTraceExportCarriesAllFields) {
  Tracer tracer;
  tracer.Enable();
  tracer.Record("evaluate", "phase", 42, 100, 25);
  std::string json = tracer.ToChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"name\": \"evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 25"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"epoch\": 42}"), std::string::npos);
}

TEST(TracerTest, EmptyTraceIsStillValidChromeJson) {
  Tracer tracer;
  EXPECT_EQ(tracer.ToChromeTrace(), "{\"traceEvents\": [\n]}\n");
}

}  // namespace
}  // namespace sies::telemetry
