// AuditTrail unit tests: disabled trails drop events, enabled trails
// keep them ordered with stable sequence numbers, queries filter by
// kind, and the JSON export matches the documented shape.
#include <gtest/gtest.h>

#include "telemetry/audit.h"

namespace sies::telemetry {
namespace {

TEST(AuditTrailTest, DisabledRecordIsANoOp) {
  AuditTrail trail;  // disabled by default
  EXPECT_FALSE(trail.enabled());
  trail.Record(AuditKind::kTamper, 1, 2, "ignored");
  EXPECT_EQ(trail.size(), 0u);
}

TEST(AuditTrailTest, RecordsInOrderWithSequenceNumbers) {
  AuditTrail trail;
  trail.Enable();
  trail.Record(AuditKind::kTamper, 1, 3, "payload mutated");
  trail.Record(AuditKind::kRadioLoss, 1, 5, "lossy link");
  trail.Record(AuditKind::kVerificationFailure, 1, kAuditNoNode,
               "share sum mismatch");
  auto events = trail.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[0].kind, AuditKind::kTamper);
  EXPECT_EQ(events[0].epoch, 1u);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[0].cause, "payload mutated");
  EXPECT_EQ(events[2].node, kAuditNoNode);
}

TEST(AuditTrailTest, QueryAndCountFilterByKind) {
  AuditTrail trail;
  trail.Enable();
  trail.Record(AuditKind::kTamper, 1, 0, "a");
  trail.Record(AuditKind::kAdversaryDrop, 2, 1, "b");
  trail.Record(AuditKind::kTamper, 3, 2, "c");
  EXPECT_EQ(trail.CountOf(AuditKind::kTamper), 2u);
  EXPECT_EQ(trail.CountOf(AuditKind::kAdversaryDrop), 1u);
  EXPECT_EQ(trail.CountOf(AuditKind::kAuthFailure), 0u);
  auto tampers = trail.Query(AuditKind::kTamper);
  ASSERT_EQ(tampers.size(), 2u);
  EXPECT_EQ(tampers[0].epoch, 1u);
  EXPECT_EQ(tampers[1].epoch, 3u);
}

TEST(AuditTrailTest, ResetClearsEventsAndRestartsSequence) {
  AuditTrail trail;
  trail.Enable();
  trail.Record(AuditKind::kTamper, 1, 0, "x");
  trail.Reset();
  EXPECT_EQ(trail.size(), 0u);
  EXPECT_TRUE(trail.enabled());
  trail.Record(AuditKind::kTamper, 2, 0, "y");
  EXPECT_EQ(trail.Events()[0].seq, 0u);
}

TEST(AuditTrailTest, KindNamesAreStable) {
  EXPECT_STREQ(AuditKindName(AuditKind::kTamper), "tamper");
  EXPECT_STREQ(AuditKindName(AuditKind::kAdversaryDrop), "adversary_drop");
  EXPECT_STREQ(AuditKindName(AuditKind::kRadioLoss), "radio_loss");
  EXPECT_STREQ(AuditKindName(AuditKind::kVerificationFailure),
               "verification_failure");
  EXPECT_STREQ(AuditKindName(AuditKind::kFreshnessViolation),
               "freshness_violation");
  EXPECT_STREQ(AuditKindName(AuditKind::kAuthFailure), "auth_failure");
}

TEST(AuditTrailTest, JsonMatchesGolden) {
  AuditTrail trail;
  trail.Enable();
  trail.Record(AuditKind::kTamper, 5, 3, "bit flipped");
  trail.Record(AuditKind::kVerificationFailure, 5, kAuditNoNode,
               "querier said \"no\"");
  const char* expected =
      "{\"events\": [\n"
      "  {\"seq\": 0, \"kind\": \"tamper\", \"epoch\": 5, \"node\": 3, "
      "\"cause\": \"bit flipped\"},\n"
      "  {\"seq\": 1, \"kind\": \"verification_failure\", \"epoch\": 5, "
      "\"node\": null, \"cause\": \"querier said \\\"no\\\"\"}\n"
      "]}\n";
  EXPECT_EQ(trail.ToJson(), expected);
}


TEST(AuditTrailTest, RingBoundEvictsOldestAndCountsDrops) {
  AuditTrail trail;
  trail.Enable();
  EXPECT_EQ(trail.capacity(), AuditTrail::kDefaultCapacity);
  trail.SetCapacity(3);
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    trail.Record(AuditKind::kRadioLoss, epoch, 0, "loss");
  }
  EXPECT_EQ(trail.size(), 3u);
  EXPECT_EQ(trail.dropped_events(), 2u);
  auto events = trail.Events();
  ASSERT_EQ(events.size(), 3u);
  // seq stays monotone across evictions: the front gap is detectable.
  EXPECT_EQ(events.front().seq, 2u);
  EXPECT_EQ(events.front().epoch, 3u);
  EXPECT_EQ(events.back().seq, 4u);
  EXPECT_EQ(events.back().epoch, 5u);
}

TEST(AuditTrailTest, ShrinkingCapacityEvictsImmediately) {
  AuditTrail trail;
  trail.Enable();
  for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
    trail.Record(AuditKind::kTamper, epoch, 1, "x");
  }
  trail.SetCapacity(2);
  EXPECT_EQ(trail.size(), 2u);
  EXPECT_EQ(trail.dropped_events(), 2u);
  EXPECT_EQ(trail.Events().front().epoch, 3u);
  // Capacity clamps to >= 1; Reset clears the drop counter.
  trail.SetCapacity(0);
  EXPECT_EQ(trail.capacity(), 1u);
  EXPECT_EQ(trail.size(), 1u);
  trail.Reset();
  EXPECT_EQ(trail.dropped_events(), 0u);
  EXPECT_EQ(trail.size(), 0u);
}

}  // namespace
}  // namespace sies::telemetry
