// End-to-end telemetry tests through the full simulator: the audit
// trail must record EXACTLY the tampering the in-flight adversary
// injected (count and attribution), the phase histograms must count
// every phase the epoch ran, and the tracer must capture the phase
// spans — all against the same global sinks sies_sim exports.
//
// These tests share the process-wide telemetry singletons, so each one
// resets the relevant sink up front and disables it on the way out.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "net/adversary.h"
#include "runner/runner.h"
#include "telemetry/telemetry.h"

namespace sies::runner {
namespace {

// Same shape as the attack_test fixture: a ready-to-run SIES network.
struct SiesFixture {
  explicit SiesFixture(uint32_t n = 16, uint32_t fanout = 4,
                       uint64_t seed = 21)
      : network(net::Topology::BuildCompleteTree(n, fanout).value()),
        params(core::MakeParams(n, seed).value()),
        keys(core::GenerateKeys(params, EncodeUint64(seed))),
        trace([&] {
          workload::TraceConfig c;
          c.num_sources = n;
          c.seed = seed;
          return workload::TraceGenerator(c);
        }()),
        protocol(params, keys, network.topology(),
                 [this](uint32_t index, uint64_t epoch) {
                   return trace.ValueAt(index, epoch);
                 }) {}

  net::Network network;
  core::Params params;
  core::QuerierKeys keys;
  workload::TraceGenerator trace;
  SiesProtocol protocol;
};

using telemetry::AuditKind;
using telemetry::AuditTrail;

TEST(TelemetryIntegrationTest, AuditTrailMatchesInjectedTamperingExactly) {
  SiesFixture fx;
  AuditTrail& audit = AuditTrail::Global();
  audit.Reset();
  audit.Enable();

  // Sweep bit-flip targets across the tree (same scenario as
  // attack_test's BitFlipOnAnyEdgeDetected) and keep a ground-truth
  // count from the adversary itself.
  uint64_t injected = 0;
  size_t failed_epochs = 0;
  for (net::NodeId target = 0; target < fx.network.topology().num_nodes();
       target += 3) {
    net::BitFlipAdversary adv(target, /*bit_index=*/100);
    fx.network.SetAdversary(&adv);
    auto report = fx.network.RunEpoch(fx.protocol, 50 + target);
    injected += adv.tampered_count();
    if (report.ok() && !report.value().outcome.verified) ++failed_epochs;
  }
  fx.network.SetAdversary(nullptr);

  EXPECT_GT(injected, 0u);
  EXPECT_EQ(audit.CountOf(AuditKind::kTamper), injected)
      << "audit trail and adversary disagree on the tamper count";
  // Non-verified epochs are also attributed (one event per epoch). A
  // tampered epoch can instead fail as a malformed PSR (non-residue),
  // which surfaces as an error rather than a verification verdict.
  EXPECT_EQ(audit.CountOf(AuditKind::kVerificationFailure), failed_epochs);

  // Every tamper event carries the epoch and an attributable node.
  for (const auto& e : audit.Query(AuditKind::kTamper)) {
    EXPECT_GE(e.epoch, 50u);
    EXPECT_NE(e.node, telemetry::kAuditNoNode);
    EXPECT_FALSE(e.cause.empty());
  }
  audit.Disable();
  audit.Reset();
}

TEST(TelemetryIntegrationTest, AdversaryDropsAreAttributedToTheVictim) {
  SiesFixture fx;
  AuditTrail& audit = AuditTrail::Global();
  audit.Reset();
  audit.Enable();

  net::NodeId victim = fx.network.topology().sources()[5];
  net::DropAdversary adv(victim);
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 3).value();
  fx.network.SetAdversary(nullptr);

  // The contributor bitmap turns the drop into a verified partial;
  // the audit trail still attributes the suppression to the victim and
  // records the epoch's reduced coverage as reported loss.
  EXPECT_TRUE(report.outcome.verified);
  EXPECT_LT(report.coverage, 1.0);
  ASSERT_EQ(adv.dropped_count(), 1u);
  auto drops = audit.Query(AuditKind::kAdversaryDrop);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].node, victim);
  EXPECT_EQ(drops[0].epoch, 3u);
  EXPECT_EQ(audit.CountOf(AuditKind::kReportedLoss), 1u);
  EXPECT_EQ(audit.CountOf(AuditKind::kVerificationFailure), 0u)
      << "a drop must not masquerade as tampering";
  audit.Disable();
  audit.Reset();
}

TEST(TelemetryIntegrationTest, RadioLossEventsMatchTheLossCounter) {
  SiesFixture fx;
  AuditTrail& audit = AuditTrail::Global();
  audit.Reset();
  audit.Enable();

  ASSERT_TRUE(fx.network.SetLossRate(0.2, 33).ok());
  for (uint64_t epoch = 1; epoch <= 10; ++epoch) {
    (void)fx.network.RunEpoch(fx.protocol, epoch);  // loss epochs may error
  }
  EXPECT_GT(fx.network.lost_messages(), 0u);
  EXPECT_EQ(audit.CountOf(AuditKind::kRadioLoss), fx.network.lost_messages());
  audit.Disable();
  audit.Reset();
}

TEST(TelemetryIntegrationTest, DisabledAuditRecordsNothingUnderAttack) {
  SiesFixture fx;
  AuditTrail& audit = AuditTrail::Global();
  audit.Reset();
  audit.Disable();

  net::BitFlipAdversary adv(fx.network.topology().sources()[0],
                            /*bit_index=*/100);
  fx.network.SetAdversary(&adv);
  (void)fx.network.RunEpoch(fx.protocol, 7);
  fx.network.SetAdversary(nullptr);

  EXPECT_GT(adv.tampered_count(), 0u);
  EXPECT_EQ(audit.size(), 0u);
}

TEST(TelemetryIntegrationTest, PhaseHistogramsCountEveryPhase) {
  SiesFixture fx;
  auto& registry = telemetry::MetricsRegistry::Global();
  // The registry is process-global and other tests feed it too, so
  // compare deltas on the stable handles rather than absolute counts.
  telemetry::Histogram* source_h = registry.GetHistogram(
      "sies_phase_seconds", {{"scheme", "SIES"}, {"phase", "source_init"}});
  telemetry::Histogram* merge_h = registry.GetHistogram(
      "sies_phase_seconds", {{"scheme", "SIES"}, {"phase", "merge"}});
  telemetry::Histogram* eval_h = registry.GetHistogram(
      "sies_phase_seconds", {{"scheme", "SIES"}, {"phase", "evaluate"}});
  uint64_t source0 = source_h->TotalCount();
  uint64_t merge0 = merge_h->TotalCount();
  uint64_t eval0 = eval_h->TotalCount();

  auto report = fx.network.RunEpoch(fx.protocol, 1).value();
  EXPECT_TRUE(report.outcome.verified);

  // 16 sources, a 4-ary complete tree (5 aggregators), one evaluation.
  EXPECT_EQ(source_h->TotalCount() - source0, 16u);
  EXPECT_EQ(merge_h->TotalCount() - merge0, 5u);
  EXPECT_EQ(eval_h->TotalCount() - eval0, 1u);
}

TEST(TelemetryIntegrationTest, TracerCapturesPhaseSpans) {
  SiesFixture fx;
  telemetry::Tracer& tracer = telemetry::Tracer::Global();
  tracer.Reset();
  tracer.Enable();

  auto report = fx.network.RunEpoch(fx.protocol, 1).value();
  EXPECT_TRUE(report.outcome.verified);
  tracer.Disable();

  std::set<std::string> names;
  for (const auto& e : tracer.Events()) names.insert(e.name);
  EXPECT_TRUE(names.count("source-init"));
  EXPECT_TRUE(names.count("merge"));
  EXPECT_TRUE(names.count("evaluate"));
  tracer.Reset();
}

}  // namespace
}  // namespace sies::runner
