// MetricsRegistry unit tests: handle identity/stability, concurrent
// updates, histogram bucket/quantile semantics, and exact exporter
// output (golden strings — the exporters are deterministic on a
// deterministic registry).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace sies::telemetry {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, TracksValueAndPeak) {
  Gauge g;
  g.Set(3.0);
  g.Set(7.5);
  g.Set(1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.0);
  EXPECT_DOUBLE_EQ(g.Peak(), 7.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_DOUBLE_EQ(g.Peak(), 0.0);
}

TEST(RegistryTest, SameNameAndLabelsYieldSameHandle) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("hits", {{"scheme", "SIES"}});
  Counter* b = reg.GetCounter("hits", {{"scheme", "SIES"}});
  Counter* c = reg.GetCounter("hits", {{"scheme", "CMT"}});
  Counter* d = reg.GetCounter("hits");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(c, d);
}

TEST(RegistryTest, ResetZeroesButKeepsHandlesValid) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("events");
  Gauge* g = reg.GetGauge("depth");
  Histogram* h = reg.GetHistogram("lat");
  c->Increment(5);
  g->Set(2.0);
  h->Observe(0.001);
  reg.Reset();
  // Old pointers still work and read zero; re-lookup returns the same
  // objects (the registry never deletes).
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_EQ(reg.GetCounter("events"), c);
  EXPECT_EQ(reg.GetGauge("depth"), g);
  EXPECT_EQ(reg.GetHistogram("lat"), h);
  c->Increment();
  EXPECT_EQ(reg.GetCounter("events")->Value(), 1u);
}

TEST(RegistryTest, ConcurrentIncrementsOnLabeledCountersLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Every thread re-looks-up its handles (exercising registration
      // under contention) and hammers two shared labeled counters.
      Counter* even = reg.GetCounter("ops", {{"parity", "even"}});
      Counter* odd = reg.GetCounter("ops", {{"parity", "odd"}});
      Histogram* lat = reg.GetHistogram("lat");
      for (int i = 0; i < kIncrements; ++i) {
        ((t + i) % 2 == 0 ? even : odd)->Increment();
        lat->Observe(1e-6);
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t even = reg.GetCounter("ops", {{"parity", "even"}})->Value();
  uint64_t odd = reg.GetCounter("ops", {{"parity", "odd"}})->Value();
  EXPECT_EQ(even + odd, uint64_t{kThreads} * kIncrements);
  EXPECT_EQ(even, odd);  // parity alternates exactly per thread
  EXPECT_EQ(reg.GetHistogram("lat")->TotalCount(),
            uint64_t{kThreads} * kIncrements);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  // Bucket i counts observations <= bounds[i] (and > bounds[i-1]);
  // one implicit overflow bucket takes the rest.
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 — boundary value lands in its own bucket
  h.Observe(1.001); // bucket 1
  h.Observe(2.0);   // bucket 1
  h.Observe(4.0);   // bucket 2
  h.Observe(4.001); // overflow
  h.Observe(100.0); // overflow
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.TotalCount(), 7u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.001 + 2.0 + 4.0 + 4.001 + 100.0);
}

TEST(HistogramTest, QuantileInterpolatesAndIsExactAtBoundaries) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.Observe(0.5);  // all in bucket 0
  // Uniform-in-bucket interpolation across [0, 1].
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1.0);  // exact at the bucket edge
  h.Reset();
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty histogram reports 0
  h.Observe(3.0);  // single sample in bucket 2 -> every quantile = hi edge
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 4.0);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double>& b = Histogram::DefaultLatencyBounds();
  ASSERT_FALSE(b.empty());
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_LE(b.front(), 1.01e-6);  // covers a single modular add
  EXPECT_GE(b.back(), 100.0);   // covers a 16k-source cold evaluation
}

// Exporter goldens: exact output for a small deterministic registry.
// The values are integers (or exactly-representable doubles), so %.9g
// formatting is stable across platforms.
class ExporterGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reg_.GetCounter("reqs", {{"scheme", "SIES"}})->Increment(3);
    reg_.GetGauge("depth")->Set(2.5);
    std::vector<double> bounds = {1.0, 2.0};
    Histogram* h = reg_.GetHistogram("lat", {}, &bounds);
    h->Observe(0.5);
    h->Observe(1.5);
    h->Observe(3.0);
  }
  MetricsRegistry reg_;
};

TEST_F(ExporterGoldenTest, JsonMatchesGolden) {
  const char* expected =
      "{\n"
      "  \"counters\": [\n"
      "    {\"name\": \"reqs\", \"labels\": {\"scheme\": \"SIES\"}, "
      "\"value\": 3}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\": \"depth\", \"labels\": {}, \"value\": 2.5, "
      "\"peak\": 2.5}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "    {\"name\": \"lat\", \"labels\": {}, \"count\": 3, \"sum\": 5, "
      "\"p50\": 1, \"p95\": 2, \"p99\": 2, \"buckets\": "
      "[{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 1}, "
      "{\"le\": \"+Inf\", \"count\": 1}]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(reg_.ToJson(), expected);
}

TEST_F(ExporterGoldenTest, PrometheusMatchesGolden) {
  const char* expected =
      "# TYPE reqs counter\n"
      "reqs{scheme=\"SIES\"} 3\n"
      "# TYPE depth gauge\n"
      "depth 2.5\n"
      "# TYPE lat histogram\n"
      "lat_bucket{le=\"1\"} 1\n"
      "lat_bucket{le=\"2\"} 2\n"
      "lat_bucket{le=\"+Inf\"} 3\n"
      "lat_sum 5\n"
      "lat_count 3\n";
  EXPECT_EQ(reg_.ToPrometheus(), expected);
}

}  // namespace
}  // namespace sies::telemetry
