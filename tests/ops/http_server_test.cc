// The embedded HTTP server's robustness contract: well-formed GETs
// dispatch, everything hostile gets a clean error response, and no
// client behavior takes the accept loop down.
#include "ops/http_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "http_client.h"
#include "telemetry/metrics.h"

namespace sies::ops {
namespace {

using testing::Get;
using testing::RawRequest;

/// Starts a server with /hello and /echo endpoints on an ephemeral port.
class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.Handle("/hello", [](const HttpRequest&) {
      return HttpResponse{200, "text/plain; charset=utf-8", "hi\n"};
    });
    server_.Handle("/echo", [](const HttpRequest& request) {
      std::string body = request.method + " " + request.path;
      for (const auto& [key, value] : request.params) {
        body += " " + key + "=" + value;
      }
      return HttpResponse{200, "text/plain; charset=utf-8", body};
    });
    ASSERT_TRUE(server_.Start("127.0.0.1", 0).ok());
    ASSERT_NE(server_.port(), 0) << "ephemeral port must resolve";
  }

  HttpServer server_;
};

TEST_F(HttpServerTest, ServesRegisteredPath) {
  auto r = Get(server_.port(), "/hello");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "hi\n");
  EXPECT_NE(r.raw.find("Connection: close"), std::string::npos);
  EXPECT_NE(r.raw.find("Content-Length: 3"), std::string::npos);
}

TEST_F(HttpServerTest, ParsesQueryParameters) {
  auto r = Get(server_.port(), "/echo?a=1&b=two&bare");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("GET /echo"), std::string::npos);
  EXPECT_NE(r.body.find("a=1"), std::string::npos);
  EXPECT_NE(r.body.find("b=two"), std::string::npos);
  EXPECT_NE(r.body.find("bare="), std::string::npos);
}

TEST_F(HttpServerTest, PercentDecodesQueryValues) {
  // last=%31 MUST mean last=1 — the pre-fix parser handed the literal
  // "%31" to strtoul-style consumers, silently reading 0.
  auto r = Get(server_.port(), "/echo?last=%31&msg=a%20b%26c");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("last=1"), std::string::npos);
  // An ENCODED '&' or '=' lands inside the value; only literal
  // separators split.
  EXPECT_NE(r.body.find("msg=a b&c"), std::string::npos);
}

TEST_F(HttpServerTest, PercentDecodesThePath) {
  auto r = Get(server_.port(), "/he%6C%6Co");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "hi\n");
}

TEST_F(HttpServerTest, PlusIsNotSpace) {
  // '+' means space only in form bodies; in query components it is a
  // literal plus.
  auto r = Get(server_.port(), "/echo?v=a+b");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_NE(r.body.find("v=a+b"), std::string::npos);
}

TEST_F(HttpServerTest, MalformedEscapesAre400) {
  for (const char* target :
       {"/echo?v=%zz", "/echo?v=%1", "/echo?v=%", "/he%llo", "/echo?%G1=x"}) {
    auto r = Get(server_.port(), target);
    ASSERT_TRUE(r.ok) << target << "\n" << r.raw;
    EXPECT_EQ(r.status, 400) << target;
  }
}

TEST_F(HttpServerTest, RequestLineEdgeCases) {
  // Double space: the target becomes " /hello", which no handler
  // matches — a clean 404, not a crash or a surprise dispatch.
  auto r = RawRequest(server_.port(), "GET  /hello HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 404);
  // Tab is not a request-line separator.
  r = RawRequest(server_.port(), "GET\t/hello HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 400);
  // Trailing whitespace shifts the version token off "HTTP/".
  r = RawRequest(server_.port(), "GET /hello HTTP/1.0 \r\n\r\n");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 400);
  // Missing version entirely.
  r = RawRequest(server_.port(), "GET /hello\r\n\r\n");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 400);
}

TEST_F(HttpServerTest, EmptyQueryKeysAreServed) {
  auto r = Get(server_.port(), "/echo?=naked&a=1&&");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("=naked"), std::string::npos);
  EXPECT_NE(r.body.find("a=1"), std::string::npos);
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  auto r = Get(server_.port(), "/nope");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 404);
}

TEST_F(HttpServerTest, NonGetIs405) {
  auto r = RawRequest(server_.port(), "POST /hello HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 405);
}

TEST_F(HttpServerTest, OversizedRequestLineIs400) {
  std::string long_target(2 * kMaxRequestLine, 'a');
  auto r = RawRequest(server_.port(),
                      "GET /" + long_target + " HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 400);
}

TEST_F(HttpServerTest, GarbageRequestIs400) {
  auto r = RawRequest(server_.port(), "\x01\x02garbage\r\n\r\n");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 400);
}

TEST_F(HttpServerTest, EarlyCloseDoesNotKillTheServer) {
  // Half a request line then hang up; a bare connect; a full request
  // whose sender never reads the response.
  testing::SendAndClose(server_.port(), "GET /hel");
  testing::SendAndClose(server_.port(), "");
  testing::SendAndClose(server_.port(), "GET /hello HTTP/1.0\r\n\r\n");
  // The loop must still serve the next well-formed request.
  auto r = Get(server_.port(), "/hello");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(server_.running());
}

TEST_F(HttpServerTest, CountsEveryAnsweredRequest) {
  (void)Get(server_.port(), "/hello");
  (void)Get(server_.port(), "/nope");
  (void)RawRequest(server_.port(), "PUT /hello HTTP/1.0\r\n\r\n");
  EXPECT_EQ(server_.requests_served(), 3u);
}

TEST_F(HttpServerTest, AbortedSendCountsAsFailureNotServed) {
  // An 8 MB body cannot fit the socket buffers, so a client that hangs
  // up without reading forces SendAll to fail mid-body. The response
  // must land in ops_http_send_failures_total and NOT in
  // ops_http_responses_total{code="200"} — pre-fix, every failed send
  // still counted as served.
  static const std::string big_body(8u << 20, 'x');
  server_.Handle("/big", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", big_body};
  });
  auto& registry = telemetry::MetricsRegistry::Global();
  auto* served = registry.GetCounter("ops_http_responses_total",
                                     {{"code", "200"}});
  auto* failed = registry.GetCounter("ops_http_send_failures_total");
  const uint64_t served_before = served->Value();
  const uint64_t failed_before = failed->Value();
  testing::SendAndClose(server_.port(), "GET /big HTTP/1.0\r\n\r\n");
  // The serve happens on the accept-loop thread; wait for the verdict.
  for (int i = 0; i < 500 && failed->Value() == failed_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(failed->Value(), failed_before + 1);
  EXPECT_EQ(served->Value(), served_before);
  // A well-behaved client afterwards still counts as served.
  auto r = Get(server_.port(), "/hello");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_GT(served->Value(), served_before);
}

TEST_F(HttpServerTest, StopIsIdempotentAndStopsServing) {
  server_.Stop();
  EXPECT_FALSE(server_.running());
  server_.Stop();  // second Stop must be a no-op
  auto r = Get(server_.port(), "/hello");
  EXPECT_FALSE(r.ok) << "stopped server must refuse connections";
}

TEST(HttpServerLifecycleTest, RestartAfterStopServesAgain) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "pong"};
  });
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  const uint16_t first_port = server.port();
  EXPECT_EQ(Get(first_port, "/ping").status, 200);
  server.Stop();
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  EXPECT_EQ(Get(server.port(), "/ping").status, 200);
}

}  // namespace
}  // namespace sies::ops
