// Scrapes a LIVE engine run: the admin server answers from another
// thread while RunEngineExperiment is mid-flight. Admission at epoch t
// must be visible at t, teardown must free the query's slots, and the
// epoch timeline's phase arithmetic must be consistent with wall time.
// This is also the scraper-vs-engine race shape the `ops` ctest label
// runs under TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "engine/query_spec.h"
#include "http_client.h"
#include "runner/engine_runner.h"
#include "telemetry/telemetry.h"

namespace sies::runner {
namespace {

using ops::testing::Get;
using ops::testing::HttpResult;

/// One mid-run scrape of every endpoint, keyed by the epoch it ran at.
struct Scrape {
  uint64_t epoch = 0;
  HttpResult readyz, queries, epochs, metrics;
};

TEST(OpsIntegrationTest, LiveRunServesAdmissionTeardownAndTimeline) {
  auto& timeline = telemetry::EpochTimeline::Global();
  timeline.Reset();
  timeline.Enable();

  auto queries = engine::ParseQueriesText(
      "sum temperature id 0\n"
      "avg temperature id 1\n");
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  EngineExperimentConfig config;
  config.queries.push_back({queries.value()[0], /*admit_epoch=*/1,
                            /*teardown_epoch=*/0});
  // The second query lives only in epochs [3, 6): its admission and its
  // teardown both happen while the server is being scraped.
  config.queries.push_back({queries.value()[1], /*admit_epoch=*/3,
                            /*teardown_epoch=*/6});
  config.num_sources = 16;
  config.epochs = 8;
  config.ops_port = 0;
  config.threads = 2;

  uint16_t port = 0;
  config.on_ops_ready = [&port](uint16_t p) { port = p; };
  std::vector<Scrape> scrapes;
  config.after_epoch = [&](uint64_t epoch) {
    Scrape s;
    s.epoch = epoch;
    s.readyz = Get(port, "/readyz");
    s.queries = Get(port, "/queries");
    s.epochs = Get(port, "/epochs?last=1");
    s.metrics = Get(port, "/metrics");
    scrapes.push_back(std::move(s));
  };

  auto result = RunEngineExperiment(config);
  timeline.Disable();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().all_verified);
  ASSERT_EQ(scrapes.size(), 8u);
  ASSERT_NE(port, 0);

  for (const Scrape& s : scrapes) {
    ASSERT_TRUE(s.readyz.ok && s.queries.ok && s.epochs.ok && s.metrics.ok)
        << "scrape failed at epoch " << s.epoch;
    EXPECT_EQ(s.queries.status, 200);
    EXPECT_EQ(s.epochs.status, 200);
    EXPECT_EQ(s.metrics.status, 200);

    // Admission visibility: q1 appears exactly in its live window.
    const bool q1_visible =
        s.queries.body.find("\"id\": 1") != std::string::npos;
    EXPECT_EQ(q1_visible, s.epoch >= 3 && s.epoch < 6)
        << "epoch " << s.epoch << ": " << s.queries.body;
    EXPECT_NE(s.queries.body.find("\"id\": 0"), std::string::npos);

    // Readiness: keys warm after epoch 1 finished, fresh ever since.
    EXPECT_EQ(s.readyz.status, 200) << s.readyz.body;

    // /metrics stays a parseable Prometheus scrape mid-run.
    EXPECT_NE(s.metrics.body.find("# TYPE"), std::string::npos);
  }

  // Teardown frees slots: q0 (SUM) needs one channel once q1 is gone,
  // and the final scrape's count drops back to 1.
  const Scrape& last = scrapes.back();
  EXPECT_NE(last.queries.body.find("\"count\": 1"), std::string::npos)
      << last.queries.body;

  // Timeline arithmetic invariants (the ≥90%-of-wall coverage check
  // runs in check.sh --ops-smoke, on a paced single-threaded run where
  // wall time is meaningful): critical path is positive, never exceeds
  // the wall, and never exceeds the attributed CPU total.
  const std::vector<telemetry::EpochRecord> records = timeline.Last(8);
  ASSERT_FALSE(records.empty());
  for (const telemetry::EpochRecord& r : records) {
    EXPECT_GT(r.wall_seconds, 0.0);
    EXPECT_GT(r.critical_path_seconds, 0.0);
    EXPECT_LE(r.critical_path_seconds, r.wall_seconds);
    EXPECT_LE(r.critical_path_seconds, r.attributed_seconds);
    EXPECT_TRUE(r.answered);
    EXPECT_TRUE(r.verified);
    EXPECT_FALSE(r.channels.empty());
    EXPECT_EQ(r.tampered_channels, 0u);
  }
  timeline.Reset();
}

TEST(OpsIntegrationTest, RunWithoutOpsPortStartsNoServer) {
  auto queries = engine::ParseQueriesText("sum temperature id 0\n");
  ASSERT_TRUE(queries.ok());
  EngineExperimentConfig config;
  config.queries.push_back({queries.value()[0]});
  config.num_sources = 8;
  config.epochs = 2;
  bool ready_called = false;
  config.on_ops_ready = [&ready_called](uint16_t) { ready_called = true; };
  auto result = RunEngineExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(ready_called) << "ops plane must be off by default";
}

}  // namespace
}  // namespace sies::runner
