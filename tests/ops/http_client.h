// Tiny blocking HTTP/1.0 client for exercising the ops plane in tests:
// one GET per connection, reads to EOF (the server always closes),
// returns the parsed status code and body. Deliberately independent of
// the server's own socket code so a server-side bug cannot cancel out.
#ifndef SIES_TESTS_OPS_HTTP_CLIENT_H_
#define SIES_TESTS_OPS_HTTP_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sies::ops::testing {

struct HttpResult {
  bool ok = false;     ///< transport succeeded and a status line parsed
  int status = 0;
  std::string body;    ///< bytes after the blank line
  std::string raw;     ///< everything read, for debugging
};

/// Connects to 127.0.0.1:port and sends `raw_request` verbatim, then
/// reads to EOF. Pass a full request ("GET /x HTTP/1.0\r\n\r\n") or any
/// malformed bytes to probe the parser.
inline HttpResult RawRequest(uint16_t port, const std::string& raw_request) {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }
  size_t sent = 0;
  while (sent < raw_request.size()) {
    const ssize_t n = ::send(fd, raw_request.data() + sent,
                             raw_request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    result.raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 200 OK\r\n...\r\n\r\n<body>"
  if (result.raw.rfind("HTTP/", 0) != 0) return result;
  const size_t sp = result.raw.find(' ');
  if (sp == std::string::npos || sp + 4 > result.raw.size()) return result;
  result.status = std::atoi(result.raw.c_str() + sp + 1);
  const size_t blank = result.raw.find("\r\n\r\n");
  if (blank != std::string::npos) result.body = result.raw.substr(blank + 4);
  result.ok = result.status != 0;
  return result;
}

/// GET `target` ("/metrics", "/epochs?last=3", ...) via HTTP/1.0.
inline HttpResult Get(uint16_t port, const std::string& target) {
  return RawRequest(port, "GET " + target + " HTTP/1.0\r\n\r\n");
}

/// Connects, sends `bytes` (possibly none), and hangs up WITHOUT reading
/// the response — the rude client the server must survive.
inline void SendAndClose(uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      !bytes.empty()) {
    (void)!::send(fd, bytes.data(), bytes.size(), 0);
  }
  ::close(fd);
}

}  // namespace sies::ops::testing

#endif  // SIES_TESTS_OPS_HTTP_CLIENT_H_
