// AdminServer endpoint contract: Prometheus scrape shape, health and
// readiness semantics, query introspection JSON, and the /epochs
// window parameter — all against a synthetic snapshot, no engine.
#include "ops/admin_server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "http_client.h"
#include "telemetry/telemetry.h"

namespace sies::ops {
namespace {

using testing::Get;

std::vector<QueryInfo> TwoQueries() {
  QueryInfo avg;
  avg.id = 0;
  avg.sql = "SELECT AVG(temperature) FROM Sensors";
  avg.admitted_epoch = 1;
  avg.slots = {0, 1};
  avg.answered_epochs = 7;
  avg.verified_epochs = 6;
  avg.unverified_epochs = 1;
  avg.partial_epochs = 2;
  avg.last_value = 35.25;
  avg.last_coverage = 0.5;
  avg.last_epoch = 7;
  QueryInfo count;
  count.id = 3;
  count.sql = "SELECT COUNT(pressure) FROM Sensors WHERE \"x\"";
  count.admitted_epoch = 4;
  count.slots = {2};
  return {avg, count};
}

TEST(AdminServerTest, MetricsEndpointServesPrometheusText) {
  telemetry::MetricsRegistry::Global()
      .GetCounter("ops_test_scrapes_total")
      ->Increment();
  auto server = AdminServer::Start(AdminOptions{}, nullptr);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto r = Get(server.value()->port(), "/metrics");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.raw.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE ops_test_scrapes_total counter"),
            std::string::npos);
  EXPECT_NE(r.body.find("ops_test_scrapes_total 1"), std::string::npos);
  // The scrape itself is metered: the 200 we just received shows up on
  // the next scrape.
  auto again = Get(server.value()->port(), "/metrics");
  EXPECT_NE(again.body.find("ops_http_responses_total{code=\"200\"}"),
            std::string::npos);
}

TEST(AdminServerTest, HealthzIsAliveWhileRunning) {
  auto server = AdminServer::Start(AdminOptions{}, nullptr);
  ASSERT_TRUE(server.ok());
  auto r = Get(server.value()->port(), "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");
}

TEST(AdminServerTest, ReadyzTracksProvisioningKeysAndFreshness) {
  auto server = AdminServer::Start(AdminOptions{}, nullptr);
  ASSERT_TRUE(server.ok());
  AdminServer& admin = *server.value();

  // Nothing reported yet: 503 with every gate visible in the body.
  auto r = Get(admin.port(), "/readyz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"ready\": false"), std::string::npos);
  EXPECT_NE(r.body.find("\"provisioned\": false"), std::string::npos);
  EXPECT_NE(r.body.find("\"keys_warm\": false"), std::string::npos);

  // All three gates satisfied: ready.
  admin.SetProvisioned(true);
  admin.SetKeysWarm(true);
  admin.ReportEpoch(12, /*verified=*/true);
  r = Get(admin.port(), "/readyz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"ready\": true"), std::string::npos);
  EXPECT_NE(r.body.find("\"last_epoch\": 12"), std::string::npos);
  EXPECT_NE(r.body.find("\"last_epoch_verified\": true"), std::string::npos);

  // An unverified epoch is reported but does NOT flip readiness: under
  // attack, rejecting the aggregate is the engine working as designed.
  admin.ReportEpoch(13, /*verified=*/false);
  r = Get(admin.port(), "/readyz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"last_epoch_verified\": false"), std::string::npos);

  // Losing a gate drops readiness again.
  admin.SetKeysWarm(false);
  EXPECT_EQ(Get(admin.port(), "/readyz").status, 503);
}

TEST(AdminServerTest, ReadyzGoesStaleWithoutEpochProgress) {
  AdminOptions options;
  options.ready_staleness_seconds = 1e-9;  // everything is stale
  auto server = AdminServer::Start(options, nullptr);
  ASSERT_TRUE(server.ok());
  AdminServer& admin = *server.value();
  admin.SetProvisioned(true);
  admin.SetKeysWarm(true);
  admin.ReportEpoch(1, true);
  auto r = Get(admin.port(), "/readyz");
  EXPECT_EQ(r.status, 503) << r.body;
  EXPECT_NE(r.body.find("\"ready\": false"), std::string::npos);
}

TEST(AdminServerTest, QueriesEndpointSerializesTheSnapshot) {
  auto server = AdminServer::Start(AdminOptions{}, TwoQueries);
  ASSERT_TRUE(server.ok());
  auto r = Get(server.value()->port(), "/queries");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(r.body.find(
                "{\"id\": 0, \"sql\": \"SELECT AVG(temperature) FROM "
                "Sensors\", \"admitted_epoch\": 1, \"slots\": [0, 1], "
                "\"answered_epochs\": 7, \"verified_epochs\": 6, "
                "\"unverified_epochs\": 1, \"partial_epochs\": 2, "
                "\"last_epoch\": 7, \"last_value\": 35.25, "
                "\"last_coverage\": 0.5}"),
            std::string::npos)
      << r.body;
  // Embedded quotes in SQL must arrive escaped.
  EXPECT_NE(r.body.find("WHERE \\\"x\\\""), std::string::npos) << r.body;
}

TEST(AdminServerTest, QueriesEndpointWithoutSnapshotIsEmpty) {
  auto server = AdminServer::Start(AdminOptions{}, nullptr);
  ASSERT_TRUE(server.ok());
  auto r = Get(server.value()->port(), "/queries");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"count\": 0"), std::string::npos);
}

TEST(AdminServerTest, EpochsEndpointServesTheTimelineWindow) {
  auto& timeline = telemetry::EpochTimeline::Global();
  timeline.Reset();
  timeline.Enable();
  for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
    timeline.BeginEpoch(epoch);
    timeline.RecordPhase(telemetry::EpochPhase::kPsrCreate, 0.001);
    telemetry::EpochVerdict verdict;
    verdict.answered = true;
    verdict.verified = true;
    verdict.coverage = 1.0;
    timeline.EndEpoch(verdict);
  }
  timeline.Disable();

  auto server = AdminServer::Start(AdminOptions{}, nullptr);
  ASSERT_TRUE(server.ok());
  auto r = Get(server.value()->port(), "/epochs?last=2");
  ASSERT_TRUE(r.ok) << r.raw;
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"window\": 2"), std::string::npos);
  EXPECT_NE(r.body.find("\"epochs_recorded\": 4"), std::string::npos);
  EXPECT_EQ(r.body.find("\"epoch\": 2"), std::string::npos) << "outside window";
  EXPECT_NE(r.body.find("\"epoch\": 3"), std::string::npos);
  EXPECT_NE(r.body.find("\"epoch\": 4"), std::string::npos);
  EXPECT_NE(r.body.find("\"phase\": \"psr_create\""), std::string::npos);
  timeline.Reset();
}

TEST(AdminServerTest, EpochsRejectsBadWindow) {
  auto server = AdminServer::Start(AdminOptions{}, nullptr);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(Get(server.value()->port(), "/epochs?last=0").status, 400);
  EXPECT_EQ(Get(server.value()->port(), "/epochs?last=banana").status, 400);
  EXPECT_EQ(Get(server.value()->port(), "/epochs?last=999999999").status, 400);
  EXPECT_EQ(Get(server.value()->port(), "/epochs").status, 200);
}

}  // namespace
}  // namespace sies::ops
