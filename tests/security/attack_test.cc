// Integration-level security tests: the four properties of Section I
// exercised through the full simulator with in-flight adversaries
// (Theorems 1-4), plus the negative control on CMT.
#include <gtest/gtest.h>

#include "mutesla/mutesla.h"
#include "net/adversary.h"
#include "runner/runner.h"
#include "sies/message_format.h"
#include "sies/query.h"
#include "telemetry/audit.h"

namespace sies::runner {
namespace {

// Builds a ready-to-run SIES network with protocol + trace.
struct SiesFixture {
  explicit SiesFixture(uint32_t n = 16, uint32_t fanout = 4,
                       uint64_t seed = 21)
      : network(net::Topology::BuildCompleteTree(n, fanout).value()),
        params(core::MakeParams(n, seed).value()),
        keys(core::GenerateKeys(params, EncodeUint64(seed))),
        trace([&] {
          workload::TraceConfig c;
          c.num_sources = n;
          c.seed = seed;
          return workload::TraceGenerator(c);
        }()),
        protocol(params, keys, network.topology(),
                 [this](uint32_t index, uint64_t epoch) {
                   return trace.ValueAt(index, epoch);
                 }) {}

  net::Network network;
  core::Params params;
  core::QuerierKeys keys;
  workload::TraceGenerator trace;
  SiesProtocol protocol;
};

TEST(SiesAttackTest, HonestRunsVerifyAndAreExact) {
  SiesFixture fx;
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    auto report = fx.network.RunEpoch(fx.protocol, epoch).value();
    EXPECT_TRUE(report.outcome.verified) << "epoch " << epoch;
    EXPECT_EQ(report.outcome.value,
              static_cast<double>(Snapshot(fx.trace, epoch).exact_sum));
  }
}

TEST(SiesAttackTest, BitFlipOnAnyEdgeDetected) {
  // Flip one bit of a different node's payload each epoch; the querier
  // must never verify.
  SiesFixture fx;
  for (net::NodeId target = 0; target < fx.network.topology().num_nodes();
       target += 3) {
    net::BitFlipAdversary adv(target, /*bit_index=*/100);
    fx.network.SetAdversary(&adv);
    auto report = fx.network.RunEpoch(fx.protocol, 50 + target);
    if (!report.ok()) continue;  // non-residue PSR rejected: also detected
    if (adv.tampered_count() == 0) continue;
    EXPECT_FALSE(report.value().outcome.verified)
        << "tamper at node " << target << " slipped through";
  }
  fx.network.SetAdversary(nullptr);
}

TEST(SiesAttackTest, ReplayAttackDetected) {
  // Capture epoch 1 traffic, replay it from epoch 2 on (Theorem 4).
  SiesFixture fx;
  net::ReplayAdversary adv(/*capture_epoch=*/1);
  fx.network.SetAdversary(&adv);
  auto captured = fx.network.RunEpoch(fx.protocol, 1).value();
  EXPECT_TRUE(captured.outcome.verified);
  auto replayed = fx.network.RunEpoch(fx.protocol, 2).value();
  EXPECT_GT(adv.replayed_count(), 0u);
  EXPECT_FALSE(replayed.outcome.verified) << "replay accepted as fresh";
}

TEST(SiesAttackTest, DroppedContributionIsReportedNeverSilent) {
  // A compromised aggregator silently discards a subtree (Theorem 2's
  // "no PSR may be dropped"). With the contributor bitmap the querier
  // cannot be fooled into accepting the shrunken sum as COMPLETE: the
  // missing bit is visible, the result verifies only as an explicit
  // partial over the remaining 15 sources, and the value matches that
  // reduced set exactly.
  SiesFixture fx;
  net::NodeId victim = fx.network.topology().sources()[5];
  net::DropAdversary adv(victim);
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 3).value();
  EXPECT_EQ(adv.dropped_count(), 1u);
  EXPECT_TRUE(report.outcome.verified);
  EXPECT_LT(report.coverage, 1.0);
  EXPECT_EQ(report.contributing_sources, 15u);
  SourceIndexMap map(fx.network.topology());
  uint64_t partial = 0;
  for (net::NodeId node : report.outcome.contributors) {
    EXPECT_NE(node, victim);
    partial += fx.trace.ValueAt(map.IndexOf(node).value(), 3);
  }
  EXPECT_EQ(report.outcome.value, static_cast<double>(partial));
}

TEST(SiesAttackTest, DropPlusBitmapForgeryDetected) {
  // The stronger adversary: discard a subtree AND re-set the victim's
  // bit so the partial masquerades as a complete sum. The querier then
  // expects the victim's key shares, the ciphertext lacks them, and
  // verification fails (the bitmap is reporting, not trusted).
  SiesFixture fx;
  net::NodeId victim = fx.network.topology().sources()[5];
  SourceIndexMap map(fx.network.topology());
  uint32_t victim_index = map.IndexOf(victim).value();
  net::CallbackAdversary adv([&](net::Message& msg) {
    if (msg.from == victim) return false;  // drop the victim's PSR
    if (msg.to == net::kQuerierId) {
      msg.payload[victim_index / 8] |=
          static_cast<uint8_t>(1u << (victim_index % 8));
    }
    return true;
  });
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 3).value();
  EXPECT_FALSE(report.outcome.verified);
}

TEST(SiesAttackTest, InjectedContributionDetected) {
  // The adversary homomorphically adds a spurious PSR in flight,
  // leaving the contributor bitmap untouched (the precise attack).
  SiesFixture fx;
  const auto& params = fx.params;
  net::CallbackAdversary adv([&](net::Message& msg) {
    if (msg.to != net::kQuerierId) return true;
    size_t skip = core::WireBitmapBytes(params);
    Bytes body(msg.payload.begin() + skip, msg.payload.end());
    auto c = crypto::BigUint::FromBytes(body);
    // Add E(v', 1, 0)-style garbage: any nonzero delta works.
    c = crypto::BigUint::ModAdd(c, crypto::BigUint(424242), params.prime)
            .value();
    body = c.ToBytes(body.size()).value();
    std::copy(body.begin(), body.end(), msg.payload.begin() + skip);
    return true;
  });
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 4).value();
  EXPECT_FALSE(report.outcome.verified);
}

TEST(SiesAttackTest, ValueShiftAttackDetected) {
  // The subtle attack: add v' << shift so only the value field changes.
  // Theorem 2: the multiplication by the secret K_t means the adversary
  // cannot target the value field without disturbing the share field.
  SiesFixture fx;
  const auto& params = fx.params;
  net::CallbackAdversary adv([&](net::Message& msg) {
    if (msg.to != net::kQuerierId) return true;
    size_t skip = core::WireBitmapBytes(params);
    Bytes body(msg.payload.begin() + skip, msg.payload.end());
    auto c = crypto::BigUint::FromBytes(body);
    crypto::BigUint delta =
        crypto::BigUint::Shl(crypto::BigUint(1000), params.ValueShiftBits());
    c = crypto::BigUint::ModAdd(c, delta, params.prime).value();
    body = c.ToBytes(body.size()).value();
    std::copy(body.begin(), body.end(), msg.payload.begin() + skip);
    return true;
  });
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 5).value();
  EXPECT_FALSE(report.outcome.verified);
}

TEST(SiesAttackTest, ReportedFailureVerifiesWithoutVictim) {
  // Legitimate failure handling: source reported as failed, querier uses
  // the reduced participation list and verification succeeds.
  SiesFixture fx;
  net::NodeId victim = fx.network.topology().sources()[2];
  fx.network.FailSource(victim);
  auto report = fx.network.RunEpoch(fx.protocol, 6).value();
  EXPECT_TRUE(report.outcome.verified);
}

TEST(SiesAttackTest, RandomizedTamperSweep) {
  // 40 random single-bit tampers on random nodes/epochs: zero WRONG
  // sums accepted. A flip may land in the contributor bitmap and set a
  // bit another live source legitimately sets anyway — the OR-merge
  // absorbs it and the epoch stays exact (a semantic no-op, counted as
  // harmless). Every flip that actually changes the participating set
  // or the ciphertext must fail verification.
  SiesFixture fx;
  Xoshiro256 rng(99);
  int attacks = 0, detected = 0, harmless = 0;
  for (int trial = 0; trial < 40; ++trial) {
    net::NodeId target = static_cast<net::NodeId>(
        rng.NextBelow(fx.network.topology().num_nodes()));
    net::BitFlipAdversary adv(target, rng.NextBelow(256));
    fx.network.SetAdversary(&adv);
    auto report = fx.network.RunEpoch(fx.protocol, 100 + trial);
    if (!report.ok()) {
      ++attacks;
      ++detected;  // malformed PSR rejected outright
      continue;
    }
    if (adv.tampered_count() == 0) continue;  // node idle this epoch
    ++attacks;
    if (!report.value().outcome.verified) {
      ++detected;
    } else if (report.value().coverage == 1.0 &&
               report.value().outcome.value ==
                   static_cast<double>(
                       Snapshot(fx.trace, 100 + trial).exact_sum)) {
      ++harmless;  // absorbed bitmap bit: result still exact + complete
    }
  }
  EXPECT_GT(attacks, 0);
  EXPECT_EQ(detected + harmless, attacks);
  fx.network.SetAdversary(nullptr);
}

TEST(SiesAttackTest, AuditTrailRecordsExactlyTheInjectedTampering) {
  // Re-run the randomized tamper sweep with the security audit trail
  // enabled: the trail must attribute precisely as many in-flight
  // mutations as the adversary actually performed — no phantom events,
  // no silently missed ones.
  SiesFixture fx;
  auto& audit = telemetry::AuditTrail::Global();
  audit.Reset();
  audit.Enable();
  Xoshiro256 rng(77);
  uint64_t injected = 0;
  for (int trial = 0; trial < 20; ++trial) {
    net::NodeId target = static_cast<net::NodeId>(
        rng.NextBelow(fx.network.topology().num_nodes()));
    net::BitFlipAdversary adv(target, rng.NextBelow(256));
    fx.network.SetAdversary(&adv);
    (void)fx.network.RunEpoch(fx.protocol, 200 + trial);
    injected += adv.tampered_count();
  }
  fx.network.SetAdversary(nullptr);
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(audit.CountOf(telemetry::AuditKind::kTamper), injected);
  audit.Disable();
  audit.Reset();
}

TEST(SiesLossTest, RadioLossYieldsVerifiedPartialsNeverWrongSums) {
  // A lossy radio with no out-of-band failure reporting: the bitmap is
  // the in-band report. Every answered epoch must verify over EXACTLY
  // the contributor set it declares — loss shows up as reduced
  // coverage, never as a wrong sum presented as complete.
  SiesFixture fx;
  ASSERT_TRUE(fx.network.SetLossRate(0.15, 33).ok());
  SourceIndexMap map(fx.network.topology());
  int lossy_epochs = 0, clean_epochs = 0;
  for (uint64_t epoch = 1; epoch <= 25; ++epoch) {
    auto report = fx.network.RunEpoch(fx.protocol, epoch);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const auto& r = report.value();
    if (!r.answered) continue;  // the final payload itself was lost
    EXPECT_TRUE(r.outcome.verified)
        << "loss misread as tampering at epoch " << epoch;
    uint64_t partial = 0;
    for (net::NodeId node : r.outcome.contributors) {
      partial += fx.trace.ValueAt(map.IndexOf(node).value(), epoch);
    }
    EXPECT_EQ(r.outcome.value, static_cast<double>(partial));
    if (r.coverage < 1.0) {
      ++lossy_epochs;
      EXPECT_LT(r.outcome.value,
                static_cast<double>(Snapshot(fx.trace, epoch).exact_sum));
    } else {
      ++clean_epochs;
      EXPECT_EQ(r.outcome.value,
                static_cast<double>(Snapshot(fx.trace, epoch).exact_sum));
    }
  }
  EXPECT_GT(lossy_epochs, 0) << "loss model produced no lossy epochs";
}

// The threat-model boundary (paper Section III-C): a compromised SOURCE
// can arbitrarily alter its own reading and the querier accepts the
// (shifted) result as correct — "our scheme, as well as all the
// approaches in the literature, cannot tackle this situation".
TEST(SiesCompromisedSourceTest, OwnReadingLieIsAcceptedAsCorrect) {
  SiesFixture fx;
  // Source index 2 is compromised: it reports 99999 instead of its true
  // reading. From the protocol's perspective this is a VALID PSR — the
  // source holds its own keys — so verification must pass.
  auto topology = fx.network.topology();
  core::Params params = fx.params;
  core::Source lying_source(params, 2,
                            core::KeysForSource(fx.keys, 2).value());
  // Emulate via the in-flight adversary replacing source 2's honest PSR
  // with one the compromised node signed itself.
  net::NodeId victim_node = topology.sources()[2];
  net::CallbackAdversary adv([&](net::Message& msg) {
    if (msg.from == victim_node) {
      msg.payload = lying_source.CreateWirePsr(99999, msg.epoch).value();
    }
    return true;
  });
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 9).value();
  EXPECT_TRUE(report.outcome.verified)
      << "a compromised source's own-value lie is undetectable by design";
  uint64_t honest_sum = Snapshot(fx.trace, 9).exact_sum;
  uint64_t honest_v2 = fx.trace.ValueAt(2, 9);
  EXPECT_EQ(report.outcome.value,
            static_cast<double>(honest_sum - honest_v2 + 99999));
}

// ...but the compromised source must NOT be able to break the rest of
// the system: it knows K (and thus K_t) yet still cannot decrypt an
// uncompromised source's PSR (Theorem 1's second scenario), nor forge a
// PSR on another source's behalf in a way the querier accepts twice.
TEST(SiesCompromisedSourceTest, CannotDecryptOtherSources) {
  SiesFixture fx;
  // The compromised party knows K_t and p, and sees source 5's PSR.
  core::Source honest(fx.params, 5, core::KeysForSource(fx.keys, 5).value());
  uint64_t secret_value = 3141;
  Bytes psr = honest.CreatePsr(secret_value, 1).value();
  auto c = core::ParsePsr(fx.params, psr).value();
  crypto::BigUint kt =
      core::DeriveEpochGlobalKey(fx.params, fx.keys.global_key, 1);
  // Without k_{5,1}, the best the adversary can do is guess it; every
  // guess yields a different "plaintext", so the PSR carries no
  // information. Spot-check: 100 random guesses never produce a
  // message whose value field matches the secret.
  Xoshiro256 rng(123);
  int hits = 0;
  for (int trial = 0; trial < 100; ++trial) {
    crypto::BigUint guess =
        crypto::BigUint::RandomBelow(fx.params.prime, rng);
    auto m = core::Decrypt(fx.params, c, kt, guess).value();
    auto unpacked = core::UnpackMessage(fx.params, m);
    if (unpacked.ok() && unpacked.value().sum == secret_value) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(SiesCompromisedSourceTest, CannotDoubleCountItself) {
  // A compromised source injects its PSR twice (once through a replayed
  // copy): the share sum then contains ss_{i,t} twice and verification
  // fails — a source cannot inflate its weight in the aggregate.
  SiesFixture fx;
  net::NodeId victim_node = fx.network.topology().sources()[2];
  size_t skip = core::WireBitmapBytes(fx.params);
  Bytes captured;
  net::CallbackAdversary adv([&](net::Message& msg) {
    if (msg.from == victim_node) {
      captured = Bytes(msg.payload.begin() + skip, msg.payload.end());
    }
    if (msg.to == net::kQuerierId && !captured.empty()) {
      Bytes body(msg.payload.begin() + skip, msg.payload.end());
      auto total = crypto::BigUint::FromBytes(body);
      auto extra = crypto::BigUint::FromBytes(captured);
      total =
          crypto::BigUint::ModAdd(total, extra, fx.params.prime).value();
      body = total.ToBytes(body.size()).value();
      std::copy(body.begin(), body.end(), msg.payload.begin() + skip);
    }
    return true;
  });
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 10).value();
  EXPECT_FALSE(report.outcome.verified);
}

// Negative control: an in-flight injection against CMT goes completely
// undetected at the network level — the weakness that motivates SIES.
TEST(CmtAttackTest, InjectionGoesUndetected) {
  uint32_t n = 16;
  auto topology = net::Topology::BuildCompleteTree(n, 4).value();
  net::Network network(topology);
  auto params = cmt::MakeParams(n, 5).value();
  auto keys = cmt::GenerateKeys(params, {5});
  workload::TraceConfig tc;
  tc.num_sources = n;
  tc.seed = 5;
  workload::TraceGenerator trace(tc);
  CmtProtocol protocol(params, keys, network.topology(),
                       [&](uint32_t index, uint64_t epoch) {
                         return trace.ValueAt(index, epoch);
                       });
  net::CallbackAdversary adv([&](net::Message& msg) {
    if (msg.to != net::kQuerierId) return true;
    auto c = crypto::BigUint::FromBytes(msg.payload);
    c = crypto::BigUint::ModAdd(c, crypto::BigUint(77777), params.modulus)
            .value();
    msg.payload = c.ToBytes(msg.payload.size()).value();
    return true;
  });
  network.SetAdversary(&adv);
  auto attacked = network.RunEpoch(protocol, 1).value();
  // CMT "verifies" everything: the falsified sum is reported as correct.
  EXPECT_TRUE(attacked.outcome.verified);
  EXPECT_EQ(attacked.outcome.value,
            static_cast<double>(Snapshot(trace, 1).exact_sum + 77777));
}

// The same replay attack SIES detects leaves the CMT querier with no
// verdict at all: decryption either silently yields garbage or fails as
// malformed, and nothing distinguishes attack from honest traffic.
TEST(CmtAttackTest, ReplayYieldsNoDetectionSignal) {
  uint32_t n = 16;
  auto topology = net::Topology::BuildCompleteTree(n, 4).value();
  net::Network network(topology);
  auto params = cmt::MakeParams(n, 5).value();
  auto keys = cmt::GenerateKeys(params, {5});
  workload::TraceConfig tc;
  tc.num_sources = n;
  tc.seed = 5;
  workload::TraceGenerator trace(tc);
  CmtProtocol protocol(params, keys, network.topology(),
                       [&](uint32_t index, uint64_t epoch) {
                         return trace.ValueAt(index, epoch);
                       });
  net::ReplayAdversary adv(1);
  network.SetAdversary(&adv);
  auto first = network.RunEpoch(protocol, 1).value();
  EXPECT_EQ(first.outcome.value,
            static_cast<double>(Snapshot(trace, 1).exact_sum));
  auto replayed = network.RunEpoch(protocol, 2);
  EXPECT_GT(adv.replayed_count(), 0u);
  if (replayed.ok()) {
    // Garbage decrypted "successfully": reported verified, wrong value.
    EXPECT_TRUE(replayed.value().outcome.verified);
    EXPECT_NE(replayed.value().outcome.value,
              static_cast<double>(Snapshot(trace, 2).exact_sum));
  }
  // (else: the 160-bit garbage did not fit 64 bits — still no integrity
  // verdict, just a decode failure indistinguishable from corruption.)
}

TEST(MuTeslaIntegrationTest, QueryDisseminationAuthenticated) {
  // The querier broadcasts the continuous query via μTesla before the
  // aggregation starts (paper setup phase); sources verify origin.
  Bytes seed = {9, 9, 9};
  auto broadcaster =
      mutesla::Broadcaster::Create(seed, /*chain_length=*/10,
                                   /*disclosure_delay=*/1)
          .value();
  core::Query query;
  query.aggregate = core::Aggregate::kSum;
  std::string sql = query.ToSql();
  Bytes query_bytes(sql.begin(), sql.end());
  auto packet = broadcaster.Broadcast(1, query_bytes).value();

  // 16 sources each verify independently.
  for (int s = 0; s < 16; ++s) {
    mutesla::Receiver receiver(broadcaster.commitment(), 1);
    ASSERT_TRUE(receiver.Accept(packet, 1).ok());
    auto payloads =
        receiver.OnDisclosure(broadcaster.Disclose(1).value()).value();
    ASSERT_EQ(payloads.size(), 1u);
    EXPECT_EQ(payloads[0], query_bytes);
  }

  // An impersonator without the chain key cannot produce a packet that
  // any source accepts.
  mutesla::BroadcastPacket forged = packet;
  forged.payload = Bytes{'e', 'v', 'i', 'l'};
  mutesla::Receiver receiver(broadcaster.commitment(), 1);
  ASSERT_TRUE(receiver.Accept(forged, 1).ok());
  auto payloads =
      receiver.OnDisclosure(broadcaster.Disclose(1).value()).value();
  EXPECT_TRUE(payloads.empty());
}

}  // namespace
}  // namespace sies::runner
