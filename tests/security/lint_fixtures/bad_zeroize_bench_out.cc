// Lint fixture: the bench-harness shape the widened scan roots caught
// in bench/ — a derived-digest output buffer that is timed and then
// dropped without a wipe. Must be flagged by the zeroize rule (real
// benchmarks over throwaway randomness suppress it with a justified
// lint:allow, as bench/batched_crypto.cc does).
#include <cstdint>
#include <vector>

#include "crypto/sha256x8.h"

namespace sies {

double TimeBatchNoWipe(const crypto::ByteView* key_views, size_t pairs,
                       uint64_t epoch) {
  std::vector<uint8_t> out(32 * pairs);
  // BAD: `out` receives key-derived digests and goes out of scope
  // unwiped.
  crypto::EpochPrfSha256Batch(pairs, key_views, epoch, out.data());
  return static_cast<double>(out[0]);
}

}  // namespace sies
