// Lint fixture: verification material compared with early-exit operators.
// Both sites below must be flagged by the ct-compare rule.
#include <cstring>

#include "common/bytes.h"

namespace sies {

bool VerifyTagMemcmp(const Bytes& mac, const Bytes& expected_mac) {
  // BAD: memcmp exits at the first differing byte -> timing oracle.
  return std::memcmp(mac.data(), expected_mac.data(), mac.size()) == 0;
}

bool VerifyDigestOperator(const Bytes& digest, const Bytes& wire_digest) {
  // BAD: Bytes::operator== exits at the first differing byte.
  return digest == wire_digest;
}

}  // namespace sies
