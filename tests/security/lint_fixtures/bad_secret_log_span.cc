// Lint fixture: key-material identifier flowing into a trace span.
// Span names/labels land verbatim in the exported Chrome trace, so this
// must trip the secret-log rule.
#include <cstdint>

#include "common/bytes.h"
#include "telemetry/trace.h"

namespace sies {

void TraceDerivationLeaky(const Bytes& source_key, uint64_t epoch) {
  // BAD: the span label is built from the source key.
  telemetry::ScopedSpan span(ToHex(source_key), "querier", epoch);
}

}  // namespace sies
