// Lint fixture: key-derivation output never zeroized.
// The declaration below must be flagged by the zeroize rule.
#include "common/bytes.h"
#include "crypto/hmac.h"

namespace sies {

uint64_t LeakyDerive(const Bytes& master, const Bytes& label) {
  // BAD: mac_key holds HMAC output (key material) and goes out of scope
  // without SecureWipe; the heap page keeps the bytes.
  Bytes mac_key = crypto::HmacSha256(master, label);
  return mac_key.size();
}

}  // namespace sies
