// Lint fixture: the second bench-harness shape from the widened scan
// roots — a batched digest cross-checked against the scalar reference
// with memcmp. Must be flagged by the ct-compare rule; a benchmark
// comparing throwaway digests suppresses it with a justified
// lint:allow.
#include <cstring>

#include "common/bytes.h"

namespace sies {

bool SpotCheckBatchDigest(const Bytes& reference, const uint8_t* batched) {
  // BAD: early-exit compare of digest material.
  return std::memcmp(reference.data(), batched, reference.size()) == 0;
}

}  // namespace sies
