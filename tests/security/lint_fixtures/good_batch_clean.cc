// Lint fixture: the sanctioned batch-kernel pattern — derive into a
// local staging buffer, consume, SecureZero before scope exit; spans
// carry phase names and epochs only. Must be clean.
#include <cstdint>
#include <cstring>

#include "common/bytes.h"
#include "common/secure.h"
#include "crypto/sha256x8.h"
#include "telemetry/trace.h"

namespace sies {

uint64_t DeriveBatchClean(const crypto::ByteView* key_views, size_t n,
                          uint64_t epoch) {
  // GOOD: span label is a phase name, never key bytes.
  telemetry::ScopedSpan span("share-recompute", "fixture", epoch);
  uint8_t digests[32 * 64];
  crypto::EpochPrfSha256Batch(n, key_views, epoch, digests);
  uint64_t acc = 0;
  for (size_t i = 0; i < 32 * n; ++i) acc += digests[i];
  // GOOD: the staging buffer is wiped once the derived keys are
  // consumed.
  common::SecureZero(digests, sizeof(digests));
  return acc;
}

}  // namespace sies
