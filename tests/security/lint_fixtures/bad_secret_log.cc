// Lint fixture: key material flowing into log/telemetry sinks.
// Both sites below must be flagged by the secret-log rule.
#include "common/bytes.h"
#include "common/logging.h"

namespace sies {

void DebugDumpKey(const Bytes& epoch_key, int epoch) {
  // BAD: one-time key bytes reach stderr.
  SIES_LOG(kDebug) << "epoch " << epoch << " key=" << ToHex(epoch_key);
}

void AuditWithSecret(const Bytes& source_key) {
  // BAD: key-material identifier in an audit-trail record.
  trail.Record(kind, epoch, node, ToHex(source_key));
}

}  // namespace sies
