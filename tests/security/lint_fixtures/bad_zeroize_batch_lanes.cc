// Lint fixture: a local staging buffer receives the 8-lane batch
// kernel's digests (eight derived epoch keys at once) and is never
// wiped. Must trip the zeroize rule.
#include <cstdint>

#include "crypto/sha256x8.h"

namespace sies {

void DeriveBatchLeaky(const crypto::ByteView* keys, size_t n,
                      uint64_t epoch) {
  uint8_t digests[32 * 64];
  crypto::EpochPrfSha256Batch(n, keys, epoch, digests);
  // BAD: digests holds n derived keys but is never SecureZero'd; the
  // stack frame leaks epoch-key material to the next callee.
}

}  // namespace sies
