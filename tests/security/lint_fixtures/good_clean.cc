// Lint fixture: the sanctioned patterns for each rule. Must be clean.
#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"
#include "crypto/hmac.h"
#include "crypto/secure_bytes.h"

namespace sies {

bool VerifyTag(const Bytes& mac, const Bytes& expected_mac) {
  // GOOD: constant-time comparison.
  return ConstantTimeEqual(mac, expected_mac);
}

bool CheckMagic(const Bytes& blob) {
  // GOOD: record-type magic is public framing, not secret material.
  // lint:allow(ct-compare)
  return std::memcmp(blob.data(), "SIES", 4) == 0;
}

void LogVerdict(bool verified, int epoch) {
  // GOOD: log the verdict and public metadata, never key bytes.
  SIES_LOG(kInfo) << "epoch " << epoch << " verified=" << verified;
}

uint64_t TidyDerive(const Bytes& master, const Bytes& label) {
  // GOOD: derivation output owned by SecureBytes (wipes on destruction).
  crypto::SecureBytes mac_key(crypto::HmacSha256(master, label));
  return mac_key.size();
}

uint64_t ManualWipeDerive(const Bytes& master, const Bytes& label) {
  // GOOD: explicit wipe before scope exit.
  Bytes share_key = crypto::HmacSha256(master, label);
  uint64_t n = share_key.size();
  SecureWipe(share_key);
  return n;
}

}  // namespace sies
