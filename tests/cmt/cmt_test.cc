#include "cmt/cmt.h"

#include <gtest/gtest.h>

#include <numeric>

namespace sies::cmt {
namespace {

class CmtTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 8;

  CmtTest()
      : params_(MakeParams(kN, /*seed=*/5).value()),
        keys_(GenerateKeys(params_, {1, 2, 3})),
        aggregator_(params_),
        querier_(params_, keys_) {
    for (uint32_t i = 0; i < kN; ++i) {
      sources_.emplace_back(params_, keys_.source_keys[i]);
    }
    all_.resize(kN);
    std::iota(all_.begin(), all_.end(), 0u);
  }

  Params params_;
  QuerierKeys keys_;
  std::vector<Source> sources_;
  Aggregator aggregator_;
  Querier querier_;
  std::vector<uint32_t> all_;
};

TEST_F(CmtTest, ParamsShape) {
  EXPECT_EQ(params_.CiphertextBytes(), 20u);  // the paper's 20-byte edge
  EXPECT_EQ(params_.modulus.BitLength(), 160u);
}

TEST_F(CmtTest, MakeParamsValidation) {
  EXPECT_FALSE(MakeParams(0, 1).ok());
  EXPECT_FALSE(MakeParams(8, 1, /*modulus_bits=*/64).ok());
}

TEST_F(CmtTest, EncryptDecryptSingle) {
  Bytes c = sources_[0].CreateCiphertext(1234, 7).value();
  EXPECT_EQ(c.size(), 20u);
  EXPECT_EQ(querier_.Decrypt(c, 7, {0}).value(), 1234u);
}

TEST_F(CmtTest, AggregateSumExact) {
  std::vector<uint64_t> values = {1800, 5000, 0, 3141, 2718, 999, 1, 4242};
  uint64_t expected = std::accumulate(values.begin(), values.end(), 0ull);
  std::vector<Bytes> cts;
  for (uint32_t i = 0; i < kN; ++i) {
    cts.push_back(sources_[i].CreateCiphertext(values[i], 3).value());
  }
  Bytes merged = aggregator_.Merge(cts).value();
  EXPECT_EQ(querier_.Decrypt(merged, 3, all_).value(), expected);
}

TEST_F(CmtTest, EpochKeysRotate) {
  Bytes c1 = sources_[0].CreateCiphertext(100, 1).value();
  Bytes c2 = sources_[0].CreateCiphertext(100, 2).value();
  EXPECT_NE(c1, c2) << "same value must encrypt differently across epochs";
  // Decrypting with the wrong epoch gives garbage: either a wrong value,
  // or a 160-bit residue that does not even fit the 64-bit result.
  auto wrong = querier_.Decrypt(c1, 2, {0});
  if (wrong.ok()) EXPECT_NE(wrong.value(), 100u);
}

TEST_F(CmtTest, MergeAssociative) {
  std::vector<Bytes> cts;
  for (uint32_t i = 0; i < 4; ++i) {
    cts.push_back(sources_[i].CreateCiphertext(10 * (i + 1), 1).value());
  }
  Bytes ab = aggregator_.Merge({cts[0], cts[1]}).value();
  Bytes cd = aggregator_.Merge({cts[2], cts[3]}).value();
  Bytes pairwise = aggregator_.Merge({ab, cd}).value();
  Bytes flat = aggregator_.Merge(cts).value();
  EXPECT_EQ(pairwise, flat);
}

TEST_F(CmtTest, PartialParticipation) {
  Bytes c0 = sources_[0].CreateCiphertext(111, 9).value();
  Bytes c3 = sources_[3].CreateCiphertext(222, 9).value();
  Bytes merged = aggregator_.Merge({c0, c3}).value();
  EXPECT_EQ(querier_.Decrypt(merged, 9, {0, 3}).value(), 333u);
}

TEST_F(CmtTest, InputValidation) {
  EXPECT_FALSE(aggregator_.Merge({}).ok());
  EXPECT_FALSE(aggregator_.Merge({Bytes{1, 2}}).ok());
  EXPECT_FALSE(querier_.Decrypt(Bytes{1, 2}, 1, {0}).ok());
  EXPECT_FALSE(querier_.Decrypt(Bytes(20, 0), 1, {kN}).ok());
}

TEST_F(CmtTest, ValueMustBeBelowModulus) {
  // values are tiny vs the 160-bit modulus; but the API must reject >= n.
  // (Construct an impossible value via the modulus itself.)
  EXPECT_TRUE(sources_[0].CreateCiphertext(UINT64_MAX, 1).ok());
}

// The documented weakness (paper Section II-D): injection of an arbitrary
// v' into the aggregate is accepted as a correct result.
TEST_F(CmtTest, InjectionAttackSucceedsUndetected) {
  std::vector<Bytes> cts;
  uint64_t honest_sum = 0;
  for (uint32_t i = 0; i < kN; ++i) {
    cts.push_back(sources_[i].CreateCiphertext(1000 + i, 4).value());
    honest_sum += 1000 + i;
  }
  Bytes merged = aggregator_.Merge(cts).value();
  // Adversary adds v' = 77777 homomorphically: c += v' mod n.
  crypto::BigUint c = crypto::BigUint::FromBytes(merged);
  c = crypto::BigUint::ModAdd(c, crypto::BigUint(77777), params_.modulus)
          .value();
  Bytes attacked = c.ToBytes(params_.CiphertextBytes()).value();
  // The querier happily decrypts the falsified sum: CMT has no integrity.
  EXPECT_EQ(querier_.Decrypt(attacked, 4, all_).value(),
            honest_sum + 77777);
}

TEST_F(CmtTest, DroppedContributionUndetected) {
  // A compromised aggregator drops source 5's ciphertext; the querier
  // still "successfully" decrypts — it just subtracts too many keys and
  // returns a wrong value with no error signal. (SIES detects this.)
  std::vector<Bytes> cts;
  for (uint32_t i = 0; i < kN; ++i) {
    if (i == 5) continue;
    cts.push_back(sources_[i].CreateCiphertext(100, 6).value());
  }
  Bytes merged = aggregator_.Merge(cts).value();
  auto result = querier_.Decrypt(merged, 6, all_);
  // No detection: either a wrong value decodes, or the subtraction
  // wrapped mod n producing a huge value that fails the 64-bit cast.
  if (result.ok()) {
    EXPECT_NE(result.value(), 100u * kN);
  }
}

class CmtRandomizedSweep : public ::testing::TestWithParam<int> {};

TEST_P(CmtRandomizedSweep, RandomSumsExact) {
  Xoshiro256 rng(GetParam());
  uint32_t n = 1 + static_cast<uint32_t>(rng.NextBelow(16));
  auto params = MakeParams(n, GetParam()).value();
  auto keys = GenerateKeys(params, EncodeUint64(GetParam()));
  Aggregator agg(params);
  Querier querier(params, keys);
  uint64_t epoch = rng.NextBelow(100);
  uint64_t expected = 0;
  std::vector<Bytes> cts;
  std::vector<uint32_t> all(n);
  std::iota(all.begin(), all.end(), 0u);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t v = rng.NextBelow(1u << 20);
    expected += v;
    Source src(params, keys.source_keys[i]);
    cts.push_back(src.CreateCiphertext(v, epoch).value());
  }
  EXPECT_EQ(querier.Decrypt(agg.Merge(cts).value(), epoch, all).value(),
            expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmtRandomizedSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace sies::cmt
