#include "sketch/ams_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sies::sketch {
namespace {

TEST(UnitLevelTest, DeterministicAndSeedSeparated) {
  EXPECT_EQ(UnitLevel(1, 2, 3), UnitLevel(1, 2, 3));
  // Different seeds give (almost surely) some differing level across units.
  bool any_diff = false;
  for (uint64_t u = 0; u < 100; ++u) {
    if (UnitLevel(1, 2, u) != UnitLevel(9, 2, u)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(UnitLevelTest, GeometricDistribution) {
  // P[level >= 1] should be ~1/2, P[level >= 2] ~1/4, etc.
  constexpr int kDraws = 100000;
  int ge1 = 0, ge2 = 0, ge3 = 0;
  for (int i = 0; i < kDraws; ++i) {
    uint8_t level = UnitLevel(0xabc, 1, static_cast<uint64_t>(i));
    if (level >= 1) ++ge1;
    if (level >= 2) ++ge2;
    if (level >= 3) ++ge3;
  }
  EXPECT_NEAR(ge1 / double(kDraws), 0.5, 0.01);
  EXPECT_NEAR(ge2 / double(kDraws), 0.25, 0.01);
  EXPECT_NEAR(ge3 / double(kDraws), 0.125, 0.01);
}

TEST(SketchInstanceTest, ObserveKeepsMax) {
  SketchInstance inst;
  inst.Observe(3);
  inst.Observe(1);
  EXPECT_EQ(inst.max_level, 3);
  inst.Observe(7);
  EXPECT_EQ(inst.max_level, 7);
}

TEST(SketchInstanceTest, MergeIsMaxIdempotentCommutative) {
  SketchInstance a{5}, b{9};
  EXPECT_EQ(SketchInstance::Merge(a, b).max_level, 9);
  EXPECT_EQ(SketchInstance::Merge(b, a).max_level, 9);
  EXPECT_EQ(SketchInstance::Merge(a, a).max_level, 5);
}

TEST(SketchSetTest, EmptyEstimatesOne) {
  SketchSet set(16, 1);
  // All levels 0 -> 2^0 = 1 (the sketch's floor; SUM=0 handled by caller).
  EXPECT_DOUBLE_EQ(set.Estimate(), 1.0);
  EXPECT_EQ(set.MaxValue(), 0);
}

TEST(SketchSetTest, MergeRequiresSameJ) {
  SketchSet a(8, 1), b(16, 1);
  EXPECT_FALSE(a.MergeFrom(b).ok());
  SketchSet c(8, 1);
  EXPECT_TRUE(a.MergeFrom(c).ok());
}

TEST(SketchSetTest, MergeEqualsJointInsertion) {
  // Inserting sources separately and merging must equal inserting all
  // into one set: the property that makes in-network aggregation valid.
  SketchSet joint(32, 99);
  SketchSet part1(32, 99), part2(32, 99);
  joint.InsertValue(/*source=*/1, 500);
  joint.InsertValue(/*source=*/2, 700);
  part1.InsertValue(1, 500);
  part2.InsertValue(2, 700);
  ASSERT_TRUE(part1.MergeFrom(part2).ok());
  for (uint32_t j = 0; j < 32; ++j) {
    EXPECT_EQ(part1.instances()[j].max_level,
              joint.instances()[j].max_level);
  }
}

TEST(SketchSetTest, EstimateGrowsWithSum) {
  SketchSet small(64, 5), large(64, 5);
  small.InsertValue(1, 100);
  large.InsertValue(1, 100000);
  EXPECT_GT(large.Estimate(), small.Estimate());
}

TEST(SketchSetTest, EstimateWithinPaperErrorBound) {
  // With J=300 the paper bounds relative error within ~10% w.p. 90%.
  // 2^x̄ is biased; allow a loose factor-2 envelope here and measure the
  // corrected estimator's accuracy separately below.
  SketchSet set(300, 7);
  uint64_t total = 0;
  Xoshiro256 rng(3);
  for (uint64_t src = 0; src < 64; ++src) {
    uint64_t v = rng.NextInRange(1800, 5000);
    set.InsertValue(src, v);
    total += v;
  }
  double est = set.Estimate();
  EXPECT_GT(est, total / 3.0);
  EXPECT_LT(est, total * 3.0);
}

TEST(SketchSetTest, CorrectedEstimatorScalesAcrossMagnitudes) {
  for (uint64_t truth : {1000ull, 10000ull, 100000ull}) {
    SketchSet set(300, 11);
    set.InsertValue(1, truth);
    double est = set.EstimateCorrected();
    EXPECT_GT(est, truth / 3.0) << truth;
    EXPECT_LT(est, truth * 3.0) << truth;
  }
}

TEST(SketchSetTest, MaxValueBoundedByLogSum) {
  // x is a max over total-units geometric draws; values exceeding
  // log2(total) + slack are astronomically unlikely.
  SketchSet set(300, 13);
  uint64_t total = 0;
  for (uint64_t src = 0; src < 16; ++src) {
    set.InsertValue(src, 3000);
    total += 3000;
  }
  double bound = std::log2(static_cast<double>(total));
  EXPECT_LE(set.MaxValue(), bound + 16);
  EXPECT_GE(set.MaxValue(), bound - 16);
}

TEST(SketchSetTest, InsertZeroIsNoOp) {
  SketchSet set(8, 1);
  set.InsertValue(1, 0);
  EXPECT_EQ(set.MaxValue(), 0);
  EXPECT_DOUBLE_EQ(set.Estimate(), 1.0);
}

class SketchAccuracySweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SketchAccuracySweep, MoreInstancesTightenTheEstimate) {
  uint32_t j = GetParam();
  constexpr uint64_t kTruth = 50000;
  // Average absolute log-error over several trials.
  double log_err_sum = 0;
  constexpr int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    SketchSet set(j, 1000 + trial);
    set.InsertValue(1, kTruth);
    log_err_sum += std::abs(std::log2(set.EstimateCorrected() / kTruth));
  }
  double mean_log_err = log_err_sum / kTrials;
  // J >= 100 should land within one octave on average.
  if (j >= 100) EXPECT_LT(mean_log_err, 1.0) << "J=" << j;
  // Any J should land within three octaves.
  EXPECT_LT(mean_log_err, 3.0) << "J=" << j;
}

INSTANTIATE_TEST_SUITE_P(Js, SketchAccuracySweep,
                         ::testing::Values(10, 50, 100, 300, 600));

}  // namespace
}  // namespace sies::sketch
