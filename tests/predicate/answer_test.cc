// Answer shapes: equal-width partitions, histogram / GROUP-BY cell
// compilation, outcome assembly, quantiles, and the AMS approximate
// band aggregate.
#include "predicate/answer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "predicate/compiler.h"

namespace sies::predicate {
namespace {

TEST(PartitionTest, EqualWidthCellsTileTheScaledRange) {
  auto cells = PartitionBands(20.0, 30.0, 8, 2);
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  ASSERT_EQ(cells.value().size(), 8u);
  EXPECT_EQ(cells.value().front().scaled_lo, 2000u);
  EXPECT_EQ(cells.value().back().scaled_hi, 3000u);
  uint64_t cursor = 2000;
  uint64_t min_width = UINT64_MAX, max_width = 0;
  for (const CellBounds& cell : cells.value()) {
    EXPECT_EQ(cell.scaled_lo, cursor);
    const uint64_t width = cell.scaled_hi - cell.scaled_lo + 1;
    min_width = std::min(min_width, width);
    max_width = std::max(max_width, width);
    cursor = cell.scaled_hi + 1;
  }
  EXPECT_EQ(cursor, 3001u);
  EXPECT_LE(max_width - min_width, 1u) << "widths differ by more than one";
}

TEST(PartitionTest, AttributeBoundsRoundTripToScaledBounds) {
  // The double cell bounds must re-quantize to exactly the scaled
  // integers they came from — otherwise a cell query would cover a
  // different range than the partition reports.
  auto cells = PartitionBands(18.0, 49.99, 7, 2);
  ASSERT_TRUE(cells.ok());
  for (const CellBounds& cell : cells.value()) {
    auto lo = core::ScaledBandBound(cell.lo, 2);
    auto hi = core::ScaledBandBound(cell.hi, 2);
    ASSERT_TRUE(lo.ok());
    ASSERT_TRUE(hi.ok());
    EXPECT_EQ(lo.value(), cell.scaled_lo);
    EXPECT_EQ(hi.value(), cell.scaled_hi);
  }
}

TEST(PartitionTest, ErrorPaths) {
  EXPECT_FALSE(PartitionBands(20.0, 30.0, 0, 2).ok());
  auto inverted = PartitionBands(30.0, 20.0, 4, 2);
  ASSERT_FALSE(inverted.ok());
  EXPECT_NE(inverted.status().message().find("inverted"),
            std::string::npos);
  // [20.00, 20.02] at scale 2 holds three integers; five cells cannot.
  EXPECT_FALSE(PartitionBands(20.0, 20.02, 5, 2).ok());
}

TEST(HistogramTest, CompilesCellQueriesWithConsecutiveIds) {
  HistogramSpec spec;
  spec.field = core::Field::kHumidity;
  spec.lo = 30.0;
  spec.hi = 60.0;
  spec.buckets = 4;
  auto queries = CompileHistogram(spec, /*first_query_id=*/10);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries.value().size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    const core::Query& q = queries.value()[i];
    EXPECT_EQ(q.query_id, 10u + i);
    EXPECT_EQ(q.aggregate, core::Aggregate::kCount);
    ASSERT_TRUE(q.band.has_value());
    EXPECT_EQ(q.band->field, core::Field::kHumidity);
  }
  // Adjacent cells: each cell's band starts right after the previous
  // one on the scaled domain.
  auto b0 = QuantizeBand(*queries.value()[0].band, spec.scale_pow10);
  auto b1 = QuantizeBand(*queries.value()[1].band, spec.scale_pow10);
  ASSERT_TRUE(b0.ok());
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1.value().lo, b0.value().hi + 1);
}

TEST(HistogramTest, RejectsDerivedAggregates) {
  HistogramSpec spec;
  spec.lo = 20.0;
  spec.hi = 30.0;
  spec.aggregate = core::Aggregate::kAvg;
  EXPECT_FALSE(CompileHistogram(spec, 0).ok());
}

TEST(HistogramTest, RejectsIdOverflow) {
  HistogramSpec spec;
  spec.lo = 20.0;
  spec.hi = 30.0;
  spec.buckets = 8;
  EXPECT_FALSE(CompileHistogram(spec, engine::kMaxQueryId - 2).ok());
}

TEST(GroupByTest, CompilesRollupCells) {
  GroupBySpec spec;
  spec.aggregate = core::Aggregate::kAvg;
  spec.attribute = core::Field::kTemperature;
  spec.group_field = core::Field::kHumidity;
  spec.lo = 30.0;
  spec.hi = 60.0;
  spec.groups = 3;
  auto queries = CompileGroupBy(spec, 0);
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries.value().size(), 3u);
  for (const core::Query& q : queries.value()) {
    EXPECT_EQ(q.aggregate, core::Aggregate::kAvg);
    EXPECT_EQ(q.attribute, core::Field::kTemperature);
    ASSERT_TRUE(q.band.has_value());
    EXPECT_EQ(q.band->field, core::Field::kHumidity);
  }
}

std::vector<core::EpochOutcome> MakeOutcomes(
    const std::vector<uint64_t>& counts) {
  std::vector<core::EpochOutcome> outcomes;
  for (uint64_t count : counts) {
    core::EpochOutcome o;
    o.result.count = count;
    o.result.value = static_cast<double>(count);
    o.verified = true;
    o.coverage = 1.0;
    outcomes.push_back(o);
  }
  return outcomes;
}

TEST(AssembleTest, CellsCarryBoundsValuesAndCounts) {
  auto shape = AssembleCells(0.0, 0.39, 4, 2, MakeOutcomes({1, 2, 3, 4}));
  ASSERT_TRUE(shape.ok()) << shape.status().ToString();
  EXPECT_TRUE(shape.value().all_verified);
  EXPECT_EQ(shape.value().total_count, 10u);
  ASSERT_EQ(shape.value().cells.size(), 4u);
  EXPECT_EQ(shape.value().cells[2].count, 3u);
}

TEST(AssembleTest, UnverifiedCellPoisonsAllVerified) {
  auto outcomes = MakeOutcomes({1, 2, 3, 4});
  outcomes[1].verified = false;
  auto shape = AssembleCells(0.0, 0.39, 4, 2, outcomes);
  ASSERT_TRUE(shape.ok());
  EXPECT_FALSE(shape.value().all_verified);
  EXPECT_FALSE(shape.value().Quantile(0.5).ok());
}

TEST(AssembleTest, RejectsMismatchedOutcomeCount) {
  EXPECT_FALSE(AssembleCells(0.0, 0.39, 4, 2, MakeOutcomes({1, 2})).ok());
}

TEST(QuantileTest, InterpolatesInsideCells) {
  // Cells [0.00, 0.09], [0.10, 0.19], ... with counts 0, 10, 0, 10:
  // ranks 1-10 land in cell 1, ranks 11-20 in cell 3.
  auto shape = AssembleCells(0.0, 0.39, 4, 2, MakeOutcomes({0, 10, 0, 10}));
  ASSERT_TRUE(shape.ok());
  auto p25 = shape.value().Quantile(0.25);
  auto p75 = shape.value().Quantile(0.75);
  ASSERT_TRUE(p25.ok());
  ASSERT_TRUE(p75.ok());
  EXPECT_GE(p25.value(), 0.10);
  EXPECT_LE(p25.value(), 0.19);
  EXPECT_GE(p75.value(), 0.30);
  EXPECT_LE(p75.value(), 0.39);
  // Monotonic, and the extremes stay inside the partitioned range.
  auto p0 = shape.value().Quantile(0.0);
  auto p100 = shape.value().Quantile(1.0);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p100.ok());
  EXPECT_LE(p0.value(), p25.value());
  EXPECT_LE(p25.value(), p75.value());
  EXPECT_LE(p75.value(), p100.value());
}

TEST(QuantileTest, ErrorPaths) {
  auto shape = AssembleCells(0.0, 0.39, 4, 2, MakeOutcomes({1, 1, 1, 1}));
  ASSERT_TRUE(shape.ok());
  EXPECT_FALSE(shape.value().Quantile(-0.1).ok());
  EXPECT_FALSE(shape.value().Quantile(1.1).ok());
  auto empty = AssembleCells(0.0, 0.39, 4, 2, MakeOutcomes({0, 0, 0, 0}));
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().Quantile(0.5).ok());
}

TEST(ApproxTest, SketchEstimatesBandCount) {
  // 256 readings, half inside the band: the debiased AMS estimate must
  // land within a loose factor of the exact count.
  std::vector<core::SensorReading> readings(256);
  for (size_t i = 0; i < readings.size(); ++i) {
    readings[i].temperature = (i % 2 == 0) ? 25.0 : 45.0;
  }
  core::Band band;
  band.field = core::Field::kTemperature;
  band.lo = 20.0;
  band.hi = 30.0;
  auto estimate = ApproxBandAggregate(band, 2, readings, /*j=*/256,
                                      /*seed=*/17);
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  EXPECT_GT(estimate.value(), 128.0 * 0.5);
  EXPECT_LT(estimate.value(), 128.0 * 2.0);
}

TEST(ApproxTest, RejectsZeroInstancesAndInvertedBands) {
  std::vector<core::SensorReading> readings(4);
  core::Band band;
  band.field = core::Field::kTemperature;
  band.lo = 20.0;
  band.hi = 30.0;
  EXPECT_FALSE(ApproxBandAggregate(band, 2, readings, 0, 17).ok());
  band.lo = 31.0;
  EXPECT_FALSE(ApproxBandAggregate(band, 2, readings, 16, 17).ok());
}

}  // namespace
}  // namespace sies::predicate
