// Predicate compiler: plain queries keep their canonical channels,
// band queries compile to bucketed specs bounded by the dyadic
// channel-cost ceiling, and invalid bands fail with distinct messages.
#include "predicate/compiler.h"

#include <gtest/gtest.h>

#include "predicate/dyadic.h"
#include "sies/query.h"

namespace sies::predicate {
namespace {

core::Query PlainQuery(core::Aggregate aggregate) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = core::Field::kTemperature;
  q.scale_pow10 = 2;
  q.query_id = 3;
  return q;
}

core::Query BandQuery(core::Aggregate aggregate, double lo, double hi,
                      core::Field field = core::Field::kTemperature) {
  core::Query q = PlainQuery(aggregate);
  core::Band band;
  band.field = field;
  band.lo = lo;
  band.hi = hi;
  q.band = band;
  return q;
}

TEST(CompilerTest, PlainQueryCompilesToCanonicalChannels) {
  for (auto aggregate :
       {core::Aggregate::kSum, core::Aggregate::kCount, core::Aggregate::kAvg,
        core::Aggregate::kVariance}) {
    auto specs = CompileChannelSpecs(PlainQuery(aggregate));
    ASSERT_TRUE(specs.ok());
    EXPECT_EQ(specs.value().size(), core::ChannelCount(aggregate));
    for (const engine::ChannelSpec& spec : specs.value()) {
      EXPECT_FALSE(spec.bucket.has_value());
    }
  }
}

TEST(CompilerTest, BandQueryCompilesToDyadicBuckets) {
  core::Query q = BandQuery(core::Aggregate::kSum, 20.0, 30.0);
  auto scaled = QuantizeBand(*q.band, q.scale_pow10);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled.value().lo, 2000u);
  EXPECT_EQ(scaled.value().hi, 3000u);
  auto cover = DyadicDecompose(scaled.value().lo, scaled.value().hi);
  ASSERT_TRUE(cover.ok());

  auto specs = CompileChannelSpecs(q);
  ASSERT_TRUE(specs.ok());
  // One SUM spec per cover interval, in ascending interval order.
  ASSERT_EQ(specs.value().size(), cover.value().size());
  for (size_t i = 0; i < specs.value().size(); ++i) {
    const engine::ChannelSpec& spec = specs.value()[i];
    EXPECT_EQ(spec.kind, core::Channel::kSum);
    ASSERT_TRUE(spec.bucket.has_value());
    EXPECT_EQ(spec.bucket->field, core::Field::kTemperature);
    EXPECT_EQ(spec.bucket->scale_pow10, 2u);
    EXPECT_EQ(spec.bucket->interval, cover.value()[i]);
  }
}

TEST(CompilerTest, BandAvgCompilesBucketsPerKind) {
  core::Query q = BandQuery(core::Aggregate::kAvg, 20.0, 30.0);
  auto cover = DyadicDecompose(2000, 3000);
  ASSERT_TRUE(cover.ok());
  auto specs = CompileChannelSpecs(q);
  ASSERT_TRUE(specs.ok());
  // AVG reads SUM + COUNT: two kinds, each with the full cover.
  EXPECT_EQ(specs.value().size(), 2 * cover.value().size());
}

TEST(CompilerTest, ChannelCostStaysWithinCeiling) {
  for (double hi : {20.01, 21.0, 25.5, 30.0, 49.99}) {
    core::Query q = BandQuery(core::Aggregate::kAvg, 20.0, hi);
    auto specs = CompileChannelSpecs(q);
    ASSERT_TRUE(specs.ok());
    EXPECT_LE(specs.value().size(), MaxChannelsFor(q))
        << "band [20, " << hi << "]";
    // The acceptance bound: per kind, at most 2 * ceil(log2 D).
    auto scaled = QuantizeBand(*q.band, q.scale_pow10);
    ASSERT_TRUE(scaled.ok());
    const uint64_t domain = scaled.value().hi - scaled.value().lo + 1;
    EXPECT_LE(specs.value().size() / core::ChannelCount(q.aggregate),
              MaxIntervalsForDomain(domain));
  }
}

TEST(CompilerTest, InvertedBandIsDistinctError) {
  core::Query q = BandQuery(core::Aggregate::kSum, 30.0, 20.0);
  auto specs = CompileChannelSpecs(q);
  ASSERT_FALSE(specs.ok());
  EXPECT_EQ(specs.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(specs.status().message().find("inverted"), std::string::npos);
}

TEST(CompilerTest, NegativeBandBoundIsRejected) {
  EXPECT_FALSE(CompileChannelSpecs(
                   BandQuery(core::Aggregate::kSum, -1.0, 20.0))
                   .ok());
}

TEST(CompilerTest, BandBeyondDyadicDomainIsRejected) {
  // 5e18 passes the 64-bit scaled-value check but exceeds the 2^62
  // dyadic domain cap.
  core::Query q = BandQuery(core::Aggregate::kSum, 0.0, 5.0e18);
  q.scale_pow10 = 0;
  auto specs = CompileChannelSpecs(q);
  ASSERT_FALSE(specs.ok());
  EXPECT_NE(specs.status().message().find("2^62"), std::string::npos);
}

TEST(CompilerTest, QuantizationMatchesDirectChannelValue) {
  // The bound quantizer and the source-side reading quantizer agree on
  // representable decimals — this is what makes the compiled path
  // bit-identical to the direct band path.
  for (double x : {18.2, 20.0, 29.99, 33.333, 45.67}) {
    auto bound = core::ScaledBandBound(x, 2);
    ASSERT_TRUE(bound.ok());
    core::SensorReading reading;
    reading.temperature = x;
    auto value =
        core::ScaledFieldValue(reading, core::Field::kTemperature, 2);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(bound.value(), value.value()) << "x = " << x;
  }
}

TEST(CompilerTest, CompilationIsDeterministic) {
  core::Query q = BandQuery(core::Aggregate::kVariance, 22.5, 41.25);
  auto a = CompileChannelSpecs(q);
  auto b = CompileChannelSpecs(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_TRUE(a.value()[i] == b.value()[i]);
  }
}

}  // namespace
}  // namespace sies::predicate
