// Dyadic decomposition: the property every compiled range query rides
// on — DyadicDecompose([lo, hi]) is an exact, disjoint, ascending cover
// of at most 2 * ceil(log2 D) canonical intervals.
#include "predicate/dyadic.h"

#include <gtest/gtest.h>

#include <random>

namespace sies::predicate {
namespace {

// Asserts the cover invariants for one range and returns the interval
// count so callers can bound it.
size_t CheckCover(uint64_t lo, uint64_t hi) {
  auto cover = DyadicDecompose(lo, hi);
  EXPECT_TRUE(cover.ok()) << cover.status().ToString();
  if (!cover.ok()) return 0;
  const std::vector<DyadicInterval>& intervals = cover.value();
  EXPECT_FALSE(intervals.empty());
  // Exact cover, no gap, no overlap, ascending: the intervals tile
  // [lo, hi] left to right.
  uint64_t cursor = lo;
  for (const DyadicInterval& iv : intervals) {
    EXPECT_EQ(iv.Lo(), cursor) << "gap or overlap at " << cursor;
    EXPECT_GE(iv.Hi(), iv.Lo());
    // Canonical alignment: the interval starts on a multiple of its
    // width — this is what makes covers of overlapping ranges share
    // nodes.
    EXPECT_EQ(iv.Lo() % iv.Width(), 0u);
    // Membership agrees with the bounds on both edges and outside.
    EXPECT_TRUE(iv.Contains(iv.Lo()));
    EXPECT_TRUE(iv.Contains(iv.Hi()));
    if (iv.Lo() > 0) {
      EXPECT_FALSE(iv.Contains(iv.Lo() - 1));
    }
    EXPECT_FALSE(iv.Contains(iv.Hi() + 1));
    cursor = iv.Hi() + 1;
  }
  EXPECT_EQ(cursor, hi + 1) << "cover stops short of hi";
  return intervals.size();
}

TEST(DyadicTest, SingletonAndSmallRanges) {
  EXPECT_EQ(CheckCover(0, 0), 1u);
  EXPECT_EQ(CheckCover(5, 5), 1u);
  EXPECT_EQ(CheckCover(0, 1), 1u);   // one level-1 interval
  EXPECT_EQ(CheckCover(1, 2), 2u);   // unaligned: two singletons
  CheckCover(0, 7);                  // one level-3 interval
  CheckCover(1, 6);
}

TEST(DyadicTest, FullDomainIsOneInterval) {
  auto cover = DyadicDecompose(0, kMaxDomainValue);
  ASSERT_TRUE(cover.ok());
  ASSERT_EQ(cover.value().size(), 1u);
  EXPECT_EQ(cover.value()[0].level, 62u);
  EXPECT_EQ(cover.value()[0].index, 0u);
}

TEST(DyadicTest, RejectsInvertedRange) {
  auto cover = DyadicDecompose(10, 9);
  ASSERT_FALSE(cover.ok());
  EXPECT_NE(cover.status().message().find("inverted"), std::string::npos);
}

TEST(DyadicTest, RejectsBeyondDomainCap) {
  EXPECT_FALSE(DyadicDecompose(0, kMaxDomainValue + 1).ok());
}

TEST(DyadicTest, MaxIntervalsForDomainBounds) {
  EXPECT_EQ(MaxIntervalsForDomain(1), 1u);
  EXPECT_EQ(MaxIntervalsForDomain(2), 2u);
  EXPECT_LE(MaxIntervalsForDomain(kMaxDomainValue + 1), 124u);
}

// The acceptance property: random [lo, hi] in random domains — exact
// cover, no overlap, and at most 2 * ceil(log2 D) intervals.
TEST(DyadicTest, RandomRangesCoverExactlyWithinBound) {
  std::mt19937_64 rng(20260807);
  const uint64_t domains[] = {2,    16,        1000,      4096,
                              1001, 10'000'000, uint64_t{1} << 40};
  for (uint64_t domain : domains) {
    for (int trial = 0; trial < 200; ++trial) {
      uint64_t a = rng() % domain;
      uint64_t b = rng() % domain;
      const uint64_t lo = std::min(a, b);
      const uint64_t hi = std::max(a, b);
      const size_t count = CheckCover(lo, hi);
      EXPECT_LE(count, MaxIntervalsForDomain(hi - lo + 1))
          << "[" << lo << ", " << hi << "] in domain " << domain;
    }
  }
}

// Overlapping ranges share canonical nodes: the covers of [4, 15] and
// [8, 23] both contain the level-3 interval at [8, 15].
TEST(DyadicTest, OverlappingRangesShareCanonicalNodes) {
  auto a = DyadicDecompose(4, 15);
  auto b = DyadicDecompose(8, 23);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool shared = false;
  for (const DyadicInterval& x : a.value()) {
    for (const DyadicInterval& y : b.value()) {
      if (x == y) shared = true;
    }
  }
  EXPECT_TRUE(shared);
}

}  // namespace
}  // namespace sies::predicate
