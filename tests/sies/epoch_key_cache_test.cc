#include "sies/epoch_key_cache.h"

#include <gtest/gtest.h>

#include "sies/message_format.h"

namespace sies::core {
namespace {

struct Fixture {
  Params params = MakeParams(8, 42).value();
  QuerierKeys keys = GenerateKeys(params, EncodeUint64(42));
};

TEST(EpochKeyCacheTest, GlobalMatchesDirectDerivationAndInverse) {
  Fixture f;
  EpochKeyCache cache;
  auto entry = cache.Global(f.params, f.keys.global_key, 5);
  EXPECT_EQ(entry->key, DeriveEpochGlobalKey(f.params, f.keys.global_key, 5));
  EXPECT_EQ(entry->key_inv,
            crypto::BigUint::ModInverse(entry->key, f.params.prime).value());
  // The reference configuration has a 256-bit prime -> fast mirrors set.
  ASSERT_TRUE(entry->fast);
  EXPECT_EQ(entry->key_fp.ToBigUint(), entry->key);
  EXPECT_EQ(entry->key_inv_fp.ToBigUint(), entry->key_inv);
}

TEST(EpochKeyCacheTest, GlobalIsMemoizedPerEpoch) {
  Fixture f;
  EpochKeyCache cache;
  auto a = cache.Global(f.params, f.keys.global_key, 7);
  auto b = cache.Global(f.params, f.keys.global_key, 7);
  EXPECT_EQ(a.get(), b.get()) << "same epoch must share one snapshot";
  auto c = cache.Global(f.params, f.keys.global_key, 8);
  EXPECT_NE(a.get(), c.get());
}

TEST(EpochKeyCacheTest, SourcesMatchDirectDerivation) {
  Fixture f;
  EpochKeyCache cache;
  auto entry = cache.Sources(f.params, f.keys.source_keys, 3, nullptr);
  ASSERT_TRUE(entry->fast);
  ASSERT_EQ(entry->keys_fp.size(), f.keys.source_keys.size());
  for (size_t i = 0; i < f.keys.source_keys.size(); ++i) {
    EXPECT_EQ(entry->keys_fp[i].ToBigUint(),
              DeriveEpochSourceKey(f.params, f.keys.source_keys[i], 3));
    EXPECT_EQ(entry->shares_fp[i].ToBigUint(),
              DeriveEpochShare(f.params, f.keys.source_keys[i], 3));
  }
}

TEST(EpochKeyCacheTest, SourcesIdenticalWithAndWithoutPool) {
  Fixture f;
  EpochKeyCache with_pool, without_pool;
  common::ThreadPool pool(3);
  auto a = with_pool.Sources(f.params, f.keys.source_keys, 9, &pool);
  auto b = without_pool.Sources(f.params, f.keys.source_keys, 9, nullptr);
  ASSERT_EQ(a->keys_fp.size(), b->keys_fp.size());
  for (size_t i = 0; i < a->keys_fp.size(); ++i) {
    EXPECT_EQ(a->keys_fp[i], b->keys_fp[i]);
    EXPECT_EQ(a->shares_fp[i], b->shares_fp[i]);
  }
}

TEST(EpochKeyCacheTest, BatchedDerivationMatchesScalarAcrossGroups) {
  // 300 sources spans multiple 256-wide derivation groups and a ragged
  // final 8-lane batch; every cached entry must equal the per-index
  // scalar derivation bit for bit, with and without a pool fanning the
  // groups out.
  Params params = MakeParams(300, 42).value();
  QuerierKeys keys = GenerateKeys(params, EncodeUint64(42));
  common::ThreadPool pool(3);
  EpochKeyCache pooled, serial;
  auto a = pooled.Sources(params, keys.source_keys, 11, &pool);
  auto b = serial.Sources(params, keys.source_keys, 11, nullptr);
  ASSERT_TRUE(a->fast);
  ASSERT_EQ(a->keys_fp.size(), 300u);
  const crypto::Fp256* fp = params.Fp();
  ASSERT_NE(fp, nullptr);
  for (size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(a->keys_fp[i],
              DeriveEpochSourceKeyFp(*fp, keys.source_keys[i], 11));
    EXPECT_EQ(a->shares_fp[i], DeriveEpochShareFp(keys.source_keys[i], 11));
    EXPECT_EQ(a->keys_fp[i], b->keys_fp[i]);
    EXPECT_EQ(a->shares_fp[i], b->shares_fp[i]);
  }
}

TEST(EpochKeyCacheTest, BatchedDerivationMatchesScalarHardenedProfile) {
  // The HM256-share profile needs a wider prime, so it runs the generic
  // BigUint batch (DeriveEpochSourceKeysBatch + DeriveEpochSharesHm256-
  // Batch) rather than the Fp256 one.
  Params params =
      MakeParams(70, 42, 4, 384, SharePrf::kHmacSha256).value();
  QuerierKeys keys = GenerateKeys(params, EncodeUint64(42));
  EpochKeyCache cache;
  auto entry = cache.Sources(params, keys.source_keys, 6, nullptr);
  ASSERT_FALSE(entry->fast);
  ASSERT_EQ(entry->keys.size(), 70u);
  for (size_t i = 0; i < 70; ++i) {
    EXPECT_EQ(entry->keys[i],
              DeriveEpochSourceKey(params, keys.source_keys[i], 6));
    EXPECT_EQ(entry->shares[i],
              DeriveEpochShare(params, keys.source_keys[i], 6));
  }
}

TEST(EpochKeyCacheTest, GenericPathForNon256BitPrime) {
  // A 384-bit prime keeps every party on the BigUint path.
  Params params = MakeParams(8, 42, 4, 384).value();
  QuerierKeys keys = GenerateKeys(params, EncodeUint64(42));
  EpochKeyCache cache;
  auto global = cache.Global(params, keys.global_key, 2);
  EXPECT_FALSE(global->fast);
  EXPECT_EQ(global->key, DeriveEpochGlobalKey(params, keys.global_key, 2));
  auto sources = cache.Sources(params, keys.source_keys, 2, nullptr);
  EXPECT_FALSE(sources->fast);
  ASSERT_EQ(sources->keys.size(), keys.source_keys.size());
  EXPECT_EQ(sources->keys[0],
            DeriveEpochSourceKey(params, keys.source_keys[0], 2));
}

TEST(EpochKeyCacheTest, EvictionBoundsRetainedEpochs) {
  Fixture f;
  EpochKeyCache cache(/*capacity=*/2);
  auto e1 = cache.Global(f.params, f.keys.global_key, 1);
  cache.Global(f.params, f.keys.global_key, 2);
  cache.Global(f.params, f.keys.global_key, 3);  // evicts epoch 1
  auto e1_again = cache.Global(f.params, f.keys.global_key, 1);
  EXPECT_NE(e1.get(), e1_again.get()) << "epoch 1 was evicted, re-derived";
  EXPECT_EQ(e1->key, e1_again->key) << "re-derivation is deterministic";
}

TEST(EpochKeyCacheTest, EvictionsAreCounted) {
  Fixture f;
  EpochKeyCache cache(/*capacity=*/2);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    cache.Global(f.params, f.keys.global_key, epoch);
  }
  // Capacity 2, 5 inserts: epochs 1-3 were pushed out.
  EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST(EpochKeyCacheTest, ReserveGrowsAndNeverShrinks) {
  Fixture f;
  EpochKeyCache cache(/*capacity=*/2);
  EXPECT_EQ(cache.capacity(), 2u);
  cache.Reserve(8);
  EXPECT_EQ(cache.capacity(), 8u);
  cache.Reserve(4);  // no shrink: readers may hold the larger set
  EXPECT_EQ(cache.capacity(), 8u);

  // With room for all 5 epochs, the same access pattern evicts nothing.
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    cache.Global(f.params, f.keys.global_key, epoch);
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  auto early = cache.Global(f.params, f.keys.global_key, 1);
  EXPECT_EQ(cache.stats().global_hits, 1u) << "epoch 1 must still be held";
  EXPECT_EQ(early->key, DeriveEpochGlobalKey(f.params, f.keys.global_key, 1));
}

TEST(EpochKeyCacheTest, ClearDropsEverything) {
  Fixture f;
  EpochKeyCache cache;
  auto a = cache.Global(f.params, f.keys.global_key, 4);
  cache.Clear();
  auto b = cache.Global(f.params, f.keys.global_key, 4);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->key, b->key);
}

}  // namespace
}  // namespace sies::core
