// The umbrella header must pull in the whole public API, and the
// version constants must be consistent.
#include "sies/sies.h"

#include <gtest/gtest.h>

#include "common/version.h"

namespace sies {
namespace {

TEST(UmbrellaTest, AllPublicTypesReachable) {
  // One mention of each public family proves the include set is right.
  core::Params params;
  core::Query query;
  core::HistogramQuery histogram;
  core::ResultLog log;
  (void)params;
  (void)query;
  (void)histogram;
  (void)log;
  EXPECT_TRUE(core::EpochClock::Create(1000, 0).ok());
}

TEST(UmbrellaTest, QuickstartThroughUmbrellaOnly) {
  auto params = core::MakeParams(2, 1).value();
  auto keys = core::GenerateKeys(params, {1});
  core::Source a(params, 0, core::KeysForSource(keys, 0).value());
  core::Source b(params, 1, core::KeysForSource(keys, 1).value());
  core::Aggregator aggregator(params);
  core::Querier querier(params, keys);
  Bytes sum = aggregator
                  .Merge({a.CreatePsr(40, 1).value(),
                          b.CreatePsr(2, 1).value()})
                  .value();
  auto eval = querier.Evaluate(sum, 1).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, 42u);
}

TEST(VersionTest, ConstantsConsistent) {
  std::string expected = std::to_string(kVersionMajor) + "." +
                         std::to_string(kVersionMinor) + "." +
                         std::to_string(kVersionPatch);
  EXPECT_EQ(expected, kVersionString);
}

}  // namespace
}  // namespace sies
