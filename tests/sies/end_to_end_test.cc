// End-to-end SIES: source -> aggregator tree -> querier, including
// failure handling and the exactness guarantee.
#include <gtest/gtest.h>

#include <numeric>

#include "sies/aggregator.h"
#include "sies/querier.h"
#include "sies/source.h"

namespace sies::core {
namespace {

class SiesEndToEndTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 8;

  SiesEndToEndTest()
      : params_(MakeParams(kN, /*seed=*/3).value()),
        keys_(GenerateKeys(params_, {4, 2})),
        aggregator_(params_),
        querier_(params_, keys_) {
    for (uint32_t i = 0; i < kN; ++i) {
      sources_.emplace_back(params_, i, KeysForSource(keys_, i).value());
    }
  }

  // Aggregates all sources' PSRs pairwise (binary tree shape).
  Bytes AggregateAll(const std::vector<Bytes>& psrs) {
    std::vector<Bytes> level = psrs;
    while (level.size() > 1) {
      std::vector<Bytes> next;
      for (size_t i = 0; i < level.size(); i += 2) {
        if (i + 1 < level.size()) {
          next.push_back(
              aggregator_.Merge({level[i], level[i + 1]}).value());
        } else {
          next.push_back(level[i]);
        }
      }
      level = std::move(next);
    }
    return level[0];
  }

  Params params_;
  QuerierKeys keys_;
  std::vector<Source> sources_;
  Aggregator aggregator_;
  Querier querier_;
};

TEST_F(SiesEndToEndTest, ExactSumVerifies) {
  std::vector<uint64_t> values = {1800, 2500, 3000, 4999, 0, 42, 5000, 1};
  uint64_t expected = std::accumulate(values.begin(), values.end(), 0ull);
  std::vector<Bytes> psrs;
  for (uint32_t i = 0; i < kN; ++i) {
    psrs.push_back(sources_[i].CreatePsr(values[i], /*epoch=*/1).value());
    EXPECT_EQ(psrs.back().size(), params_.PsrBytes());
  }
  auto eval = querier_.Evaluate(AggregateAll(psrs), 1).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, expected);
}

TEST_F(SiesEndToEndTest, ExactAcrossManyEpochs) {
  for (uint64_t epoch = 1; epoch <= 20; ++epoch) {
    std::vector<Bytes> psrs;
    uint64_t expected = 0;
    for (uint32_t i = 0; i < kN; ++i) {
      uint64_t v = 1800 + 37 * i + 11 * epoch;
      expected += v;
      psrs.push_back(sources_[i].CreatePsr(v, epoch).value());
    }
    auto eval = querier_.Evaluate(AggregateAll(psrs), epoch).value();
    EXPECT_TRUE(eval.verified) << "epoch " << epoch;
    EXPECT_EQ(eval.sum, expected) << "epoch " << epoch;
  }
}

TEST_F(SiesEndToEndTest, MergeOrderIrrelevant) {
  std::vector<Bytes> psrs;
  for (uint32_t i = 0; i < kN; ++i) {
    psrs.push_back(sources_[i].CreatePsr(100 + i, 2).value());
  }
  // Left-fold vs pairwise tree must give identical final PSRs.
  Bytes left_fold = psrs[0];
  for (size_t i = 1; i < psrs.size(); ++i) {
    left_fold = aggregator_.Merge({left_fold, psrs[i]}).value();
  }
  Bytes tree = AggregateAll(psrs);
  EXPECT_EQ(left_fold, tree);
  // Reversed order too (commutativity).
  Bytes reverse_fold = psrs.back();
  for (size_t i = psrs.size() - 1; i-- > 0;) {
    reverse_fold = aggregator_.Merge({reverse_fold, psrs[i]}).value();
  }
  EXPECT_EQ(reverse_fold, tree);
}

TEST_F(SiesEndToEndTest, WideMergeEqualsPairwise) {
  std::vector<Bytes> psrs;
  for (uint32_t i = 0; i < kN; ++i) {
    psrs.push_back(sources_[i].CreatePsr(7 * i, 3).value());
  }
  EXPECT_EQ(aggregator_.Merge(psrs).value(), AggregateAll(psrs));
}

TEST_F(SiesEndToEndTest, FailedSourceHandledWithParticipationList) {
  // Source 3 fails; the querier is told and sums shares of the rest
  // (paper Section IV-B "Discussion").
  std::vector<Bytes> psrs;
  uint64_t expected = 0;
  std::vector<uint32_t> participating;
  for (uint32_t i = 0; i < kN; ++i) {
    if (i == 3) continue;
    uint64_t v = 1000 + i;
    expected += v;
    participating.push_back(i);
    psrs.push_back(sources_[i].CreatePsr(v, 4).value());
  }
  auto eval =
      querier_.Evaluate(AggregateAll(psrs), 4, participating).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, expected);
}

TEST_F(SiesEndToEndTest, WrongParticipationListFailsVerification) {
  // If the querier believes all N contributed but one PSR is missing,
  // the share sums cannot match: a dropped contribution is detected.
  std::vector<Bytes> psrs;
  for (uint32_t i = 0; i < kN - 1; ++i) {  // source 7 silently dropped
    psrs.push_back(sources_[i].CreatePsr(500, 5).value());
  }
  auto eval = querier_.Evaluate(AggregateAll(psrs), 5).value();
  EXPECT_FALSE(eval.verified);
}

TEST_F(SiesEndToEndTest, SingleSourceNetwork) {
  auto params = MakeParams(1, 3).value();
  auto keys = GenerateKeys(params, {1});
  Source source(params, 0, KeysForSource(keys, 0).value());
  Querier querier(params, keys);
  auto psr = source.CreatePsr(31415, 9).value();
  auto eval = querier.Evaluate(psr, 9).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, 31415u);
}

TEST_F(SiesEndToEndTest, MaxValuesDoNotOverflow) {
  // Every source reports MaxSafeValue: Σv stays within the 4-byte field.
  uint64_t v = params_.MaxSafeValue();
  std::vector<Bytes> psrs;
  for (uint32_t i = 0; i < kN; ++i) {
    psrs.push_back(sources_[i].CreatePsr(v, 6).value());
  }
  auto eval = querier_.Evaluate(AggregateAll(psrs), 6).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, v * kN);
}

TEST_F(SiesEndToEndTest, EpochMismatchFailsVerification) {
  // Evaluating epoch-1 PSRs as if they were epoch 2 must fail: this is
  // the freshness property (Theorem 4).
  std::vector<Bytes> psrs;
  for (uint32_t i = 0; i < kN; ++i) {
    psrs.push_back(sources_[i].CreatePsr(100, 1).value());
  }
  Bytes final_psr = AggregateAll(psrs);
  EXPECT_TRUE(querier_.Evaluate(final_psr, 1).value().verified);
  EXPECT_FALSE(querier_.Evaluate(final_psr, 2).value().verified);
}

TEST_F(SiesEndToEndTest, TamperedFinalPsrFailsVerification) {
  std::vector<Bytes> psrs;
  for (uint32_t i = 0; i < kN; ++i) {
    psrs.push_back(sources_[i].CreatePsr(2000, 7).value());
  }
  Bytes final_psr = AggregateAll(psrs);
  for (size_t byte = 0; byte < final_psr.size(); byte += 5) {
    Bytes tampered = final_psr;
    tampered[byte] ^= 0x01;
    auto eval = querier_.Evaluate(tampered, 7);
    if (eval.ok()) {
      EXPECT_FALSE(eval.value().verified) << "flip at byte " << byte;
    }
    // (!ok means the tampered PSR stopped being a residue: also a reject.)
  }
}

TEST_F(SiesEndToEndTest, InjectedCiphertextFailsVerification) {
  // An adversary adds a spurious encrypted-looking contribution.
  std::vector<Bytes> psrs;
  for (uint32_t i = 0; i < kN; ++i) {
    psrs.push_back(sources_[i].CreatePsr(100, 8).value());
  }
  Bytes bogus(params_.PsrBytes(), 0x00);
  bogus.back() = 0x2a;  // small residue, valid format
  psrs.push_back(bogus);
  auto eval = querier_.Evaluate(AggregateAll(psrs), 8).value();
  EXPECT_FALSE(eval.verified);
}

TEST_F(SiesEndToEndTest, MergeValidatesInput) {
  EXPECT_FALSE(aggregator_.Merge({}).ok());
  EXPECT_FALSE(aggregator_.Merge({Bytes{1, 2, 3}}).ok());
}

TEST_F(SiesEndToEndTest, SourceRejectsOversizedValue) {
  EXPECT_FALSE(sources_[0].CreatePsr(uint64_t{1} << 33, 1).ok());
}

TEST_F(SiesEndToEndTest, HardenedSha256ProfileEndToEnd) {
  // The SHA-256-share profile through the real Source/Aggregator/Querier
  // classes: exact, verified, and tamper-rejecting like the default.
  auto params =
      MakeParams(4, 11, 4, /*prime_bits=*/352, SharePrf::kHmacSha256)
          .value();
  auto keys = GenerateKeys(params, {6});
  Aggregator aggregator(params);
  Querier querier(params, keys);
  Bytes sum;
  uint64_t expected = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    Source source(params, i, KeysForSource(keys, i).value());
    uint64_t v = 2500 + i;
    expected += v;
    Bytes psr = source.CreatePsr(v, 1).value();
    EXPECT_EQ(psr.size(), 44u);  // 352-bit PSR
    sum = sum.empty() ? psr : aggregator.Merge({sum, psr}).value();
  }
  auto eval = querier.Evaluate(sum, 1).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, expected);
  Bytes tampered = sum;
  tampered[10] ^= 0x04;
  auto attacked = querier.Evaluate(tampered, 1);
  if (attacked.ok()) EXPECT_FALSE(attacked.value().verified);
}

// Property sweep: random values, random epoch, always exact + verified.
class SiesRandomizedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SiesRandomizedSweep, RandomValuesExact) {
  Xoshiro256 rng(GetParam());
  uint32_t n = 1 + static_cast<uint32_t>(rng.NextBelow(12));
  auto params = MakeParams(n, GetParam()).value();
  auto keys = GenerateKeys(params, EncodeUint64(GetParam()));
  Aggregator agg(params);
  Querier querier(params, keys);
  uint64_t epoch = rng.NextBelow(1000);
  uint64_t expected = 0;
  Bytes acc;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t v = rng.NextBelow(params.MaxSafeValue() + 1);
    expected += v;
    Source source(params, i, KeysForSource(keys, i).value());
    Bytes psr = source.CreatePsr(v, epoch).value();
    acc = acc.empty() ? psr : agg.Merge({acc, psr}).value();
  }
  auto eval = querier.Evaluate(acc, epoch).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiesRandomizedSweep,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace sies::core
