#include "sies/message_format.h"

#include <gtest/gtest.h>

#include <set>

namespace sies::core {
namespace {

class MessageFormatTest : public ::testing::Test {
 protected:
  MessageFormatTest() : params_(MakeParams(16, /*seed=*/1).value()) {}
  Params params_;
};

TEST_F(MessageFormatTest, PackUnpackRoundTrip) {
  crypto::BigUint share =
      crypto::BigUint::FromHexString("0123456789abcdef0123456789abcdef01234567")
          .value();
  auto m = PackMessage(params_, 424242, share).value();
  auto unpacked = UnpackMessage(params_, m).value();
  EXPECT_EQ(unpacked.sum, 424242u);
  EXPECT_EQ(unpacked.share_sum, share);
}

TEST_F(MessageFormatTest, ZeroValueAndShare) {
  auto m = PackMessage(params_, 0, crypto::BigUint()).value();
  EXPECT_TRUE(m.IsZero());
  auto unpacked = UnpackMessage(params_, m).value();
  EXPECT_EQ(unpacked.sum, 0u);
  EXPECT_TRUE(unpacked.share_sum.IsZero());
}

TEST_F(MessageFormatTest, ValueFieldBounds) {
  crypto::BigUint share(1);
  EXPECT_TRUE(PackMessage(params_, 0xffffffffu, share).ok());
  EXPECT_FALSE(PackMessage(params_, 0x100000000ull, share).ok());
}

TEST_F(MessageFormatTest, ShareFieldBounds) {
  crypto::BigUint max_share =
      crypto::BigUint::Sub(crypto::BigUint::Shl(crypto::BigUint(1), 160),
                           crypto::BigUint(1));
  EXPECT_TRUE(PackMessage(params_, 1, max_share).ok());
  crypto::BigUint too_big = crypto::BigUint::Shl(crypto::BigUint(1), 160);
  EXPECT_FALSE(PackMessage(params_, 1, too_big).ok());
}

TEST_F(MessageFormatTest, SummedSharesCarryIntoPad) {
  // N=16 shares of the maximal 160-bit value overflow into the 4 pad
  // bits but must NOT touch the value field (paper Figure 2/3).
  crypto::BigUint max_share =
      crypto::BigUint::Sub(crypto::BigUint::Shl(crypto::BigUint(1), 160),
                           crypto::BigUint(1));
  crypto::BigUint total;
  crypto::BigUint share_total;
  for (int i = 0; i < 16; ++i) {
    total = crypto::BigUint::Add(total,
                                 PackMessage(params_, 1000, max_share).value());
    share_total = crypto::BigUint::Add(share_total, max_share);
  }
  auto unpacked = UnpackMessage(params_, total).value();
  EXPECT_EQ(unpacked.sum, 16000u);
  EXPECT_EQ(unpacked.share_sum, share_total);
}

TEST_F(MessageFormatTest, ValueFieldOverflowDetected) {
  // A summed message whose value field exceeds 4 bytes must be reported.
  crypto::BigUint huge = crypto::BigUint::Shl(
      crypto::BigUint(0x1ffffffffull), params_.ValueShiftBits());
  EXPECT_FALSE(UnpackMessage(params_, huge).ok());
}

TEST_F(MessageFormatTest, EncryptDecryptRoundTrip) {
  crypto::BigUint kt = DeriveEpochGlobalKey(params_, Bytes(20, 1), 7);
  crypto::BigUint ki = DeriveEpochSourceKey(params_, Bytes(20, 2), 7);
  auto m = PackMessage(params_, 1234, DeriveEpochShare(Bytes(20, 2), 7))
               .value();
  auto c = Encrypt(params_, m, kt, ki).value();
  EXPECT_NE(c, m);
  EXPECT_EQ(Decrypt(params_, c, kt, ki).value(), m);
}

TEST_F(MessageFormatTest, EncryptRejectsOversizedMessage) {
  EXPECT_FALSE(
      Encrypt(params_, params_.prime, crypto::BigUint(3), crypto::BigUint(5))
          .ok());
}

TEST_F(MessageFormatTest, HomomorphicSumOfTwo) {
  crypto::BigUint kt = DeriveEpochGlobalKey(params_, Bytes(20, 1), 3);
  crypto::BigUint k1 = DeriveEpochSourceKey(params_, Bytes(20, 2), 3);
  crypto::BigUint k2 = DeriveEpochSourceKey(params_, Bytes(20, 3), 3);
  auto m1 = PackMessage(params_, 100, crypto::BigUint(11)).value();
  auto m2 = PackMessage(params_, 250, crypto::BigUint(22)).value();
  auto c1 = Encrypt(params_, m1, kt, k1).value();
  auto c2 = Encrypt(params_, m2, kt, k2).value();
  auto c = crypto::BigUint::ModAdd(c1, c2, params_.prime).value();
  auto key_sum = crypto::BigUint::ModAdd(k1, k2, params_.prime).value();
  auto m = Decrypt(params_, c, kt, key_sum).value();
  auto unpacked = UnpackMessage(params_, m).value();
  EXPECT_EQ(unpacked.sum, 350u);
  EXPECT_EQ(unpacked.share_sum, crypto::BigUint(33));
}

TEST_F(MessageFormatTest, SerializePsrFixedWidth) {
  auto c = crypto::BigUint(42);
  auto psr = SerializePsr(params_, c).value();
  EXPECT_EQ(psr.size(), params_.PsrBytes());
  EXPECT_EQ(ParsePsr(params_, psr).value(), c);
}

TEST_F(MessageFormatTest, ParsePsrRejectsWrongWidth) {
  Bytes short_psr(params_.PsrBytes() - 1, 0);
  EXPECT_FALSE(ParsePsr(params_, short_psr).ok());
  Bytes long_psr(params_.PsrBytes() + 1, 0);
  EXPECT_FALSE(ParsePsr(params_, long_psr).ok());
}

TEST_F(MessageFormatTest, ParsePsrRejectsNonResidue) {
  auto over = params_.prime.ToBytes(params_.PsrBytes()).value();
  EXPECT_FALSE(ParsePsr(params_, over).ok());
}

TEST_F(MessageFormatTest, CiphertextLooksUniform) {
  // Encrypting the same value under different epochs should give
  // ciphertexts with no obvious structure (confidentiality smoke test).
  Bytes key(20, 0x55);
  std::set<std::string> seen;
  for (uint64_t epoch = 0; epoch < 50; ++epoch) {
    crypto::BigUint kt = DeriveEpochGlobalKey(params_, Bytes(20, 1), epoch);
    crypto::BigUint ki = DeriveEpochSourceKey(params_, key, epoch);
    auto m = PackMessage(params_, 42, DeriveEpochShare(key, epoch)).value();
    auto c = Encrypt(params_, m, kt, ki).value();
    EXPECT_TRUE(seen.insert(c.ToHexString()).second)
        << "ciphertext repeated across epochs";
  }
}

// Exhaustive bijection check on a tiny prime: for fixed K != 0 and any k,
// m -> K*m + k mod p is a bijection, so a ciphertext reveals nothing
// about m without k (Theorem 1's information-theoretic core).
TEST(OneTimePadPropertyTest, EncryptionIsBijectionOverZp) {
  const uint64_t p = 257;
  for (uint64_t big_k : {1ull, 2ull, 100ull, 256ull}) {
    for (uint64_t k : {0ull, 1ull, 77ull, 200ull}) {
      std::set<uint64_t> images;
      for (uint64_t m = 0; m < p; ++m) {
        images.insert((big_k * m + k) % p);
      }
      EXPECT_EQ(images.size(), p) << "K=" << big_k << " k=" << k;
    }
  }
}

// For a FIXED ciphertext c and every candidate key k, there is exactly
// one plaintext: all plaintexts are equally consistent with c.
TEST(OneTimePadPropertyTest, EveryPlaintextEquallyLikelyGivenCiphertext) {
  const uint64_t p = 101;
  const uint64_t big_k = 37;
  const uint64_t c = 55;
  std::set<uint64_t> plaintexts;
  for (uint64_t k = 0; k < p; ++k) {
    // m = (c - k) * K^{-1} mod p
    auto inv = crypto::BigUint::ModInverse(crypto::BigUint(big_k),
                                           crypto::BigUint(p))
                   .value()
                   .Low64();
    uint64_t m = ((c + p - k) % p) * inv % p;
    plaintexts.insert(m);
  }
  EXPECT_EQ(plaintexts.size(), p);
}

}  // namespace
}  // namespace sies::core
