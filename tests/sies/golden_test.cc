// Golden regression vectors: fixed-seed protocol outputs captured from a
// verified build. Any change to the PRF stack, message layout, key
// derivation, prime search, or serialization will break these — by
// design. If a change is intentional, regenerate by printing the same
// quantities (MakeParams(4, 99), GenerateKeys({9, 9})) and updating the
// constants below.
#include <gtest/gtest.h>

#include "sies/aggregator.h"
#include "sies/querier.h"
#include "sies/source.h"

namespace sies::core {
namespace {

constexpr char kGoldenPrimeHex[] =
    "83b458c65e6efd48654b8dde286c1859202c3580b12883a5263450261e06eb67";
constexpr char kGoldenGlobalKeyHex[] =
    "61e62eb134e7239e7ad105a4808f6761b243aa6f";
constexpr char kGoldenSourceKey0Hex[] =
    "f41d4d78e961c2bc0ea6bc2b8ed51e7702fafeef";
constexpr char kGoldenPsrHex[] =
    "6bd442e7b98a6606655160f2f5724def538bc0c04463070d154e7ba0b3c41b8b";

class GoldenTest : public ::testing::Test {
 protected:
  GoldenTest()
      : params_(MakeParams(4, 99).value()),
        keys_(GenerateKeys(params_, {9, 9})) {}

  Params params_;
  QuerierKeys keys_;
};

TEST_F(GoldenTest, PrimeIsStable) {
  EXPECT_EQ(params_.prime.ToHexString(), kGoldenPrimeHex);
}

TEST_F(GoldenTest, KeysAreStable) {
  EXPECT_EQ(ToHex(keys_.global_key), kGoldenGlobalKeyHex);
  EXPECT_EQ(ToHex(keys_.source_keys[0]), kGoldenSourceKey0Hex);
}

TEST_F(GoldenTest, PsrIsStable) {
  Source source(params_, 0, KeysForSource(keys_, 0).value());
  Bytes psr = source.CreatePsr(2301, /*epoch=*/1).value();
  EXPECT_EQ(ToHex(psr), kGoldenPsrHex);
}

TEST_F(GoldenTest, GoldenRunStillVerifies) {
  Aggregator aggregator(params_);
  Querier querier(params_, keys_);
  Bytes sum;
  for (uint32_t i = 0; i < 4; ++i) {
    Source source(params_, i, KeysForSource(keys_, i).value());
    Bytes psr = source.CreatePsr(1000 + i, 1).value();
    sum = sum.empty() ? psr : aggregator.Merge({sum, psr}).value();
  }
  auto eval = querier.Evaluate(sum, 1).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, 4006u);
}

}  // namespace
}  // namespace sies::core
