#include "sies/provisioning.h"

#include <gtest/gtest.h>

#include "sies/aggregator.h"
#include "sies/querier.h"
#include "sies/source.h"

namespace sies::core {
namespace {

class ProvisioningTest : public ::testing::Test {
 protected:
  ProvisioningTest() {
    deployment_.params = MakeParams(8, /*seed=*/4).value();
    deployment_.keys = GenerateKeys(deployment_.params, {8, 8});
  }
  Deployment deployment_;
};

TEST_F(ProvisioningTest, DeploymentRoundTrip) {
  Bytes blob = SerializeDeployment(deployment_).value();
  Deployment back = ParseDeployment(blob).value();
  EXPECT_EQ(back.params.num_sources, 8u);
  EXPECT_EQ(back.params.prime, deployment_.params.prime);
  EXPECT_EQ(back.params.pad_bits, deployment_.params.pad_bits);
  EXPECT_EQ(back.keys.global_key, deployment_.keys.global_key);
  EXPECT_EQ(back.keys.source_keys, deployment_.keys.source_keys);
}

TEST_F(ProvisioningTest, SourceRegistrationRoundTrip) {
  for (uint32_t i : {0u, 3u, 7u}) {
    Bytes blob = SerializeSourceRegistration(deployment_, i).value();
    SourceRegistration reg = ParseSourceRegistration(blob).value();
    EXPECT_EQ(reg.index, i);
    EXPECT_EQ(reg.params.prime, deployment_.params.prime);
    EXPECT_EQ(reg.keys.global_key, deployment_.keys.global_key);
    EXPECT_EQ(reg.keys.source_key, deployment_.keys.source_keys[i]);
  }
  EXPECT_FALSE(SerializeSourceRegistration(deployment_, 8).ok());
}

TEST_F(ProvisioningTest, AggregatorRecordRoundTrip) {
  Bytes blob = SerializeAggregatorRecord(deployment_.params).value();
  Params params = ParseAggregatorRecord(blob).value();
  EXPECT_EQ(params.prime, deployment_.params.prime);
  EXPECT_EQ(params.num_sources, deployment_.params.num_sources);
}

TEST_F(ProvisioningTest, ProvisionedPartiesInteroperate) {
  // A full deployment cycle: serialize everything, reconstruct all
  // parties from blobs only, run an epoch.
  Bytes dep_blob = SerializeDeployment(deployment_).value();
  Deployment querier_side = ParseDeployment(dep_blob).value();
  Querier querier(querier_side.params, querier_side.keys);

  Bytes psr_sum;
  Aggregator aggregator(
      ParseAggregatorRecord(
          SerializeAggregatorRecord(deployment_.params).value())
          .value());
  for (uint32_t i = 0; i < 8; ++i) {
    Bytes reg_blob = SerializeSourceRegistration(deployment_, i).value();
    SourceRegistration reg = ParseSourceRegistration(reg_blob).value();
    Source source(reg.params, reg.index, reg.keys);
    Bytes psr = source.CreatePsr(100 * (i + 1), /*epoch=*/1).value();
    psr_sum = psr_sum.empty() ? psr
                              : aggregator.Merge({psr_sum, psr}).value();
  }
  auto eval = querier.Evaluate(psr_sum, 1).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, 3600u);
}

TEST_F(ProvisioningTest, CorruptionDetected) {
  Bytes blob = SerializeDeployment(deployment_).value();
  for (size_t pos : {size_t{0}, blob.size() / 2, blob.size() - 1}) {
    Bytes corrupted = blob;
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(ParseDeployment(corrupted).ok()) << "pos " << pos;
  }
}

TEST_F(ProvisioningTest, TruncationDetected) {
  Bytes blob = SerializeDeployment(deployment_).value();
  for (size_t keep : {size_t{0}, size_t{7}, size_t{20}, blob.size() - 1}) {
    Bytes truncated(blob.begin(), blob.begin() + keep);
    EXPECT_FALSE(ParseDeployment(truncated).ok()) << "keep " << keep;
  }
}

TEST_F(ProvisioningTest, WrongRecordTypeRejected) {
  Bytes source_blob = SerializeSourceRegistration(deployment_, 0).value();
  EXPECT_FALSE(ParseDeployment(source_blob).ok());
  Bytes agg_blob = SerializeAggregatorRecord(deployment_.params).value();
  EXPECT_FALSE(ParseSourceRegistration(agg_blob).ok());
  Bytes dep_blob = SerializeDeployment(deployment_).value();
  EXPECT_FALSE(ParseAggregatorRecord(dep_blob).ok());
}

TEST_F(ProvisioningTest, TrailingBytesRejected) {
  Bytes blob = SerializeAggregatorRecord(deployment_.params).value();
  // Extending the blob invalidates the checksum; recompute a "valid"
  // extended record to prove the trailing-bytes check itself fires.
  // (Simplest: extend payload, recompute nothing -> checksum catches it.)
  blob.push_back(0x00);
  EXPECT_FALSE(ParseAggregatorRecord(blob).ok());
}

TEST_F(ProvisioningTest, KeyCountMismatchRejected) {
  Deployment bad = deployment_;
  bad.keys.source_keys.pop_back();
  EXPECT_FALSE(SerializeDeployment(bad).ok());
}

}  // namespace
}  // namespace sies::core
