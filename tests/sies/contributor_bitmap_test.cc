#include "sies/contributor_bitmap.h"

#include <gtest/gtest.h>

#include "sies/aggregator.h"
#include "sies/message_format.h"
#include "sies/querier.h"
#include "sies/source.h"

namespace sies::core {
namespace {

TEST(ContributorBitmapTest, WidthsRoundUpToWholeBytes) {
  EXPECT_EQ(ContributorBitmap::WidthBytes(1), 1u);
  EXPECT_EQ(ContributorBitmap::WidthBytes(7), 1u);
  EXPECT_EQ(ContributorBitmap::WidthBytes(8), 1u);
  EXPECT_EQ(ContributorBitmap::WidthBytes(9), 2u);
  EXPECT_EQ(ContributorBitmap::WidthBytes(255), 32u);
  EXPECT_EQ(ContributorBitmap::WidthBytes(256), 32u);
}

TEST(ContributorBitmapTest, SetTestCountIndices) {
  ContributorBitmap bitmap(9);
  EXPECT_EQ(bitmap.Count(), 0u);
  EXPECT_TRUE(bitmap.Indices().empty());
  ASSERT_TRUE(bitmap.Set(0).ok());
  ASSERT_TRUE(bitmap.Set(7).ok());
  ASSERT_TRUE(bitmap.Set(8).ok());
  EXPECT_TRUE(bitmap.Test(0));
  EXPECT_FALSE(bitmap.Test(1));
  EXPECT_TRUE(bitmap.Test(7));
  EXPECT_TRUE(bitmap.Test(8));
  EXPECT_EQ(bitmap.Count(), 3u);
  EXPECT_EQ(bitmap.Indices(), (std::vector<uint32_t>{0, 7, 8}));
  // Setting the same bit twice is idempotent.
  ASSERT_TRUE(bitmap.Set(7).ok());
  EXPECT_EQ(bitmap.Count(), 3u);
}

TEST(ContributorBitmapTest, OutOfRangeIndexRejected) {
  ContributorBitmap bitmap(8);
  EXPECT_FALSE(bitmap.Set(8).ok());
  EXPECT_FALSE(bitmap.Test(8));
  EXPECT_FALSE(bitmap.Test(1000));
}

TEST(ContributorBitmapTest, OrMergeUnionsContributors) {
  ContributorBitmap left(255), right(255);
  ASSERT_TRUE(left.Set(0).ok());
  ASSERT_TRUE(left.Set(100).ok());
  ASSERT_TRUE(right.Set(100).ok());
  ASSERT_TRUE(right.Set(254).ok());
  ASSERT_TRUE(left.OrWith(right).ok());
  EXPECT_EQ(left.Indices(), (std::vector<uint32_t>{0, 100, 254}));
  // Merge must not disturb the right operand.
  EXPECT_EQ(right.Indices(), (std::vector<uint32_t>{100, 254}));
}

TEST(ContributorBitmapTest, OrMergeRejectsWidthMismatch) {
  ContributorBitmap a(8), b(9);
  EXPECT_FALSE(a.OrWith(b).ok());
}

TEST(ContributorBitmapTest, WireRoundTripAtAwkwardWidths) {
  for (uint32_t n : {1u, 8u, 9u, 255u}) {
    ContributorBitmap bitmap(n);
    ASSERT_TRUE(bitmap.Set(0).ok());
    ASSERT_TRUE(bitmap.Set(n - 1).ok());
    const Bytes& wire = bitmap.bytes();
    ASSERT_EQ(wire.size(), ContributorBitmap::WidthBytes(n));
    auto parsed =
        ContributorBitmap::Parse(n, wire.data(), wire.size()).value();
    EXPECT_EQ(parsed, bitmap) << "N=" << n;
  }
}

TEST(ContributorBitmapTest, ParseRejectsWrongWidth) {
  Bytes wire(2, 0xFF);
  EXPECT_FALSE(ContributorBitmap::Parse(8, wire.data(), wire.size()).ok());
  EXPECT_FALSE(ContributorBitmap::Parse(17, wire.data(), wire.size()).ok());
}

TEST(ContributorBitmapTest, ParseMasksPaddingBits) {
  // N=9: bits 9..15 of the second byte are padding. A corrupted padding
  // bit must not abort parsing or invent contributors.
  Bytes wire = {0x01, 0xFF};
  auto parsed = ContributorBitmap::Parse(9, wire.data(), wire.size()).value();
  EXPECT_EQ(parsed.Indices(), (std::vector<uint32_t>{0, 8}));
  EXPECT_EQ(parsed.bytes()[1], 0x01);
}

class WirePayloadTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WirePayloadTest, SerializeParseRoundTrip) {
  uint32_t n = GetParam();
  auto params = MakeParams(n, /*seed=*/5).value();
  ContributorBitmap bitmap(n);
  ASSERT_TRUE(bitmap.Set(n / 2).ok());
  Bytes body(params.PsrBytes(), 0xAB);
  Bytes wire = SerializeWirePayload(params, bitmap, body).value();
  EXPECT_EQ(wire.size(), WirePsrBytes(params));
  EXPECT_EQ(wire.size(), WireBitmapBytes(params) + params.PsrBytes());
  auto parsed = ParseWirePayload(params, wire, params.PsrBytes()).value();
  EXPECT_EQ(parsed.bitmap, bitmap);
  EXPECT_EQ(parsed.body, body);
  // Truncated or padded payloads are rejected.
  Bytes trunc(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(ParseWirePayload(params, trunc, params.PsrBytes()).ok());
  wire.push_back(0);
  EXPECT_FALSE(ParseWirePayload(params, wire, params.PsrBytes()).ok());
}

INSTANTIATE_TEST_SUITE_P(AwkwardWidths, WirePayloadTest,
                         ::testing::Values(1, 8, 9, 255));

TEST(WirePsrTest, PartialSumVerifiesOverExactContributorSet) {
  // Unit-level version of the loss story: only sources {1, 3} of 9
  // reach the aggregator; the querier recovers and verifies the partial
  // sum from the bitmap alone.
  constexpr uint32_t kN = 9;
  auto params = MakeParams(kN, /*seed=*/23).value();
  auto keys = GenerateKeys(params, {4, 2});
  Aggregator aggregator(params);
  Querier querier(params, keys);
  std::vector<Bytes> payloads;
  uint64_t expected = 0;
  for (uint32_t i : {1u, 3u}) {
    Source source(params, i, KeysForSource(keys, i).value());
    payloads.push_back(source.CreateWirePsr(100 + i, /*epoch=*/6).value());
    expected += 100 + i;
  }
  Bytes merged = aggregator.MergeWire(payloads).value();
  auto eval = querier.EvaluateWire(merged, /*epoch=*/6).value();
  EXPECT_TRUE(eval.verified);
  EXPECT_EQ(eval.sum, expected);
  EXPECT_EQ(eval.contributors, (std::vector<uint32_t>{1, 3}));
}

TEST(WirePsrTest, MergeRejectsMixedWidths) {
  auto params = MakeParams(9, /*seed=*/23).value();
  auto keys = GenerateKeys(params, {4, 2});
  Source source(params, 0, KeysForSource(keys, 0).value());
  Aggregator aggregator(params);
  Bytes good = source.CreateWirePsr(1, 1).value();
  EXPECT_FALSE(aggregator.MergeWire({good, Bytes(3, 0)}).ok());
}

}  // namespace
}  // namespace sies::core
