#include "sies/histogram.h"

#include <gtest/gtest.h>

#include <numeric>

namespace sies::core {
namespace {

class HistogramTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 10;

  HistogramTest()
      : params_(MakeParams(kN, /*seed=*/21).value()),
        keys_(GenerateKeys(params_, {2, 1})) {
    all_.resize(kN);
    std::iota(all_.begin(), all_.end(), 0u);
    // Temperatures spread over [18, 50): buckets of width 4 (8 buckets).
    double temps[kN] = {18.5, 19.0, 23.0, 27.5, 27.9,
                        36.0, 42.0, 49.9, 50.0, 75.0};
    for (uint32_t i = 0; i < kN; ++i) {
      SensorReading r;
      r.temperature = temps[i];
      readings_.push_back(r);
    }
  }

  static HistogramQuery DefaultQuery() {
    HistogramQuery q;
    q.attribute = Field::kTemperature;
    q.lower = 18.0;
    q.upper = 50.0;
    q.buckets = 8;
    return q;
  }

  StatusOr<Histogram> Run(const HistogramQuery& query, uint64_t epoch) {
    HistogramAggregator aggregator(query, params_);
    HistogramQuerier querier(query, params_, keys_);
    std::vector<Bytes> payloads;
    for (uint32_t i = 0; i < kN; ++i) {
      HistogramSource src(query, params_, i,
                          KeysForSource(keys_, i).value());
      auto payload = src.CreatePayload(readings_[i], epoch);
      if (!payload.ok()) return payload.status();
      payloads.push_back(std::move(payload).value());
    }
    auto merged = aggregator.Merge(payloads);
    if (!merged.ok()) return merged.status();
    last_payload_ = merged.value();
    return querier.Evaluate(merged.value(), epoch, all_);
  }

  Params params_;
  QuerierKeys keys_;
  std::vector<SensorReading> readings_;
  std::vector<uint32_t> all_;
  Bytes last_payload_;
};

TEST_F(HistogramTest, BucketOfMapsCorrectly) {
  HistogramQuery q = DefaultQuery();  // width 4: [18,22) [22,26) ...
  EXPECT_EQ(q.BucketOf(18.0), 0u);
  EXPECT_EQ(q.BucketOf(21.99), 0u);
  EXPECT_EQ(q.BucketOf(22.0), 1u);
  EXPECT_EQ(q.BucketOf(49.99), 7u);
  EXPECT_EQ(q.BucketOf(50.0), 8u);   // overflow
  EXPECT_EQ(q.BucketOf(100.0), 8u);  // overflow
  EXPECT_EQ(q.BucketOf(10.0), 0u);   // clamped below
}

TEST_F(HistogramTest, Validation) {
  HistogramQuery q = DefaultQuery();
  EXPECT_TRUE(q.Validate().ok());
  q.buckets = 0;
  EXPECT_FALSE(q.Validate().ok());
  q = DefaultQuery();
  q.lower = q.upper;
  EXPECT_FALSE(q.Validate().ok());
  q = DefaultQuery();
  q.query_id = (1u << 14) - 4;
  EXPECT_FALSE(q.Validate().ok());
}

TEST_F(HistogramTest, ExactVerifiedCounts) {
  auto histogram = Run(DefaultQuery(), 1).value();
  EXPECT_TRUE(histogram.verified);
  // temps: 18.5,19.0->b0; 23.0->b1; 27.5,27.9->b2; 36.0->b4; 42.0->b6;
  // 49.9->b7; 50.0,75.0->overflow.
  std::vector<uint64_t> expected = {2, 1, 2, 0, 1, 0, 1, 1, 2};
  EXPECT_EQ(histogram.counts, expected);
  EXPECT_EQ(histogram.Total(), kN);
  EXPECT_EQ(last_payload_.size(), 9 * params_.PsrBytes());
}

TEST_F(HistogramTest, PredicateFilters) {
  HistogramQuery q = DefaultQuery();
  q.where = Predicate{Field::kTemperature, CompareOp::kLess, 30.0};
  auto histogram = Run(q, 2).value();
  EXPECT_TRUE(histogram.verified);
  EXPECT_EQ(histogram.Total(), 5u);  // the readings below 30
  EXPECT_EQ(histogram.counts[0], 2u);
  EXPECT_EQ(histogram.counts[8], 0u);
}

TEST_F(HistogramTest, QuantileEstimates) {
  auto histogram = Run(DefaultQuery(), 3).value();
  // Median (q=0.5): rank 5 of 10 -> cumulative 2,3,5 -> bucket 2
  // midpoint = 18 + 4*2.5 = 28.
  EXPECT_DOUBLE_EQ(histogram.Quantile(DefaultQuery(), 0.5).value(), 28.0);
  // Min-ish (q=0): rank 1 -> bucket 0 midpoint 20.
  EXPECT_DOUBLE_EQ(histogram.Quantile(DefaultQuery(), 0.0).value(), 20.0);
  // Max-ish (q=1): overflow bucket -> upper bound 50.
  EXPECT_DOUBLE_EQ(histogram.Quantile(DefaultQuery(), 1.0).value(), 50.0);
  EXPECT_FALSE(histogram.Quantile(DefaultQuery(), 1.5).ok());
}

TEST_F(HistogramTest, QuantileRequiresVerifiedNonEmpty) {
  Histogram unverified;
  unverified.counts = {1, 2};
  unverified.verified = false;
  EXPECT_FALSE(unverified.Quantile(DefaultQuery(), 0.5).ok());
  Histogram empty;
  empty.counts = std::vector<uint64_t>(9, 0);
  empty.verified = true;
  EXPECT_FALSE(empty.Quantile(DefaultQuery(), 0.5).ok());
}

TEST_F(HistogramTest, TamperedBucketDetected) {
  ASSERT_TRUE(Run(DefaultQuery(), 4).value().verified);
  HistogramQuerier querier(DefaultQuery(), params_, keys_);
  Bytes tampered = last_payload_;
  tampered[3 * params_.PsrBytes() + 7] ^= 0x40;  // corrupt bucket 3
  auto histogram = querier.Evaluate(tampered, 4, all_);
  if (histogram.ok()) {
    EXPECT_FALSE(histogram.value().verified);
  }
}

TEST_F(HistogramTest, ReplayDetected) {
  ASSERT_TRUE(Run(DefaultQuery(), 5).value().verified);
  HistogramQuerier querier(DefaultQuery(), params_, keys_);
  auto replayed = querier.Evaluate(last_payload_, 6, all_).value();
  EXPECT_FALSE(replayed.verified);
}

TEST_F(HistogramTest, DisjointFromOtherQueries) {
  // A histogram with base id 5 and a plain query with id 5 must not
  // collide: histogram buckets occupy ids 5..13 but use the COUNT
  // channel slot with their own epochs — cross-evaluating fails cleanly.
  HistogramQuery q = DefaultQuery();
  q.query_id = 5;
  ASSERT_TRUE(Run(q, 7).value().verified);
  HistogramQuery other = DefaultQuery();
  other.query_id = 6;
  HistogramQuerier wrong(other, params_, keys_);
  auto crossed = wrong.Evaluate(last_payload_, 7, all_).value();
  EXPECT_FALSE(crossed.verified);
}

TEST_F(HistogramTest, WidthValidation) {
  HistogramAggregator aggregator(DefaultQuery(), params_);
  HistogramQuerier querier(DefaultQuery(), params_, keys_);
  EXPECT_FALSE(aggregator.Merge({Bytes(5, 0)}).ok());
  EXPECT_FALSE(aggregator.Merge({}).ok());
  EXPECT_FALSE(querier.Evaluate(Bytes(5, 0), 1, all_).ok());
}

}  // namespace
}  // namespace sies::core
