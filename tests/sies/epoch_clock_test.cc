#include "sies/epoch_clock.h"

#include <gtest/gtest.h>

namespace sies::core {
namespace {

TEST(EpochClockTest, CreateValidation) {
  EXPECT_FALSE(EpochClock::Create(0, 0).ok());
  EXPECT_TRUE(EpochClock::Create(1000, 0).ok());
}

TEST(EpochClockTest, EpochBoundaries) {
  auto clock = EpochClock::Create(1000, 5000).value();
  EXPECT_EQ(clock.EpochAt(5000), 0u);
  EXPECT_EQ(clock.EpochAt(5999), 0u);
  EXPECT_EQ(clock.EpochAt(6000), 1u);
  EXPECT_EQ(clock.EpochAt(15000), 10u);
}

TEST(EpochClockTest, BeforeGenesisIsEpochZero) {
  auto clock = EpochClock::Create(1000, 5000).value();
  EXPECT_EQ(clock.EpochAt(0), 0u);
  EXPECT_EQ(clock.EpochAt(4999), 0u);
}

TEST(EpochClockTest, StartInvertsEpochAt) {
  auto clock = EpochClock::Create(250, 1234).value();
  for (uint64_t epoch : {0ull, 1ull, 7ull, 1000ull}) {
    uint64_t start = clock.EpochStartMs(epoch);
    EXPECT_EQ(clock.EpochAt(start), epoch);
    EXPECT_EQ(clock.EpochAt(start + 249), epoch);
    EXPECT_EQ(clock.EpochAt(start + 250), epoch + 1);
  }
}

TEST(EpochClockTest, PlausibilityWindow) {
  auto clock = EpochClock::Create(1000, 0).value();
  // Epoch 10 spans [10000, 11000); skew budget 100 ms.
  EXPECT_TRUE(clock.IsPlausible(10, 10500, 100));
  EXPECT_TRUE(clock.IsPlausible(10, 9950, 100));   // slightly early
  EXPECT_TRUE(clock.IsPlausible(10, 11050, 100));  // slightly late
  EXPECT_FALSE(clock.IsPlausible(10, 9800, 100));
  EXPECT_FALSE(clock.IsPlausible(10, 11200, 100));
  // A whole-epoch replay is far outside any reasonable skew.
  EXPECT_FALSE(clock.IsPlausible(5, 10500, 100));
}

TEST(EpochClockTest, PlausibilityExactSkewBoundaries) {
  auto clock = EpochClock::Create(1000, 0).value();
  // Epoch 10 spans [10000, 11000); skew 100 widens it to [9900, 11100):
  // the low edge is inclusive, the high edge exclusive.
  EXPECT_TRUE(clock.IsPlausible(10, 9900, 100));
  EXPECT_FALSE(clock.IsPlausible(10, 9899, 100));
  EXPECT_TRUE(clock.IsPlausible(10, 11099, 100));
  EXPECT_FALSE(clock.IsPlausible(10, 11100, 100));
  // Zero skew degenerates to the epoch interval itself.
  EXPECT_TRUE(clock.IsPlausible(10, 10000, 0));
  EXPECT_FALSE(clock.IsPlausible(10, 9999, 0));
  EXPECT_TRUE(clock.IsPlausible(10, 10999, 0));
  EXPECT_FALSE(clock.IsPlausible(10, 11000, 0));
}

TEST(EpochClockTest, PlausibilityEpochZeroAndPreGenesis) {
  auto clock = EpochClock::Create(1000, 5000).value();
  // Epoch 0 spans [5000, 6000). A skew reaching back exactly to time 0
  // keeps pre-genesis clocks plausible; the subtraction clamps at 0
  // instead of wrapping when the skew exceeds genesis.
  EXPECT_TRUE(clock.IsPlausible(0, 4900, 100));
  EXPECT_FALSE(clock.IsPlausible(0, 4899, 100));
  EXPECT_TRUE(clock.IsPlausible(0, 0, 5000));
  EXPECT_FALSE(clock.IsPlausible(0, 0, 4999));
  EXPECT_TRUE(clock.IsPlausible(0, 0, 6000));
  // Claims about later epochs stay implausible for a pre-genesis clock.
  EXPECT_FALSE(clock.IsPlausible(3, 0, 100));
}

TEST(EpochClockTest, PlausibilityNearZeroClamps) {
  auto clock = EpochClock::Create(1000, 0).value();
  EXPECT_TRUE(clock.IsPlausible(0, 0, 100));
  EXPECT_TRUE(clock.IsPlausible(0, 50, 5000));  // wide skew, early time
}

}  // namespace
}  // namespace sies::core
