#include "sies/session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace sies::core {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 6;

  SessionTest()
      : params_(MakeParams(kN, /*seed=*/13, /*value_bytes=*/8).value()),
        keys_(GenerateKeys(params_, {3, 1})) {
    all_.resize(kN);
    std::iota(all_.begin(), all_.end(), 0u);
    readings_ = {
        {20.5, 40, 100, 2.5}, {25.0, 45, 200, 2.6}, {30.5, 50, 300, 2.7},
        {35.0, 55, 400, 2.4}, {40.5, 60, 500, 2.3}, {45.0, 65, 600, 2.2}};
  }

  // Runs all phases of `query` over the readings for one epoch.
  StatusOr<QuerierSession::Outcome> Run(const Query& query, uint64_t epoch) {
    AggregatorSession agg(query, params_);
    QuerierSession querier(query, params_, keys_);
    Bytes merged;
    std::vector<Bytes> payloads;
    for (uint32_t i = 0; i < kN; ++i) {
      SourceSession src(query, params_, i, KeysForSource(keys_, i).value());
      auto payload = src.CreatePayload(readings_[i], epoch);
      if (!payload.ok()) return payload.status();
      payloads.push_back(std::move(payload).value());
    }
    auto final_payload = agg.Merge(payloads);
    if (!final_payload.ok()) return final_payload.status();
    last_payload_ = final_payload.value();
    return querier.Evaluate(final_payload.value(), epoch);
  }

  size_t BitmapBytes() const { return WireBitmapBytes(params_); }

  Params params_;
  QuerierKeys keys_;
  std::vector<SensorReading> readings_;
  std::vector<uint32_t> all_;
  Bytes last_payload_;
};

TEST_F(SessionTest, ActiveChannelsPerAggregate) {
  Query q;
  q.aggregate = Aggregate::kSum;
  EXPECT_EQ(ActiveChannels(q).size(), 1u);
  q.aggregate = Aggregate::kAvg;
  EXPECT_EQ(ActiveChannels(q).size(), 2u);
  q.aggregate = Aggregate::kStddev;
  EXPECT_EQ(ActiveChannels(q).size(), 3u);
}

TEST_F(SessionTest, SumQueryExact) {
  Query q;
  q.aggregate = Aggregate::kSum;
  q.attribute = Field::kTemperature;
  q.scale_pow10 = 1;
  auto outcome = Run(q, 1).value();
  EXPECT_TRUE(outcome.verified);
  // Sum of trunc(temp*10)/10 = (205+250+305+350+405+450)/10 = 196.5.
  EXPECT_DOUBLE_EQ(outcome.result.value, 196.5);
  EXPECT_EQ(last_payload_.size(), BitmapBytes() + params_.PsrBytes());
  EXPECT_EQ(outcome.contributors, all_);
  EXPECT_DOUBLE_EQ(outcome.coverage, 1.0);
}

TEST_F(SessionTest, CountQueryWithPredicate) {
  Query q;
  q.aggregate = Aggregate::kCount;
  q.where = Predicate{Field::kTemperature, CompareOp::kGreater, 30.0};
  auto outcome = Run(q, 2).value();
  EXPECT_TRUE(outcome.verified);
  EXPECT_DOUBLE_EQ(outcome.result.value, 4.0);  // 30.5, 35.0, 40.5, 45.0
}

TEST_F(SessionTest, AvgQueryTwoChannels) {
  Query q;
  q.aggregate = Aggregate::kAvg;
  q.attribute = Field::kHumidity;
  q.scale_pow10 = 0;
  auto outcome = Run(q, 3).value();
  EXPECT_TRUE(outcome.verified);
  // humidity {40,45,50,55,60,65}: mean = 52.5.
  EXPECT_DOUBLE_EQ(outcome.result.value, 52.5);
  EXPECT_EQ(outcome.result.count, kN);
  EXPECT_EQ(last_payload_.size(), BitmapBytes() + 2 * params_.PsrBytes());
}

TEST_F(SessionTest, VarianceQueryThreeChannels) {
  Query q;
  q.aggregate = Aggregate::kVariance;
  q.attribute = Field::kHumidity;
  q.scale_pow10 = 0;
  auto outcome = Run(q, 4).value();
  EXPECT_TRUE(outcome.verified);
  // Population variance of {40,45,50,55,60,65} = 72.9166...
  EXPECT_NEAR(outcome.result.value, 875.0 / 12.0, 1e-9);
  EXPECT_EQ(last_payload_.size(), BitmapBytes() + 3 * params_.PsrBytes());
}

TEST_F(SessionTest, StddevQuery) {
  Query q;
  q.aggregate = Aggregate::kStddev;
  q.attribute = Field::kHumidity;
  auto outcome = Run(q, 5).value();
  EXPECT_TRUE(outcome.verified);
  EXPECT_NEAR(outcome.result.value, std::sqrt(875.0 / 12.0), 1e-6);
}

TEST_F(SessionTest, PredicateWithNoMatchesYieldsZero) {
  Query q;
  q.aggregate = Aggregate::kAvg;
  q.where = Predicate{Field::kTemperature, CompareOp::kGreater, 1000.0};
  auto outcome = Run(q, 6).value();
  EXPECT_TRUE(outcome.verified);
  EXPECT_DOUBLE_EQ(outcome.result.value, 0.0);
  EXPECT_EQ(outcome.result.count, 0u);
}

TEST_F(SessionTest, TamperedPayloadFailsAllAggregates) {
  Query q;
  q.aggregate = Aggregate::kVariance;
  q.attribute = Field::kHumidity;
  ASSERT_TRUE(Run(q, 7).value().verified);
  QuerierSession querier(q, params_, keys_);
  // Byte 0 is the contributor bitmap (bit 4 names a valid source);
  // the later offsets land in the first and third channel ciphertexts.
  for (size_t byte : {size_t{0}, BitmapBytes() + params_.PsrBytes(),
                      BitmapBytes() + 2 * params_.PsrBytes() + 5}) {
    Bytes tampered = last_payload_;
    tampered[byte] ^= 0x10;
    auto outcome = querier.Evaluate(tampered, 7);
    if (outcome.ok()) {
      EXPECT_FALSE(outcome.value().verified) << "byte " << byte;
    }
  }
}

TEST_F(SessionTest, ClearedContributorBitFailsVerification) {
  // A bit cleared in flight hides a source that DID contribute: the
  // querier's share sum is then short one share and must mismatch.
  Query q;
  q.aggregate = Aggregate::kSum;
  q.attribute = Field::kHumidity;
  q.scale_pow10 = 0;
  ASSERT_TRUE(Run(q, 11).value().verified);
  QuerierSession querier(q, params_, keys_);
  Bytes tampered = last_payload_;
  ASSERT_EQ(tampered[0] & 0x08, 0x08);  // source 3 contributed
  tampered[0] = static_cast<uint8_t>(tampered[0] & ~0x08);
  auto outcome = querier.Evaluate(tampered, 11).value();
  EXPECT_FALSE(outcome.verified);
  EXPECT_EQ(outcome.contributors.size(), kN - 1);
}

TEST_F(SessionTest, ReplayAcrossEpochsFails) {
  Query q;
  q.aggregate = Aggregate::kAvg;
  ASSERT_TRUE(Run(q, 8).value().verified);
  QuerierSession querier(q, params_, keys_);
  auto outcome = querier.Evaluate(last_payload_, 9).value();
  EXPECT_FALSE(outcome.verified);
}

TEST_F(SessionTest, PartialMergeYieldsVerifiedPartialResult) {
  // Only sources {0, 2, 5} survive the radio: the merged bitmap names
  // exactly them and the partial SUM verifies over that subset.
  Query q;
  q.aggregate = Aggregate::kSum;
  q.attribute = Field::kHumidity;
  q.scale_pow10 = 0;
  AggregatorSession agg(q, params_);
  QuerierSession querier(q, params_, keys_);
  std::vector<Bytes> payloads;
  for (uint32_t i : {0u, 2u, 5u}) {
    SourceSession src(q, params_, i, KeysForSource(keys_, i).value());
    payloads.push_back(src.CreatePayload(readings_[i], /*epoch=*/4).value());
  }
  auto outcome = querier.Evaluate(agg.Merge(payloads).value(), 4).value();
  EXPECT_TRUE(outcome.verified);
  EXPECT_DOUBLE_EQ(outcome.result.value, 40.0 + 50.0 + 65.0);
  EXPECT_EQ(outcome.contributors, (std::vector<uint32_t>{0, 2, 5}));
  EXPECT_DOUBLE_EQ(outcome.coverage, 3.0 / kN);
}

TEST_F(SessionTest, WidthValidation) {
  Query q;
  q.aggregate = Aggregate::kAvg;
  AggregatorSession agg(q, params_);
  QuerierSession querier(q, params_, keys_);
  EXPECT_FALSE(agg.Merge({Bytes(5, 0)}).ok());
  EXPECT_FALSE(agg.Merge({}).ok());
  EXPECT_FALSE(querier.Evaluate(Bytes(5, 0), 1).ok());
}

TEST_F(SessionTest, ConcurrentQueriesDoNotInterfere) {
  // Two continuous queries with different query_ids run over the same
  // key material at the same epoch; both must verify and be exact.
  Query sum_query;
  sum_query.aggregate = Aggregate::kSum;
  sum_query.attribute = Field::kHumidity;
  sum_query.scale_pow10 = 0;
  sum_query.query_id = 1;
  Query count_query;
  count_query.aggregate = Aggregate::kCount;
  count_query.where =
      Predicate{Field::kTemperature, CompareOp::kGreater, 30.0};
  count_query.query_id = 2;

  auto run_one = [&](const Query& q) {
    AggregatorSession agg(q, params_);
    QuerierSession querier(q, params_, keys_);
    std::vector<Bytes> payloads;
    for (uint32_t i = 0; i < kN; ++i) {
      SourceSession src(q, params_, i, KeysForSource(keys_, i).value());
      payloads.push_back(src.CreatePayload(readings_[i], /*epoch=*/3)
                             .value());
    }
    return querier.Evaluate(agg.Merge(payloads).value(), 3).value();
  };

  auto sum_outcome = run_one(sum_query);
  auto count_outcome = run_one(count_query);
  EXPECT_TRUE(sum_outcome.verified);
  EXPECT_TRUE(count_outcome.verified);
  EXPECT_DOUBLE_EQ(sum_outcome.result.value, 315.0);  // Σ humidity
  EXPECT_DOUBLE_EQ(count_outcome.result.value, 4.0);

  // Cross-query confusion must fail: evaluating query-1 payloads under
  // query-2's session rejects (different PRF inputs).
  AggregatorSession agg1(sum_query, params_);
  std::vector<Bytes> payloads;
  for (uint32_t i = 0; i < kN; ++i) {
    SourceSession src(sum_query, params_, i,
                      KeysForSource(keys_, i).value());
    payloads.push_back(src.CreatePayload(readings_[i], 3).value());
  }
  Query impostor = sum_query;
  impostor.query_id = 3;
  QuerierSession wrong_querier(impostor, params_, keys_);
  auto crossed =
      wrong_querier.Evaluate(agg1.Merge(payloads).value(), 3).value();
  EXPECT_FALSE(crossed.verified);
}

TEST_F(SessionTest, ChannelsAreIndependentlyKeyed) {
  // The same reading encrypted for SUM vs COUNT channels must produce
  // different PSR bytes (channel-salted epochs).
  Query q;
  q.aggregate = Aggregate::kAvg;
  SourceSession src(q, params_, 0, KeysForSource(keys_, 0).value());
  Bytes payload = src.CreatePayload(readings_[0], 1).value();
  auto body = payload.begin() + WireBitmapBytes(params_);
  Bytes sum_psr(body, body + params_.PsrBytes());
  Bytes count_psr(body + params_.PsrBytes(), payload.end());
  EXPECT_NE(sum_psr, count_psr);
}

}  // namespace
}  // namespace sies::core
