#include "sies/result_log.h"

#include <gtest/gtest.h>

namespace sies::core {
namespace {

TEST(ResultLogTest, RecordsInOrder) {
  ResultLog log;
  EXPECT_TRUE(log.Record(1, 100.0, true).ok());
  EXPECT_TRUE(log.Record(2, 110.0, true).ok());
  EXPECT_EQ(log.recorded_epochs(), 2u);
  EXPECT_EQ(log.missed_epochs(), 0u);
  EXPECT_EQ(log.rejected_epochs(), 0u);
}

TEST(ResultLogTest, OutOfOrderRejected) {
  ResultLog log;
  ASSERT_TRUE(log.Record(5, 1.0, true).ok());
  EXPECT_FALSE(log.Record(5, 1.0, true).ok());
  EXPECT_FALSE(log.Record(3, 1.0, true).ok());
  EXPECT_TRUE(log.Record(6, 1.0, true).ok());
}

TEST(ResultLogTest, GapsCountAsMissed) {
  ResultLog log;
  ASSERT_TRUE(log.Record(1, 1.0, true).ok());
  ASSERT_TRUE(log.Record(4, 1.0, true).ok());  // 2 and 3 missing
  EXPECT_EQ(log.missed_epochs(), 2u);
  ASSERT_TRUE(log.Record(10, 1.0, true).ok());
  EXPECT_EQ(log.missed_epochs(), 7u);
}

TEST(ResultLogTest, RejectedCounted) {
  ResultLog log;
  ASSERT_TRUE(log.Record(1, 1.0, true).ok());
  ASSERT_TRUE(log.Record(2, 2.0, false).ok());
  ASSERT_TRUE(log.Record(3, 3.0, false).ok());
  EXPECT_EQ(log.rejected_epochs(), 2u);
}

TEST(ResultLogTest, LastVerifiedSkipsRejected) {
  ResultLog log;
  EXPECT_FALSE(log.LastVerified().has_value());
  ASSERT_TRUE(log.Record(1, 100.0, true).ok());
  ASSERT_TRUE(log.Record(2, 999.0, false).ok());
  ASSERT_EQ(log.LastVerified().value(), 100.0);
  ASSERT_TRUE(log.Record(3, 120.0, true).ok());
  EXPECT_EQ(log.LastVerified().value(), 120.0);
}

TEST(ResultLogTest, StatsOverVerifiedOnly) {
  ResultLog log;
  ASSERT_TRUE(log.Record(1, 10.0, true).ok());
  ASSERT_TRUE(log.Record(2, 1000.0, false).ok());  // excluded
  ASSERT_TRUE(log.Record(3, 20.0, true).ok());
  ASSERT_TRUE(log.Record(4, 30.0, true).ok());
  RollingStats stats = log.Stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.mean, 20.0);
  EXPECT_DOUBLE_EQ(stats.min, 10.0);
  EXPECT_DOUBLE_EQ(stats.max, 30.0);
}

TEST(ResultLogTest, WindowBoundsStats) {
  ResultLog log(/*window=*/3);
  for (uint64_t e = 1; e <= 10; ++e) {
    ASSERT_TRUE(log.Record(e, static_cast<double>(e), true).ok());
  }
  RollingStats stats = log.Stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.min, 8.0);
  EXPECT_DOUBLE_EQ(stats.max, 10.0);
  EXPECT_DOUBLE_EQ(stats.mean, 9.0);
}

TEST(ResultLogTest, UnderAttackAlarm) {
  ResultLog log(/*window=*/4);
  ASSERT_TRUE(log.Record(1, 1.0, true).ok());
  EXPECT_FALSE(log.UnderAttack());
  ASSERT_TRUE(log.Record(2, 1.0, false).ok());
  ASSERT_TRUE(log.Record(3, 1.0, false).ok());
  EXPECT_TRUE(log.UnderAttack(0.25));   // 2/3 rejected
  EXPECT_FALSE(log.UnderAttack(0.75));  // but below a lax threshold
  // Recovery: verified epochs push the rejects out of the window.
  for (uint64_t e = 4; e <= 8; ++e) {
    ASSERT_TRUE(log.Record(e, 1.0, true).ok());
  }
  EXPECT_FALSE(log.UnderAttack(0.25));
}

TEST(ResultLogTest, EmptyLogBehaviour) {
  ResultLog log;
  EXPECT_FALSE(log.UnderAttack());
  EXPECT_EQ(log.Stats().count, 0u);
  EXPECT_FALSE(log.LastVerified().has_value());
}

}  // namespace
}  // namespace sies::core
