#include "sies/params.h"

#include "sies/message_format.h"

#include <gtest/gtest.h>

#include <set>

namespace sies::core {
namespace {

TEST(MakeParamsTest, ReferenceConfiguration) {
  auto params = MakeParams(1024, /*seed=*/1).value();
  EXPECT_EQ(params.num_sources, 1024u);
  EXPECT_EQ(params.value_bytes, 4u);
  EXPECT_EQ(params.share_bytes, 20u);
  EXPECT_EQ(params.pad_bits, 10u);  // ceil(log2 1024)
  EXPECT_EQ(params.prime.BitLength(), 256u);
  EXPECT_EQ(params.PsrBytes(), 32u);  // the paper's 32-byte PSR
  EXPECT_TRUE(params.Validate().ok());
}

TEST(MakeParamsTest, PadBitsTracksN) {
  EXPECT_EQ(MakeParams(1, 1).value().pad_bits, 0u);
  EXPECT_EQ(MakeParams(2, 1).value().pad_bits, 1u);
  EXPECT_EQ(MakeParams(3, 1).value().pad_bits, 2u);
  EXPECT_EQ(MakeParams(1025, 1).value().pad_bits, 11u);
  EXPECT_EQ(MakeParams(16384, 1).value().pad_bits, 14u);
}

TEST(MakeParamsTest, ValueShift) {
  auto params = MakeParams(1024, 1).value();
  EXPECT_EQ(params.ValueShiftBits(), 160u + 10u);
}

TEST(MakeParamsTest, MaxSafeValue) {
  auto params = MakeParams(1024, 1).value();
  // 1024 sources each reporting MaxSafeValue must not overflow 2^32-1.
  EXPECT_LE(static_cast<uint64_t>(params.num_sources) *
                params.MaxSafeValue(),
            (uint64_t{1} << 32) - 1);
  EXPECT_GT(params.MaxSafeValue(), 0u);
}

TEST(MakeParamsTest, EightByteValueField) {
  auto params = MakeParams(1024, 1, /*value_bytes=*/8).value();
  EXPECT_TRUE(params.Validate().ok());
  EXPECT_GT(params.MaxSafeValue(), (uint64_t{1} << 32));
}

TEST(MakeParamsTest, LayoutMustFitUnderPrime) {
  // value 8 bytes + pad + shares 20 bytes: pad must stay small enough.
  // With a 256-bit prime (top bit set), 64 + pad + 160 + 1 <= 256 holds
  // up to pad = 31, i.e. N = 2^31 exactly fits...
  EXPECT_TRUE(MakeParams(1u << 31, 1, /*value_bytes=*/8).ok());
  // ...but one more source pushes pad to 32 bits and must be rejected.
  auto too_big = MakeParams((1u << 31) + 1, 1, /*value_bytes=*/8);
  EXPECT_FALSE(too_big.ok()) << "2^31+1 sources with 8-byte values must "
                                "not fit in a 256-bit prime";
  // A larger prime accommodates it.
  auto bigger_prime = MakeParams((1u << 31) + 1, 1, 8, /*prime_bits=*/320);
  EXPECT_TRUE(bigger_prime.ok());
}

TEST(MakeParamsTest, RejectsZeroSources) {
  EXPECT_FALSE(MakeParams(0, 1).ok());
}

TEST(ValidateTest, CatchesBadFieldSizes) {
  auto params = MakeParams(16, 1).value();
  params.value_bytes = 3;
  EXPECT_FALSE(params.Validate().ok());
  params.value_bytes = 4;
  params.share_bytes = 16;
  EXPECT_FALSE(params.Validate().ok());
  params.share_bytes = 20;
  params.prime = crypto::BigUint();
  EXPECT_FALSE(params.Validate().ok());
}

TEST(ValidateTest, CatchesUndersizedPad) {
  auto params = MakeParams(16, 1).value();
  params.pad_bits = 3;  // 2^3 < 16
  EXPECT_FALSE(params.Validate().ok());
}

TEST(GenerateKeysTest, SizesAndUniqueness) {
  auto params = MakeParams(64, 1).value();
  QuerierKeys keys = GenerateKeys(params, {1, 2, 3});
  EXPECT_EQ(keys.global_key.size(), 20u);
  EXPECT_EQ(keys.source_keys.size(), 64u);
  for (const Bytes& k : keys.source_keys) {
    EXPECT_EQ(k.size(), 20u);
    EXPECT_NE(k, keys.global_key);
  }
  // All pairwise distinct.
  std::set<Bytes> distinct(keys.source_keys.begin(), keys.source_keys.end());
  EXPECT_EQ(distinct.size(), 64u);
}

TEST(GenerateKeysTest, DeterministicPerSeed) {
  auto params = MakeParams(4, 1).value();
  QuerierKeys a = GenerateKeys(params, {9});
  QuerierKeys b = GenerateKeys(params, {9});
  QuerierKeys c = GenerateKeys(params, {10});
  EXPECT_EQ(a.global_key, b.global_key);
  EXPECT_EQ(a.source_keys, b.source_keys);
  EXPECT_NE(a.source_keys[0], c.source_keys[0]);
}

TEST(KeysForSourceTest, ExtractsAndBoundsChecks) {
  auto params = MakeParams(4, 1).value();
  QuerierKeys keys = GenerateKeys(params, {9});
  auto sk = KeysForSource(keys, 2);
  ASSERT_TRUE(sk.ok());
  EXPECT_EQ(sk.value().global_key, keys.global_key);
  EXPECT_EQ(sk.value().source_key, keys.source_keys[2]);
  EXPECT_FALSE(KeysForSource(keys, 4).ok());
}

TEST(TemporalKeysTest, ReducedIntoPrimeField) {
  auto params = MakeParams(16, 1).value();
  Bytes key(20, 0x77);
  for (uint64_t epoch = 0; epoch < 20; ++epoch) {
    crypto::BigUint kt = DeriveEpochGlobalKey(params, key, epoch);
    EXPECT_FALSE(kt.IsZero()) << "K_t must be invertible";
    EXPECT_LT(kt, params.prime);
    EXPECT_LT(DeriveEpochSourceKey(params, key, epoch), params.prime);
  }
}

TEST(TemporalKeysTest, EpochSeparation) {
  auto params = MakeParams(16, 1).value();
  Bytes key(20, 0x77);
  EXPECT_NE(DeriveEpochGlobalKey(params, key, 1),
            DeriveEpochGlobalKey(params, key, 2));
  EXPECT_NE(DeriveEpochSourceKey(params, key, 1),
            DeriveEpochSourceKey(params, key, 2));
  EXPECT_NE(DeriveEpochShare(key, 1), DeriveEpochShare(key, 2));
}

TEST(TemporalKeysTest, KeySeparation) {
  auto params = MakeParams(16, 1).value();
  Bytes k1(20, 0x01), k2(20, 0x02);
  EXPECT_NE(DeriveEpochSourceKey(params, k1, 5),
            DeriveEpochSourceKey(params, k2, 5));
  EXPECT_NE(DeriveEpochShare(k1, 5), DeriveEpochShare(k2, 5));
}

TEST(TemporalKeysTest, ShareIsTwentyBytes) {
  Bytes key(20, 0x33);
  crypto::BigUint share = DeriveEpochShare(key, 3);
  EXPECT_LE(share.BitLength(), 160u);
  EXPECT_FALSE(share.IsZero());  // 2^-160 chance; deterministic here
}

TEST(HardenedProfileTest, Sha256SharesWork) {
  // The hardened profile: 32-byte HMAC-SHA256 shares under a wider prime.
  auto params = MakeParams(64, 1, /*value_bytes=*/4, /*prime_bits=*/352,
                           SharePrf::kHmacSha256)
                    .value();
  EXPECT_EQ(params.share_bytes, 32u);
  EXPECT_EQ(params.PsrBytes(), 44u);
  EXPECT_TRUE(params.Validate().ok());
  Bytes key(20, 0x33);
  crypto::BigUint share = DeriveEpochShare(params, key, 3);
  EXPECT_GT(share.BitLength(), 160u);
  EXPECT_LE(share.BitLength(), 256u);
  // Domain separation: the share differs from the epoch source key.
  EXPECT_NE(share, DeriveEpochSourceKey(params, key, 3));
}

TEST(HardenedProfileTest, Sha256SharesNeedWiderPrime) {
  // 32 + pad + 256 + 1 > 256: the default prime cannot host them.
  EXPECT_FALSE(MakeParams(64, 1, 4, 256, SharePrf::kHmacSha256).ok());
}

TEST(HardenedProfileTest, ValidateCatchesPrfSizeMismatch) {
  auto params = MakeParams(16, 1, 4, 352, SharePrf::kHmacSha256).value();
  params.share_bytes = 20;  // inconsistent with the PRF
  EXPECT_FALSE(params.Validate().ok());
}

TEST(HardenedProfileTest, EndToEndExactAndSecure) {
  auto params = MakeParams(8, 5, 4, 352, SharePrf::kHmacSha256).value();
  QuerierKeys keys = GenerateKeys(params, {7});
  // Full pipeline through Source/Querier (they use params.share_prf).
  crypto::BigUint sum_cipher;
  uint64_t expected = 0;
  for (uint32_t i = 0; i < 8; ++i) {
    Bytes k_i = keys.source_keys[i];
    uint64_t v = 100 + i;
    expected += v;
    auto m = PackMessage(params, v, DeriveEpochShare(params, k_i, 1))
                 .value();
    auto c = Encrypt(params, m, DeriveEpochGlobalKey(params, keys.global_key, 1),
                     DeriveEpochSourceKey(params, k_i, 1))
                 .value();
    sum_cipher =
        crypto::BigUint::ModAdd(sum_cipher, c, params.prime).value();
  }
  // Decrypt + verify by hand (mirrors Querier::Evaluate).
  crypto::BigUint key_sum, share_sum;
  for (uint32_t i = 0; i < 8; ++i) {
    key_sum = crypto::BigUint::ModAdd(
                  key_sum,
                  DeriveEpochSourceKey(params, keys.source_keys[i], 1),
                  params.prime)
                  .value();
    share_sum = crypto::BigUint::Add(
        share_sum, DeriveEpochShare(params, keys.source_keys[i], 1));
  }
  auto m = Decrypt(params, sum_cipher,
                   DeriveEpochGlobalKey(params, keys.global_key, 1), key_sum)
               .value();
  auto unpacked = UnpackMessage(params, m).value();
  EXPECT_EQ(unpacked.sum, expected);
  EXPECT_EQ(unpacked.share_sum, share_sum);
}

}  // namespace
}  // namespace sies::core
