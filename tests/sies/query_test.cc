#include "sies/query.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sies::core {
namespace {

SensorReading MakeReading(double temp) {
  SensorReading r;
  r.temperature = temp;
  r.humidity = 55.0;
  r.light = 300.0;
  r.voltage = 2.7;
  return r;
}

TEST(PredicateTest, AllOperators) {
  SensorReading r = MakeReading(25.0);
  EXPECT_TRUE((Predicate{Field::kTemperature, CompareOp::kLess, 30}).Matches(r));
  EXPECT_FALSE((Predicate{Field::kTemperature, CompareOp::kLess, 25}).Matches(r));
  EXPECT_TRUE(
      (Predicate{Field::kTemperature, CompareOp::kLessEqual, 25}).Matches(r));
  EXPECT_TRUE(
      (Predicate{Field::kTemperature, CompareOp::kGreater, 20}).Matches(r));
  EXPECT_FALSE(
      (Predicate{Field::kTemperature, CompareOp::kGreater, 25}).Matches(r));
  EXPECT_TRUE(
      (Predicate{Field::kTemperature, CompareOp::kGreaterEqual, 25}).Matches(r));
  EXPECT_TRUE((Predicate{Field::kTemperature, CompareOp::kEqual, 25}).Matches(r));
}

TEST(PredicateTest, FieldSelection) {
  SensorReading r = MakeReading(25.0);
  EXPECT_TRUE((Predicate{Field::kHumidity, CompareOp::kEqual, 55}).Matches(r));
  EXPECT_TRUE((Predicate{Field::kLight, CompareOp::kEqual, 300}).Matches(r));
  EXPECT_TRUE((Predicate{Field::kVoltage, CompareOp::kEqual, 2.7}).Matches(r));
}

TEST(QueryTest, ToSqlMatchesTemplate) {
  Query q;
  q.aggregate = Aggregate::kSum;
  q.attribute = Field::kTemperature;
  q.epoch_duration_ms = 500;
  EXPECT_EQ(q.ToSql(),
            "SELECT SUM(temperature) FROM Sensors EPOCH DURATION 500ms");
  q.where = Predicate{Field::kHumidity, CompareOp::kGreater, 40};
  EXPECT_NE(q.ToSql().find("WHERE humidity > "), std::string::npos);
}

TEST(ChannelCountTest, PerAggregate) {
  EXPECT_EQ(ChannelCount(Aggregate::kSum), 1u);
  EXPECT_EQ(ChannelCount(Aggregate::kCount), 1u);
  EXPECT_EQ(ChannelCount(Aggregate::kAvg), 2u);
  EXPECT_EQ(ChannelCount(Aggregate::kVariance), 3u);
  EXPECT_EQ(ChannelCount(Aggregate::kStddev), 3u);
}

TEST(UsesChannelTest, ChannelSelection) {
  EXPECT_TRUE(UsesChannel(Aggregate::kSum, Channel::kSum));
  EXPECT_FALSE(UsesChannel(Aggregate::kSum, Channel::kCount));
  EXPECT_TRUE(UsesChannel(Aggregate::kCount, Channel::kCount));
  EXPECT_FALSE(UsesChannel(Aggregate::kCount, Channel::kSum));
  EXPECT_TRUE(UsesChannel(Aggregate::kAvg, Channel::kSum));
  EXPECT_TRUE(UsesChannel(Aggregate::kAvg, Channel::kCount));
  EXPECT_FALSE(UsesChannel(Aggregate::kAvg, Channel::kSumSquares));
  EXPECT_TRUE(UsesChannel(Aggregate::kVariance, Channel::kSumSquares));
}

TEST(ChannelValueTest, ScalingAndTruncation) {
  Query q;
  q.scale_pow10 = 2;
  SensorReading r = MakeReading(23.4567);
  EXPECT_EQ(ChannelValue(q, Channel::kSum, r).value(), 2345u);
  q.scale_pow10 = 4;
  EXPECT_EQ(ChannelValue(q, Channel::kSum, r).value(), 234567u);
  q.scale_pow10 = 0;
  EXPECT_EQ(ChannelValue(q, Channel::kSum, r).value(), 23u);
}

TEST(ChannelValueTest, PredicateMismatchTransmitsZero) {
  Query q;
  q.where = Predicate{Field::kTemperature, CompareOp::kGreater, 100.0};
  SensorReading r = MakeReading(25.0);
  EXPECT_EQ(ChannelValue(q, Channel::kSum, r).value(), 0u);
  EXPECT_EQ(ChannelValue(q, Channel::kCount, r).value(), 0u);
  EXPECT_EQ(ChannelValue(q, Channel::kSumSquares, r).value(), 0u);
}

TEST(ChannelValueTest, CountChannelIsIndicator) {
  Query q;
  SensorReading r = MakeReading(25.0);
  EXPECT_EQ(ChannelValue(q, Channel::kCount, r).value(), 1u);
}

TEST(ChannelValueTest, SumSquaresSquares) {
  Query q;
  q.scale_pow10 = 0;
  SensorReading r = MakeReading(12.0);
  EXPECT_EQ(ChannelValue(q, Channel::kSumSquares, r).value(), 144u);
}

TEST(ChannelValueTest, NegativeAttributeRejected) {
  Query q;
  SensorReading r = MakeReading(-5.0);
  EXPECT_FALSE(ChannelValue(q, Channel::kSum, r).ok());
}

TEST(ChannelEpochTest, DisjointAcrossChannels) {
  std::set<uint64_t> salted;
  for (uint64_t epoch : {0ull, 1ull, 2ull, 100ull}) {
    for (Channel ch :
         {Channel::kSum, Channel::kSumSquares, Channel::kCount}) {
      EXPECT_TRUE(salted.insert(ChannelEpoch(epoch, ch)).second);
    }
  }
}

TEST(SaltedEpochTest, DisjointAcrossQueriesChannelsEpochs) {
  std::set<uint64_t> salted;
  for (uint64_t epoch : {0ull, 1ull, 77ull, (1ull << 47)}) {
    for (uint32_t query_id : {0u, 1u, 2u, 16383u}) {
      for (Channel ch :
           {Channel::kSum, Channel::kSumSquares, Channel::kCount}) {
        EXPECT_TRUE(salted.insert(SaltedEpoch(epoch, query_id, ch)).second)
            << "collision at epoch=" << epoch << " qid=" << query_id;
      }
    }
  }
}

TEST(SaltedEpochTest, DefaultQueryIdMatchesChannelEpoch) {
  EXPECT_EQ(ChannelEpoch(5, Channel::kSum), SaltedEpoch(5, 0, Channel::kSum));
}

TEST(CombineChannelsTest, SumUndoesScaling) {
  Query q;
  q.aggregate = Aggregate::kSum;
  q.scale_pow10 = 2;
  auto result = CombineChannels(q, 123456, 0, 0).value();
  EXPECT_DOUBLE_EQ(result.value, 1234.56);
}

TEST(CombineChannelsTest, CountPassesThrough) {
  Query q;
  q.aggregate = Aggregate::kCount;
  EXPECT_DOUBLE_EQ(CombineChannels(q, 0, 0, 37).value().value, 37.0);
}

TEST(CombineChannelsTest, AvgDividesByCount) {
  Query q;
  q.aggregate = Aggregate::kAvg;
  q.scale_pow10 = 1;
  // sum of scaled values 100+200+300 = 600 over 3 sources -> 20.0
  EXPECT_DOUBLE_EQ(CombineChannels(q, 600, 0, 3).value().value, 20.0);
  EXPECT_FALSE(CombineChannels(q, 600, 0, 0).ok());
}

TEST(CombineChannelsTest, VarianceAndStddev) {
  Query q;
  q.aggregate = Aggregate::kVariance;
  q.scale_pow10 = 0;
  // values {2, 4, 6}: mean 4, E[x^2] = (4+16+36)/3, var = 8/3.
  auto var = CombineChannels(q, 12, 56, 3).value();
  EXPECT_NEAR(var.value, 8.0 / 3.0, 1e-9);
  q.aggregate = Aggregate::kStddev;
  auto sd = CombineChannels(q, 12, 56, 3).value();
  EXPECT_NEAR(sd.value, std::sqrt(8.0 / 3.0), 1e-9);
}

TEST(CombineChannelsTest, VarianceScalingUndone) {
  Query q;
  q.aggregate = Aggregate::kVariance;
  q.scale_pow10 = 2;
  // scaled values {200, 400, 600} = raw {2,4,6}: var must still be 8/3.
  auto var = CombineChannels(q, 1200, 560000, 3).value();
  EXPECT_NEAR(var.value, 8.0 / 3.0, 1e-9);
}

TEST(CombineChannelsTest, VarianceNumericGuard) {
  Query q;
  q.aggregate = Aggregate::kVariance;
  q.scale_pow10 = 0;
  // Identical values: variance exactly 0 (no negative drift).
  auto var = CombineChannels(q, 30, 300, 3).value();
  EXPECT_DOUBLE_EQ(var.value, 0.0);
}

}  // namespace
}  // namespace sies::core
