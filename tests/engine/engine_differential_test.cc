// Differential test: the multi-query engine must produce outcomes
// BIT-IDENTICAL to K independent single-query QuerierSessions over the
// same readings — same values, same verified flags, same contributor
// sets, same coverage — across query mixes, partial participation
// (loss), and tampering. Also: per-query fault isolation (corrupting
// one physical channel fails exactly the queries reading it) and
// thread-count invariance.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/engine.h"
#include "sies/session.h"
#include "workload/workload.h"

namespace sies::engine {
namespace {

constexpr uint32_t kN = 16;
constexpr uint64_t kSeed = 11;

core::Query MakeQuery(core::Aggregate aggregate, uint32_t id,
                      core::Field attribute = core::Field::kTemperature,
                      uint32_t scale = 2) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = attribute;
  q.scale_pow10 = scale;
  q.query_id = id;
  return q;
}

class Fixture {
 public:
  Fixture() {
    params_ = core::MakeParams(kN, kSeed, /*value_bytes=*/8).value();
    keys_ = core::GenerateKeys(params_, EncodeUint64(kSeed));
    workload::TraceConfig tc;
    tc.num_sources = kN;
    tc.seed = kSeed;
    trace_ = std::make_unique<workload::TraceGenerator>(tc);
  }

  MultiQueryEngine MakeEngine() const { return MultiQueryEngine(params_, keys_); }

  /// One engine epoch with only `participants` transmitting.
  StatusOr<Bytes> EngineRound(const MultiQueryEngine& eng,
                              const std::vector<uint32_t>& participants,
                              uint64_t epoch) {
    std::vector<Bytes> payloads;
    for (uint32_t i : participants) {
      auto p = eng.CreateSourcePayload(i, trace_->ReadingAt(i, epoch), epoch);
      if (!p.ok()) return p.status();
      payloads.push_back(std::move(p).value());
    }
    return eng.Merge(payloads);
  }

  /// The same epoch through an independent single-query session.
  StatusOr<core::EpochOutcome> SessionEpoch(
      const core::Query& query, const std::vector<uint32_t>& participants,
      uint64_t epoch) {
    std::vector<Bytes> payloads;
    for (uint32_t i : participants) {
      core::SourceSession source(query, params_, i,
                                 core::KeysForSource(keys_, i).value());
      auto p = source.CreatePayload(trace_->ReadingAt(i, epoch), epoch);
      if (!p.ok()) return p.status();
      payloads.push_back(std::move(p).value());
    }
    core::AggregatorSession aggregator(query, params_);
    auto merged = aggregator.Merge(payloads);
    if (!merged.ok()) return merged.status();
    core::QuerierSession querier(query, params_, keys_);
    return querier.Evaluate(merged.value(), epoch);
  }

  /// Asserts outcome equality for every query of the mix at `epoch`.
  void ExpectBitIdentical(const std::vector<core::Query>& mix,
                          const std::vector<uint32_t>& participants,
                          uint64_t epoch) {
    MultiQueryEngine eng = MakeEngine();
    for (const core::Query& q : mix) {
      ASSERT_TRUE(eng.Admit(q, 1).ok());
    }
    auto merged = EngineRound(eng, participants, epoch);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    auto outcomes = eng.Evaluate(merged.value(), epoch);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    ASSERT_EQ(outcomes.value().size(), mix.size());

    for (size_t i = 0; i < mix.size(); ++i) {
      const QueryEpochOutcome& got = outcomes.value()[i];
      EXPECT_EQ(got.query_id, mix[i].query_id);
      auto want = SessionEpoch(mix[i], participants, epoch);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      // Bit-identical, not approximately equal: both paths run the same
      // integer channel sums through the same AssembleOutcome doubles.
      EXPECT_EQ(got.outcome.result.value, want.value().result.value)
          << "query " << mix[i].ToSql();
      EXPECT_EQ(got.outcome.result.count, want.value().result.count);
      EXPECT_EQ(got.outcome.verified, want.value().verified);
      EXPECT_EQ(got.outcome.contributors, want.value().contributors);
      EXPECT_EQ(got.outcome.coverage, want.value().coverage);
    }
  }

  core::Params params_{};
  core::QuerierKeys keys_;
  std::unique_ptr<workload::TraceGenerator> trace_;
};

std::vector<uint32_t> AllSources() {
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < kN; ++i) all.push_back(i);
  return all;
}

std::vector<uint32_t> EveryOtherSource() {
  std::vector<uint32_t> some;
  for (uint32_t i = 0; i < kN; i += 2) some.push_back(i);
  return some;
}

// Mix 1: plain aggregates sharing all three channels.
std::vector<core::Query> MixShared() {
  return {MakeQuery(core::Aggregate::kAvg, 0),
          MakeQuery(core::Aggregate::kVariance, 1),
          MakeQuery(core::Aggregate::kSum, 2)};
}

// Mix 2: predicated queries plus an unpredicated STDDEV.
std::vector<core::Query> MixPredicated() {
  core::Predicate hot{core::Field::kTemperature,
                      core::CompareOp::kGreaterEqual, 30.0};
  core::Query count_hot = MakeQuery(core::Aggregate::kCount, 0);
  count_hot.where = hot;
  core::Query avg_hot = MakeQuery(core::Aggregate::kAvg, 1);
  avg_hot.where = hot;
  return {count_hot, avg_hot, MakeQuery(core::Aggregate::kStddev, 2)};
}

// Mix 3: mixed attributes and scales, non-contiguous ids.
std::vector<core::Query> MixAttributes() {
  return {MakeQuery(core::Aggregate::kCount, 0),
          MakeQuery(core::Aggregate::kSum, 3, core::Field::kHumidity, 1),
          MakeQuery(core::Aggregate::kAvg, 7, core::Field::kHumidity, 1)};
}

TEST(EngineDifferentialTest, SharedMixMatchesSessionsFullParticipation) {
  Fixture f;
  for (uint64_t epoch : {1u, 2u, 5u}) {
    f.ExpectBitIdentical(MixShared(), AllSources(), epoch);
  }
}

TEST(EngineDifferentialTest, SharedMixMatchesSessionsUnderLoss) {
  Fixture f;
  f.ExpectBitIdentical(MixShared(), EveryOtherSource(), 3);
}

TEST(EngineDifferentialTest, PredicatedMixMatchesSessions) {
  Fixture f;
  f.ExpectBitIdentical(MixPredicated(), AllSources(), 1);
  f.ExpectBitIdentical(MixPredicated(), EveryOtherSource(), 2);
}

TEST(EngineDifferentialTest, AttributeMixMatchesSessions) {
  Fixture f;
  f.ExpectBitIdentical(MixAttributes(), AllSources(), 1);
  f.ExpectBitIdentical(MixAttributes(), EveryOtherSource(), 4);
}

TEST(EngineDifferentialTest, TamperedChannelMatchesTamperedSession) {
  // Corrupt the final byte of the envelope (inside the LAST physical
  // channel's PSR) on both paths: the engine must agree with the
  // session reading that channel — unverified on both sides.
  Fixture f;
  MultiQueryEngine eng = f.MakeEngine();
  core::Query sum = MakeQuery(core::Aggregate::kSum, 0);
  core::Query var = MakeQuery(core::Aggregate::kVariance, 1);
  ASSERT_TRUE(eng.Admit(sum, 1).ok());
  ASSERT_TRUE(eng.Admit(var, 1).ok());

  auto merged = f.EngineRound(eng, AllSources(), 1);
  ASSERT_TRUE(merged.ok());
  Bytes tampered = merged.value();
  tampered.back() ^= 0x01;
  auto outcomes = eng.Evaluate(tampered, 1);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes.value().size(), 2u);
  // Wire order (salt_id, kind): (0,SUM), (1,SUMSQ), (1,COUNT) — the
  // corrupted tail is VARIANCE's COUNT channel.
  EXPECT_TRUE(outcomes.value()[0].outcome.verified)
      << "SUM does not read the corrupted channel";
  EXPECT_FALSE(outcomes.value()[1].outcome.verified)
      << "VARIANCE reads the corrupted channel";
}

TEST(EngineDifferentialTest, ThreadCountDoesNotChangeOutcomes) {
  Fixture f;
  MultiQueryEngine serial = f.MakeEngine();
  MultiQueryEngine pooled = f.MakeEngine();
  common::ThreadPool pool(4);
  pooled.SetThreadPool(&pool);
  for (const core::Query& q : MixShared()) {
    ASSERT_TRUE(serial.Admit(q, 1).ok());
    ASSERT_TRUE(pooled.Admit(q, 1).ok());
  }
  auto merged = f.EngineRound(serial, AllSources(), 2);
  ASSERT_TRUE(merged.ok());
  auto a = serial.Evaluate(merged.value(), 2);
  auto b = pooled.Evaluate(merged.value(), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].outcome.result.value,
              b.value()[i].outcome.result.value);
    EXPECT_EQ(a.value()[i].outcome.verified, b.value()[i].outcome.verified);
    EXPECT_EQ(a.value()[i].outcome.contributors,
              b.value()[i].outcome.contributors);
  }
}

TEST(EngineDifferentialTest, AdmissionOrderDoesNotChangeAnswers) {
  // The same mix admitted in a different order dedups onto different
  // salt slots, but every query's ANSWER must be unchanged.
  Fixture f;
  MultiQueryEngine forward = f.MakeEngine();
  MultiQueryEngine reverse = f.MakeEngine();
  std::vector<core::Query> mix = MixShared();
  for (const core::Query& q : mix) ASSERT_TRUE(forward.Admit(q, 1).ok());
  for (auto it = mix.rbegin(); it != mix.rend(); ++it) {
    ASSERT_TRUE(reverse.Admit(*it, 1).ok());
  }
  auto fwd_merged = f.EngineRound(forward, AllSources(), 1);
  auto rev_merged = f.EngineRound(reverse, AllSources(), 1);
  ASSERT_TRUE(fwd_merged.ok());
  ASSERT_TRUE(rev_merged.ok());
  auto fwd = forward.Evaluate(fwd_merged.value(), 1);
  auto rev = reverse.Evaluate(rev_merged.value(), 1);
  ASSERT_TRUE(fwd.ok());
  ASSERT_TRUE(rev.ok());
  for (const QueryEpochOutcome& fo : fwd.value()) {
    bool found = false;
    for (const QueryEpochOutcome& ro : rev.value()) {
      if (ro.query_id != fo.query_id) continue;
      found = true;
      EXPECT_EQ(fo.outcome.result.value, ro.outcome.result.value);
      EXPECT_TRUE(fo.outcome.verified);
      EXPECT_TRUE(ro.outcome.verified);
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace sies::engine
