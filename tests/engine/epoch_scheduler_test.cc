// EpochScheduler + engine runner integration: one wire round per epoch
// over the simulated network, live admission mid-run, teardown freeing
// slots, and composition with the loss/adversary machinery.
#include "engine/epoch_scheduler.h"

#include <gtest/gtest.h>

#include "runner/engine_runner.h"

namespace sies::engine {
namespace {

core::Query MakeQuery(core::Aggregate aggregate, uint32_t id,
                      core::Field attribute = core::Field::kTemperature) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = attribute;
  q.scale_pow10 = 2;
  q.query_id = id;
  return q;
}

runner::EngineExperimentConfig BaseConfig() {
  runner::EngineExperimentConfig config;
  config.num_sources = 32;
  config.fanout = 4;
  config.epochs = 10;
  config.seed = 7;
  config.threads = 1;
  return config;
}

TEST(EpochSchedulerTest, BatchedQueriesAllVerify) {
  runner::EngineExperimentConfig config = BaseConfig();
  config.queries.push_back({MakeQuery(core::Aggregate::kAvg, 0)});
  config.queries.push_back({MakeQuery(core::Aggregate::kVariance, 1)});
  config.queries.push_back({MakeQuery(core::Aggregate::kSum, 2)});
  auto result = runner::RunEngineExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().all_verified);
  EXPECT_EQ(result.value().answered_epochs, 10u);
  // 3 queries, 6 naive channels, 3 physical slots per epoch.
  EXPECT_EQ(result.value().channel_epochs, 30u);
  EXPECT_EQ(result.value().naive_channel_epochs, 60u);
  for (const runner::EngineQueryStats& qs : result.value().queries) {
    EXPECT_EQ(qs.verified_epochs, 10u) << qs.sql;
    EXPECT_EQ(qs.mean_coverage, 1.0);
  }
}

TEST(EpochSchedulerTest, MidRunAdmissionVerifiesFromItsEpoch) {
  runner::EngineExperimentConfig config = BaseConfig();
  config.queries.push_back({MakeQuery(core::Aggregate::kSum, 0)});
  config.queries.push_back(
      {MakeQuery(core::Aggregate::kAvg, 1), /*admit_epoch=*/6});
  auto result = runner::RunEngineExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().all_verified);
  ASSERT_EQ(result.value().queries.size(), 2u);
  EXPECT_EQ(result.value().queries[0].verified_epochs, 10u);
  // Admitted at epoch 6 of 10: exactly epochs 6..10, all verified with
  // full contributor-bitmap semantics from the first one.
  EXPECT_EQ(result.value().queries[1].answered_epochs, 5u);
  EXPECT_EQ(result.value().queries[1].verified_epochs, 5u);
  EXPECT_EQ(result.value().queries[1].mean_coverage, 1.0);
  // Epochs 1-5 run 1 channel, 6-10 run 2 (AVG shares the SUM slot).
  EXPECT_EQ(result.value().channel_epochs, 5u * 1 + 5u * 2);
}

TEST(EpochSchedulerTest, TeardownFreesSlotsAndSkipsEmptyRounds) {
  runner::EngineExperimentConfig config = BaseConfig();
  config.queries.push_back({MakeQuery(core::Aggregate::kVariance, 0),
                            /*admit_epoch=*/1, /*teardown_epoch=*/4});
  auto result = runner::RunEngineExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Live for epochs 1..3 only; epochs 4..10 have an empty plan and are
  // skipped without a radio round.
  EXPECT_EQ(result.value().channel_epochs, 3u * 3);
  EXPECT_EQ(result.value().answered_epochs, 3u);
  EXPECT_EQ(result.value().idle_epochs, 7u);
  EXPECT_EQ(result.value().queries[0].verified_epochs, 3u);
}

TEST(EpochSchedulerTest, LossDegradesGracefullyPerQuery) {
  runner::EngineExperimentConfig config = BaseConfig();
  config.queries.push_back({MakeQuery(core::Aggregate::kSum, 0)});
  config.queries.push_back({MakeQuery(core::Aggregate::kCount, 1)});
  config.loss_rate = 0.15;
  config.max_retries = 1;
  auto result = runner::RunEngineExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const runner::EngineExperimentResult& r = result.value();
  // Loss must not break verification — answered epochs verify over
  // exactly the contributing set, for every co-batched query alike.
  EXPECT_TRUE(r.all_verified);
  EXPECT_GT(r.answered_epochs, 0u);
  for (const runner::EngineQueryStats& qs : r.queries) {
    EXPECT_EQ(qs.unverified_epochs, 0u);
    EXPECT_EQ(qs.answered_epochs, r.answered_epochs)
        << "co-batched queries share the wire and thus the loss fate";
    EXPECT_LE(qs.mean_coverage, 1.0);
    EXPECT_GT(qs.mean_coverage, 0.0);
  }
}

TEST(EpochSchedulerTest, TamperFailsOnlyTheQueriesReadingTheChannel) {
  runner::EngineExperimentConfig config = BaseConfig();
  // Wire order: (0,SUM) then (1,SUMSQ), (1,COUNT). The tamper adversary
  // flips a trailing payload bit — inside VARIANCE's COUNT channel.
  config.queries.push_back({MakeQuery(core::Aggregate::kSum, 0)});
  config.queries.push_back({MakeQuery(core::Aggregate::kVariance, 1)});
  config.adversary = runner::AdversaryKind::kTamper;
  auto result = runner::RunEngineExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const runner::EngineExperimentResult& r = result.value();
  EXPECT_FALSE(r.all_verified);
  ASSERT_EQ(r.queries.size(), 2u);
  EXPECT_EQ(r.queries[0].verified_epochs, r.queries[0].answered_epochs)
      << "SUM rides an untouched channel and must keep verifying";
  EXPECT_EQ(r.queries[0].unverified_epochs, 0u);
  EXPECT_EQ(r.queries[1].verified_epochs, 0u)
      << "VARIANCE reads the tampered channel and must never verify";
  EXPECT_GT(r.queries[1].unverified_epochs, 0u);
}

TEST(EpochSchedulerTest, ThreadedRunMatchesSerialRun) {
  runner::EngineExperimentConfig config = BaseConfig();
  config.queries.push_back({MakeQuery(core::Aggregate::kAvg, 0)});
  config.queries.push_back(
      {MakeQuery(core::Aggregate::kStddev, 1, core::Field::kHumidity)});
  auto serial = runner::RunEngineExperiment(config);
  config.threads = 4;
  auto threaded = runner::RunEngineExperiment(config);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(threaded.ok());
  ASSERT_EQ(serial.value().queries.size(), threaded.value().queries.size());
  for (size_t i = 0; i < serial.value().queries.size(); ++i) {
    EXPECT_EQ(serial.value().queries[i].last_value,
              threaded.value().queries[i].last_value);
    EXPECT_EQ(serial.value().queries[i].verified_epochs,
              threaded.value().queries[i].verified_epochs);
  }
}

TEST(EpochSchedulerTest, EngineCachesScaleWithTheChannelPlan) {
  // The EpochKeyCache satellite: admissions re-reserve the caches to
  // 2x the live channel count, so a wide mix does not thrash.
  auto params = core::MakeParams(8, 3, /*value_bytes=*/8).value();
  auto keys = core::GenerateKeys(params, EncodeUint64(3));
  MultiQueryEngine eng(params, keys);
  ASSERT_TRUE(eng.Admit(MakeQuery(core::Aggregate::kVariance, 0), 1).ok());
  ASSERT_TRUE(
      eng.Admit(MakeQuery(core::Aggregate::kVariance, 1,
                          core::Field::kHumidity), 1).ok());
  // 5 physical channels live (the unpredicated COUNT slot is shared
  // across attributes) -> both caches re-reserve to >= 10 entries.
  ASSERT_EQ(eng.registry().plan().Count(), 5u);
  for (uint64_t epoch = 1; epoch <= 20; ++epoch) {
    std::vector<Bytes> payloads;
    for (uint32_t i = 0; i < 8; ++i) {
      core::SensorReading r{20.0 + i, 40.0 + i, 0.0, 2.5};
      auto p = eng.CreateSourcePayload(i, r, epoch);
      ASSERT_TRUE(p.ok());
      payloads.push_back(std::move(p).value());
    }
    auto merged = eng.Merge(payloads);
    ASSERT_TRUE(merged.ok());
    auto outcomes = eng.Evaluate(merged.value(), epoch);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    for (const QueryEpochOutcome& qo : outcomes.value()) {
      EXPECT_TRUE(qo.outcome.verified);
    }
  }
  // The cache is re-reserved to 2x the 5 live channels, so within an
  // epoch every salted epoch's K_t is derived exactly ONCE and shared
  // by all 8 sources: 5 misses per epoch, 7x that in hits. A fixed
  // too-small capacity would evict entries mid-epoch and re-derive
  // (extra misses). FIFO turnover of PAST epochs' entries is fine —
  // the simulator never revisits them.
  const auto stats = eng.SourceCacheStats();
  EXPECT_EQ(stats.global_misses, 5u * 20u);
  EXPECT_EQ(stats.global_hits, 5u * 20u * 7u);
}

}  // namespace
}  // namespace sies::engine
