// Differential test for compiled range queries: the engine's dyadic
// bucket channels must produce answers BIT-IDENTICAL to (a) one direct
// band QuerierSession evaluating the predicate at the source, and (b)
// brute-force per-bucket independent QuerierSessions whose outcomes are
// summed — across full participation, loss, tampering, and live
// admission — while using at most 2 * ceil(log2 D) channels per kind.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "engine/engine.h"
#include "predicate/compiler.h"
#include "predicate/dyadic.h"
#include "sies/session.h"
#include "workload/workload.h"

namespace sies::engine {
namespace {

constexpr uint32_t kN = 16;
constexpr uint64_t kSeed = 23;

core::Query BandQuery(core::Aggregate aggregate, uint32_t id, double lo,
                      double hi, uint32_t scale = 2,
                      core::Field field = core::Field::kTemperature) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = field;
  q.scale_pow10 = scale;
  q.query_id = id;
  core::Band band;
  band.field = field;
  band.lo = lo;
  band.hi = hi;
  q.band = band;
  return q;
}

core::Query PlainQuery(core::Aggregate aggregate, uint32_t id) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = core::Field::kTemperature;
  q.scale_pow10 = 2;
  q.query_id = id;
  return q;
}

class Fixture {
 public:
  Fixture() {
    params_ = core::MakeParams(kN, kSeed, /*value_bytes=*/8).value();
    keys_ = core::GenerateKeys(params_, EncodeUint64(kSeed));
    workload::TraceConfig tc;
    tc.num_sources = kN;
    tc.seed = kSeed;
    trace_ = std::make_unique<workload::TraceGenerator>(tc);
  }

  MultiQueryEngine MakeEngine() const {
    return MultiQueryEngine(params_, keys_);
  }

  StatusOr<Bytes> EngineRound(const MultiQueryEngine& eng,
                              const std::vector<uint32_t>& participants,
                              uint64_t epoch) {
    std::vector<Bytes> payloads;
    for (uint32_t i : participants) {
      auto p = eng.CreateSourcePayload(i, trace_->ReadingAt(i, epoch), epoch);
      if (!p.ok()) return p.status();
      payloads.push_back(std::move(p).value());
    }
    return eng.Merge(payloads);
  }

  /// The same epoch through ONE independent session (the direct band
  /// path: sources gate their transmission on band membership).
  StatusOr<core::EpochOutcome> SessionEpoch(
      const core::Query& query, const std::vector<uint32_t>& participants,
      uint64_t epoch) {
    std::vector<Bytes> payloads;
    for (uint32_t i : participants) {
      core::SourceSession source(query, params_, i,
                                 core::KeysForSource(keys_, i).value());
      auto p = source.CreatePayload(trace_->ReadingAt(i, epoch), epoch);
      if (!p.ok()) return p.status();
      payloads.push_back(std::move(p).value());
    }
    core::AggregatorSession aggregator(query, params_);
    auto merged = aggregator.Merge(payloads);
    if (!merged.ok()) return merged.status();
    core::QuerierSession querier(query, params_, keys_);
    return querier.Evaluate(merged.value(), epoch);
  }

  /// Brute force: one fully independent session PER DYADIC BUCKET of
  /// the band, summing counts and (integer-valued) sums across the
  /// buckets. Exact because the cover partitions the band.
  struct BucketedTruth {
    uint64_t count = 0;
    double value_sum = 0.0;  ///< Σ per-bucket values (exact integers)
    bool verified = true;
    size_t buckets = 0;
  };
  StatusOr<BucketedTruth> PerBucketSessions(
      const core::Query& query, const std::vector<uint32_t>& participants,
      uint64_t epoch) {
    auto scaled = predicate::QuantizeBand(*query.band, query.scale_pow10);
    if (!scaled.ok()) return scaled.status();
    auto cover =
        predicate::DyadicDecompose(scaled.value().lo, scaled.value().hi);
    if (!cover.ok()) return cover.status();
    const double descale = std::pow(10.0, query.scale_pow10);
    BucketedTruth truth;
    truth.buckets = cover.value().size();
    for (const predicate::DyadicInterval& iv : cover.value()) {
      core::Query bucket = query;
      bucket.band->lo = static_cast<double>(iv.Lo()) / descale;
      bucket.band->hi = static_cast<double>(iv.Hi()) / descale;
      auto outcome = SessionEpoch(bucket, participants, epoch);
      if (!outcome.ok()) return outcome.status();
      truth.count += outcome.value().result.count;
      truth.value_sum += outcome.value().result.value;
      truth.verified = truth.verified && outcome.value().verified;
    }
    return truth;
  }

  core::Params params_{};
  core::QuerierKeys keys_;
  std::unique_ptr<workload::TraceGenerator> trace_;
};

std::vector<uint32_t> AllSources() {
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < kN; ++i) all.push_back(i);
  return all;
}

std::vector<uint32_t> EveryOtherSource() {
  std::vector<uint32_t> some;
  for (uint32_t i = 0; i < kN; i += 2) some.push_back(i);
  return some;
}

// The matrix core: a COUNT band query through the engine vs both
// ground truths, at several epochs and participation sets.
void ExpectBandCountMatches(Fixture& f, const core::Query& band_query,
                            const std::vector<uint32_t>& participants,
                            uint64_t epoch) {
  MultiQueryEngine eng = f.MakeEngine();
  ASSERT_TRUE(eng.Admit(band_query, 1).ok());

  // Channel-cost acceptance: the compiled slots stay within the
  // 2 * ceil(log2 D) per-kind ceiling.
  auto slots = eng.registry().plan().ChannelsOf(band_query);
  ASSERT_TRUE(slots.ok());
  EXPECT_LE(slots.value().size(), predicate::MaxChannelsFor(band_query));

  auto merged = f.EngineRound(eng, participants, epoch);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto outcomes = eng.Evaluate(merged.value(), epoch);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes.value().size(), 1u);
  const core::EpochOutcome& got = outcomes.value()[0].outcome;

  // Ground truth (a): the direct band session.
  auto direct = f.SessionEpoch(band_query, participants, epoch);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(got.result.value, direct.value().result.value);
  EXPECT_EQ(got.result.count, direct.value().result.count);
  EXPECT_EQ(got.verified, direct.value().verified);
  EXPECT_EQ(got.contributors, direct.value().contributors);
  EXPECT_EQ(got.coverage, direct.value().coverage);

  // Ground truth (b): independent per-bucket sessions, summed.
  auto truth = f.PerBucketSessions(band_query, participants, epoch);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  EXPECT_TRUE(truth.value().verified);
  EXPECT_EQ(got.result.count, truth.value().count);
  EXPECT_EQ(got.result.value, static_cast<double>(truth.value().count));
  EXPECT_EQ(slots.value().size(), truth.value().buckets)
      << "engine must use exactly the dyadic cover, one channel each";
}

TEST(PredicateDifferentialTest, CountBandFullParticipation) {
  Fixture f;
  for (uint64_t epoch : {1u, 3u}) {
    ExpectBandCountMatches(
        f, BandQuery(core::Aggregate::kCount, 0, 20.0, 30.0), AllSources(),
        epoch);
  }
}

TEST(PredicateDifferentialTest, CountBandUnderLoss) {
  Fixture f;
  ExpectBandCountMatches(f,
                         BandQuery(core::Aggregate::kCount, 0, 20.0, 30.0),
                         EveryOtherSource(), 2);
  ExpectBandCountMatches(f,
                         BandQuery(core::Aggregate::kCount, 0, 33.3, 47.1),
                         EveryOtherSource(), 5);
}

TEST(PredicateDifferentialTest, SumBandMatchesPerBucketSessions) {
  // Scale 0: every per-bucket SUM is integer-valued, so the summed
  // session values are exact and the comparison is bit-identical.
  Fixture f;
  core::Query q = BandQuery(core::Aggregate::kSum, 0, 20.0, 40.0,
                            /*scale=*/0);
  MultiQueryEngine eng = f.MakeEngine();
  ASSERT_TRUE(eng.Admit(q, 1).ok());
  auto merged = f.EngineRound(eng, AllSources(), 1);
  ASSERT_TRUE(merged.ok());
  auto outcomes = eng.Evaluate(merged.value(), 1);
  ASSERT_TRUE(outcomes.ok());
  const core::EpochOutcome& got = outcomes.value()[0].outcome;

  auto truth = f.PerBucketSessions(q, AllSources(), 1);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(got.result.value, truth.value().value_sum);
  EXPECT_EQ(got.result.count, truth.value().count);

  auto direct = f.SessionEpoch(q, AllSources(), 1);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(got.result.value, direct.value().result.value);
  EXPECT_EQ(got.verified, direct.value().verified);
}

TEST(PredicateDifferentialTest, AvgAndVarianceBandsMatchDirectSession) {
  // Multi-kind band queries (SUM+COUNT, +SUMSQ): assembled from bucket
  // sums per kind, bit-identical to the direct band session.
  Fixture f;
  for (auto aggregate : {core::Aggregate::kAvg, core::Aggregate::kVariance}) {
    core::Query q = BandQuery(aggregate, 0, 22.0, 41.5);
    MultiQueryEngine eng = f.MakeEngine();
    ASSERT_TRUE(eng.Admit(q, 1).ok());
    auto merged = f.EngineRound(eng, AllSources(), 1);
    ASSERT_TRUE(merged.ok());
    auto outcomes = eng.Evaluate(merged.value(), 1);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    auto direct = f.SessionEpoch(q, AllSources(), 1);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    EXPECT_EQ(outcomes.value()[0].outcome.result.value,
              direct.value().result.value)
        << q.ToSql();
    EXPECT_EQ(outcomes.value()[0].outcome.result.count,
              direct.value().result.count);
    EXPECT_EQ(outcomes.value()[0].outcome.verified,
              direct.value().verified);
  }
}

TEST(PredicateDifferentialTest, TamperFailsBandButIsolatesCoBatched) {
  // Corrupting the envelope's final byte lands in the LAST bucket
  // channel (bucket salts allocate from the top of the salt space, so
  // the band's buckets sit at the end of the wire order). The band
  // query must fail verification; the co-batched plain query on clean
  // low-salt channels must still verify.
  Fixture f;
  MultiQueryEngine eng = f.MakeEngine();
  ASSERT_TRUE(eng.Admit(PlainQuery(core::Aggregate::kSum, 0), 1).ok());
  ASSERT_TRUE(
      eng.Admit(BandQuery(core::Aggregate::kCount, 1, 20.0, 30.0), 1).ok());
  auto merged = f.EngineRound(eng, AllSources(), 1);
  ASSERT_TRUE(merged.ok());
  Bytes tampered = merged.value();
  tampered.back() ^= 0x01;
  auto outcomes = eng.Evaluate(tampered, 1);
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes.value().size(), 2u);
  EXPECT_TRUE(outcomes.value()[0].outcome.verified)
      << "plain SUM does not read the corrupted bucket channel";
  EXPECT_FALSE(outcomes.value()[1].outcome.verified)
      << "band COUNT reads the corrupted bucket channel";
}

TEST(PredicateDifferentialTest, LiveAdmissionAndTeardownOfBandQuery) {
  Fixture f;
  MultiQueryEngine eng = f.MakeEngine();
  core::Query plain = PlainQuery(core::Aggregate::kAvg, 0);
  core::Query band = BandQuery(core::Aggregate::kCount, 1, 20.0, 30.0);
  ASSERT_TRUE(eng.Admit(plain, 1).ok());

  // Epoch 1: plain only.
  auto m1 = f.EngineRound(eng, AllSources(), 1);
  ASSERT_TRUE(m1.ok());
  auto o1 = eng.Evaluate(m1.value(), 1);
  ASSERT_TRUE(o1.ok());
  ASSERT_EQ(o1.value().size(), 1u);

  // Epoch 2: the band query joins live and must match its direct
  // session immediately.
  ASSERT_TRUE(eng.Admit(band, 2).ok());
  auto m2 = f.EngineRound(eng, AllSources(), 2);
  ASSERT_TRUE(m2.ok());
  auto o2 = eng.Evaluate(m2.value(), 2);
  ASSERT_TRUE(o2.ok());
  ASSERT_EQ(o2.value().size(), 2u);
  auto direct = f.SessionEpoch(band, AllSources(), 2);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(o2.value()[1].outcome.result.value,
            direct.value().result.value);
  EXPECT_TRUE(o2.value()[1].outcome.verified);

  // Epoch 3: torn down — its bucket channels leave the wire.
  const size_t width_with_band = eng.WireBytes();
  ASSERT_TRUE(eng.Teardown(band.query_id, 3).ok());
  EXPECT_LT(eng.WireBytes(), width_with_band);
  auto m3 = f.EngineRound(eng, AllSources(), 3);
  ASSERT_TRUE(m3.ok());
  auto o3 = eng.Evaluate(m3.value(), 3);
  ASSERT_TRUE(o3.ok());
  ASSERT_EQ(o3.value().size(), 1u);
  auto plain_direct = f.SessionEpoch(plain, AllSources(), 3);
  ASSERT_TRUE(plain_direct.ok());
  EXPECT_EQ(o3.value()[0].outcome.result.value,
            plain_direct.value().result.value);
}

TEST(PredicateDifferentialTest, OverlappingBandsDedupSharedBuckets) {
  // Two overlapping ranges share canonical dyadic nodes, so the plan
  // must hold FEWER slots than the sum of their compiled channels.
  Fixture f;
  MultiQueryEngine eng = f.MakeEngine();
  core::Query a = BandQuery(core::Aggregate::kCount, 0, 20.0, 30.0);
  core::Query b = BandQuery(core::Aggregate::kCount, 1, 20.0, 35.0);
  ASSERT_TRUE(eng.Admit(a, 1).ok());
  ASSERT_TRUE(eng.Admit(b, 1).ok());
  auto sa = eng.registry().plan().ChannelsOf(a);
  auto sb = eng.registry().plan().ChannelsOf(b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_LT(eng.registry().plan().Count(),
            sa.value().size() + sb.value().size())
      << "shared dyadic nodes must dedup";
  // And both still answer exactly.
  auto merged = f.EngineRound(eng, AllSources(), 1);
  ASSERT_TRUE(merged.ok());
  auto outcomes = eng.Evaluate(merged.value(), 1);
  ASSERT_TRUE(outcomes.ok());
  for (size_t i = 0; i < 2; ++i) {
    const core::Query& q = i == 0 ? a : b;
    auto direct = f.SessionEpoch(q, AllSources(), 1);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(outcomes.value()[i].outcome.result.value,
              direct.value().result.value);
    EXPECT_TRUE(outcomes.value()[i].outcome.verified);
  }
}

}  // namespace
}  // namespace sies::engine
