// QueryRegistry: admission validation, the salt-collision rule, and
// teardown bookkeeping.
#include "engine/query_registry.h"

#include <gtest/gtest.h>

namespace sies::engine {
namespace {

core::Query MakeQuery(core::Aggregate aggregate, uint32_t id) {
  core::Query q;
  q.aggregate = aggregate;
  q.scale_pow10 = 2;
  q.query_id = id;
  return q;
}

TEST(QueryRegistryTest, AdmitAndFind) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kAvg, 7), 3).ok());
  ASSERT_EQ(registry.active().size(), 1u);
  const ActiveQuery* aq = registry.Find(7);
  ASSERT_NE(aq, nullptr);
  EXPECT_EQ(aq->admitted_epoch, 3u);
  EXPECT_EQ(registry.Find(8), nullptr);
}

TEST(QueryRegistryTest, RejectsIdBeyondSaltField) {
  QueryRegistry registry;
  Status s = registry.Admit(MakeQuery(core::Aggregate::kSum, kMaxQueryId + 1),
                            1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      registry.Admit(MakeQuery(core::Aggregate::kSum, kMaxQueryId), 1).ok());
}

TEST(QueryRegistryTest, RejectsDuplicateActiveId) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kSum, 1), 1).ok());
  Status s = registry.Admit(MakeQuery(core::Aggregate::kCount, 1), 2);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(QueryRegistryTest, RejectsIdThatStillSaltsALiveChannel) {
  QueryRegistry registry;
  // q0 creates the SUM+COUNT slots; q1 shares them; q0 leaves. The
  // slots live on salted with id 0, so re-admitting id 0 would derive
  // colliding PRF inputs for a DIFFERENT channel set — refuse it.
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kAvg, 0), 1).ok());
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kAvg, 1), 1).ok());
  ASSERT_TRUE(registry.Teardown(0, 2).ok());
  Status s = registry.Admit(MakeQuery(core::Aggregate::kSum, 0), 3);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // Once the last reader leaves, the salt frees up again.
  ASSERT_TRUE(registry.Teardown(1, 4).ok());
  EXPECT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kSum, 0), 5).ok());
}

TEST(QueryRegistryTest, AdmitAutoSkipsActiveAndSaltedIds) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kAvg, 0), 1).ok());
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kAvg, 1), 1).ok());
  ASSERT_TRUE(registry.Teardown(0, 2).ok());  // id 0 still salts slots
  auto id = registry.AdmitAuto(MakeQuery(core::Aggregate::kCount, 999), 3);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 2u) << "0 is salted, 1 is active, 2 is free";
}

TEST(QueryRegistryTest, TeardownUnknownIdIsNotFound) {
  QueryRegistry registry;
  EXPECT_EQ(registry.Teardown(5, 1).code(), StatusCode::kNotFound);
}

TEST(QueryRegistryTest, TeardownKeepsRemainingQueriesInAdmissionOrder) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kSum, 2), 1).ok());
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kCount, 0), 1).ok());
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kAvg, 1), 2).ok());
  ASSERT_TRUE(registry.Teardown(0, 3).ok());
  ASSERT_EQ(registry.active().size(), 2u);
  EXPECT_EQ(registry.active()[0].query.query_id, 2u);
  EXPECT_EQ(registry.active()[1].query.query_id, 1u);
}

TEST(QueryRegistryTest, PlanTracksAdmissionsAndTeardowns) {
  QueryRegistry registry;
  ASSERT_TRUE(
      registry.Admit(MakeQuery(core::Aggregate::kVariance, 0), 1).ok());
  ASSERT_TRUE(registry.Admit(MakeQuery(core::Aggregate::kAvg, 1), 1).ok());
  EXPECT_EQ(registry.plan().Count(), 3u);
  EXPECT_EQ(registry.plan().DedupSavings(), 2u);
  ASSERT_TRUE(registry.Teardown(0, 2).ok());
  // AVG keeps SUM + COUNT alive; the SUMSQ slot dies with q0.
  EXPECT_EQ(registry.plan().Count(), 2u);
}

}  // namespace
}  // namespace sies::engine
