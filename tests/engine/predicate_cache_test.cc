// Epoch-key cache sizing regression for compiled range queries: a
// range-heavy mix multiplies the per-epoch channel count (each band
// query holds up to 2 * ceil(log2 D) bucket channels per kind), so the
// engine must re-reserve its caches from the live plan — otherwise the
// default capacity thrashes and every epoch re-derives keys it just
// dropped. Asserts ZERO premature evictions, per-instance and on the
// global metric, over multi-epoch plain and pipelined runs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/engine.h"
#include "runner/engine_runner.h"
#include "telemetry/metrics.h"
#include "workload/workload.h"

namespace sies::engine {
namespace {

constexpr uint32_t kN = 16;
constexpr uint64_t kSeed = 31;

core::Query BandQuery(core::Aggregate aggregate, uint32_t id, double lo,
                      double hi) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = core::Field::kTemperature;
  q.scale_pow10 = 2;
  q.query_id = id;
  core::Band band;
  band.field = core::Field::kTemperature;
  band.lo = lo;
  band.hi = hi;
  q.band = band;
  return q;
}

/// A channel-heavy range mix: three band queries plus a plain AVG —
/// comfortably beyond the cache's default capacity of 32 channels.
std::vector<core::Query> RangeMix() {
  core::Query avg;
  avg.aggregate = core::Aggregate::kAvg;
  avg.scale_pow10 = 2;
  avg.query_id = 0;
  return {avg, BandQuery(core::Aggregate::kCount, 1, 20.0, 30.0),
          BandQuery(core::Aggregate::kSum, 2, 25.0, 45.0),
          BandQuery(core::Aggregate::kAvg, 3, 18.5, 42.25)};
}

uint64_t GlobalEvictions() {
  return telemetry::MetricsRegistry::Global()
      .GetCounter("sies_epoch_key_cache_evictions_total", {})
      ->Value();
}

TEST(PredicateCacheTest, RangeMixRunsWithZeroPrematureEvictions) {
  const uint64_t before = GlobalEvictions();

  auto params = core::MakeParams(kN, kSeed, /*value_bytes=*/8).value();
  auto keys = core::GenerateKeys(params, EncodeUint64(kSeed));
  workload::TraceConfig tc;
  tc.num_sources = kN;
  tc.seed = kSeed;
  workload::TraceGenerator trace(tc);

  MultiQueryEngine eng(params, keys);
  for (const core::Query& q : RangeMix()) {
    ASSERT_TRUE(eng.Admit(q, 1).ok());
  }
  ASSERT_GT(eng.registry().plan().Count(), 32u)
      << "the mix must exceed the cache's default capacity to regress";

  for (uint64_t epoch = 1; epoch <= 6; ++epoch) {
    // Prefetch t+1 like the pipelined runner does: both epochs' keys
    // must fit the reserved window simultaneously.
    eng.PrefetchEpochKeys(epoch + 1);
    std::vector<Bytes> payloads;
    for (uint32_t i = 0; i < kN; ++i) {
      auto p = eng.CreateSourcePayload(i, trace.ReadingAt(i, epoch), epoch);
      ASSERT_TRUE(p.ok());
      payloads.push_back(std::move(p).value());
    }
    auto merged = eng.Merge(payloads);
    ASSERT_TRUE(merged.ok());
    auto outcomes = eng.Evaluate(merged.value(), epoch);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    for (const QueryEpochOutcome& qo : outcomes.value()) {
      EXPECT_TRUE(qo.outcome.verified) << "query " << qo.query_id;
    }
  }

  EXPECT_EQ(eng.SourceCacheStats().evictions, 0u)
      << "source cache dropped keys inside the live epoch window";
  EXPECT_EQ(eng.QuerierCacheStats().evictions, 0u)
      << "querier cache dropped keys inside the live epoch window";
  EXPECT_EQ(GlobalEvictions() - before, 0u)
      << "sies_epoch_key_cache_evictions_total must not move";
}

TEST(PredicateCacheTest, PipelinedRunnerKeepsEvictionsAtZero) {
  const uint64_t before = GlobalEvictions();

  runner::EngineExperimentConfig config;
  for (const core::Query& q : RangeMix()) {
    config.queries.push_back({q});
  }
  config.num_sources = kN;
  config.epochs = 5;
  config.seed = kSeed;
  config.pipeline = true;
  auto result = runner::RunEngineExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().all_verified);

  EXPECT_EQ(GlobalEvictions() - before, 0u)
      << "a plan-sized cache never evicts prematurely, even pipelined";
}

}  // namespace
}  // namespace sies::engine
