// Epoch pipelining: deriving epoch t+1's querier keys in the background
// and routing the control plane through the boundary queue must change
// LATENCY only — every outcome, verdict and counter stays bit-identical
// to the serial engine.
#include "engine/epoch_scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "runner/engine_runner.h"

namespace sies::engine {
namespace {

core::Query MakeQuery(core::Aggregate aggregate, uint32_t id) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = core::Field::kTemperature;
  q.scale_pow10 = 2;
  q.query_id = id;
  return q;
}

runner::EngineExperimentConfig BaseConfig() {
  runner::EngineExperimentConfig config;
  config.num_sources = 32;
  config.fanout = 4;
  config.epochs = 10;
  config.seed = 7;
  config.threads = 1;
  config.queries.push_back({MakeQuery(core::Aggregate::kAvg, 0)});
  config.queries.push_back({MakeQuery(core::Aggregate::kVariance, 1)});
  return config;
}

/// Runs the experiment capturing (epoch -> per-query outcomes).
using OutcomeLog =
    std::map<uint64_t, std::vector<std::pair<uint32_t, double>>>;

runner::EngineExperimentResult RunLogged(
    runner::EngineExperimentConfig config, OutcomeLog& log) {
  config.on_epoch_outcomes = [&log](uint64_t epoch, bool answered,
                                    const std::vector<QueryEpochOutcome>&
                                        outcomes) {
    if (!answered) return;
    for (const QueryEpochOutcome& qo : outcomes) {
      log[epoch].emplace_back(qo.query_id, qo.outcome.result.value);
    }
  };
  auto result = runner::RunEngineExperiment(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(PipelineTest, PipelinedOutcomesAreBitIdenticalToSerial) {
  OutcomeLog serial_log, pipelined_log;
  runner::EngineExperimentConfig config = BaseConfig();
  auto serial = RunLogged(config, serial_log);
  config.pipeline = true;
  auto pipelined = RunLogged(config, pipelined_log);

  EXPECT_EQ(serial.answered_epochs, pipelined.answered_epochs);
  EXPECT_EQ(serial.channel_epochs, pipelined.channel_epochs);
  EXPECT_TRUE(pipelined.all_verified);
  ASSERT_EQ(serial_log.size(), pipelined_log.size());
  // Prefetch is purely a cache warm: every epoch's every query value
  // must match exactly.
  EXPECT_EQ(serial_log, pipelined_log);
  EXPECT_EQ(serial.prefetched_epochs, 0u);
  EXPECT_GT(pipelined.prefetched_epochs, 0u)
      << "the prefetch thread must actually have run";
}

TEST(PipelineTest, PipelinedUnderLossMatchesSerial) {
  // Loss draws happen on the run thread inside the transport; the
  // prefetch thread consumes no RNG. The delivered/lost pattern and the
  // partial sums must be identical.
  OutcomeLog serial_log, pipelined_log;
  runner::EngineExperimentConfig config = BaseConfig();
  config.loss_rate = 0.2;
  config.max_retries = 1;
  auto serial = RunLogged(config, serial_log);
  config.pipeline = true;
  auto pipelined = RunLogged(config, pipelined_log);
  EXPECT_EQ(serial.answered_epochs, pipelined.answered_epochs);
  EXPECT_EQ(serial.retransmits, pipelined.retransmits);
  EXPECT_EQ(serial.lost_messages, pipelined.lost_messages);
  EXPECT_EQ(serial_log, pipelined_log);
}

TEST(PipelineTest, PipelinedAdmissionAndTeardownAtBoundaries) {
  // Plan mutations land exactly at their scheduled epoch even with a
  // prefetch in flight (ApplyPending joins it first). The prefetched
  // t+1 list was captured from the t plan, so the admitted query's
  // first epoch simply derives cold — and still verifies.
  runner::EngineExperimentConfig config = BaseConfig();
  config.queries.push_back(
      {MakeQuery(core::Aggregate::kSum, 2), /*admit_epoch=*/4,
       /*teardown_epoch=*/8});
  config.pipeline = true;
  auto result = runner::RunEngineExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().all_verified);
  ASSERT_EQ(result.value().queries.size(), 3u);
  EXPECT_EQ(result.value().queries[2].answered_epochs, 4u)
      << "live exactly for epochs 4..7";
  EXPECT_EQ(result.value().queries[2].verified_epochs, 4u);
}

TEST(PipelineTest, QueuedControlPlaneAppliesAtTheBoundary) {
  auto params = core::MakeParams(8, 7, /*value_bytes=*/8);
  ASSERT_TRUE(params.ok());
  core::QuerierKeys keys = core::GenerateKeys(params.value(), EncodeUint64(7));
  auto engine = std::make_shared<MultiQueryEngine>(params.value(), keys);
  auto topology = net::Topology::BuildCompleteTree(8, 4);
  ASSERT_TRUE(topology.ok());
  EpochScheduler scheduler(engine, topology.value(),
                           [](uint32_t, uint64_t) {
                             return core::SensorReading{};
                           });
  // Queued ops do NOT touch the plan until ApplyPending.
  scheduler.QueueAdmit(MakeQuery(core::Aggregate::kSum, 0));
  scheduler.QueueAdmit(MakeQuery(core::Aggregate::kCount, 1));
  EXPECT_FALSE(engine->HasLiveChannels());
  ASSERT_TRUE(scheduler.ApplyPending(3).ok());
  EXPECT_TRUE(engine->HasLiveChannels());
  EXPECT_EQ(engine->registry().plan().Count(), 2u);
  auto snapshot = scheduler.SnapshotQueries();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].admitted_epoch, 3u);
  // Teardown through the queue as well; the drained queue is empty, so
  // a second ApplyPending is a no-op.
  scheduler.QueueTeardown(0);
  scheduler.QueueTeardown(1);
  ASSERT_TRUE(scheduler.ApplyPending(5).ok());
  EXPECT_FALSE(engine->HasLiveChannels());
  ASSERT_TRUE(scheduler.ApplyPending(6).ok());
  // A failed queued admission surfaces as the Status.
  scheduler.QueueAdmit(MakeQuery(core::Aggregate::kSum, 0));
  scheduler.QueueAdmit(MakeQuery(core::Aggregate::kSum, 0));  // duplicate id
  EXPECT_FALSE(scheduler.ApplyPending(7).ok());
}

TEST(PipelineTest, PrefetchWarmsTheQuerierCache) {
  // After a prefetch of epoch t+1, the querier-side derivations for
  // t+1 must be cache hits. Drive the engine directly: warm via
  // WarmSaltedEpochs (what the prefetch thread runs) and compare cache
  // stats across an Evaluate of the warmed epoch.
  auto params = core::MakeParams(16, 7, /*value_bytes=*/8);
  ASSERT_TRUE(params.ok());
  core::QuerierKeys keys = core::GenerateKeys(params.value(), EncodeUint64(7));
  MultiQueryEngine engine(params.value(), keys);
  ASSERT_TRUE(engine.Admit(MakeQuery(core::Aggregate::kVariance, 0), 1).ok());

  const std::vector<uint64_t> salted = engine.SaltedEpochsFor(2);
  ASSERT_EQ(salted.size(), engine.registry().plan().Count());
  engine.WarmSaltedEpochs(salted);
  const auto warm = engine.QuerierCacheStats();
  engine.WarmSaltedEpochs(salted);  // idempotent: pure hits now
  const auto rewarm = engine.QuerierCacheStats();
  EXPECT_EQ(rewarm.global_misses, warm.global_misses);
  EXPECT_EQ(rewarm.source_misses, warm.source_misses);
  EXPECT_GT(rewarm.global_hits, warm.global_hits);
}

}  // namespace
}  // namespace sies::engine
