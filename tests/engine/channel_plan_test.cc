// ChannelPlan: dedup correctness, wire-order stability, salt lifetime.
#include "engine/channel_plan.h"

#include <gtest/gtest.h>

#include "sies/session.h"

namespace sies::engine {
namespace {

core::Query MakeQuery(core::Aggregate aggregate, uint32_t id,
                      core::Field attribute = core::Field::kTemperature,
                      uint32_t scale = 2) {
  core::Query q;
  q.aggregate = aggregate;
  q.attribute = attribute;
  q.scale_pow10 = scale;
  q.query_id = id;
  return q;
}

TEST(ChannelPlanTest, SingleQueryCreatesItsChannels) {
  ChannelPlan plan;
  plan.Admit(MakeQuery(core::Aggregate::kVariance, 3));
  ASSERT_EQ(plan.Count(), 3u);
  EXPECT_EQ(plan.DedupSavings(), 0u);
  for (const PhysicalChannel& ch : plan.channels()) {
    EXPECT_EQ(ch.salt_id, 3u);
    EXPECT_EQ(ch.refcount, 1u);
  }
}

TEST(ChannelPlanTest, IdenticalAggregatesShareEveryChannel) {
  ChannelPlan plan;
  plan.Admit(MakeQuery(core::Aggregate::kAvg, 0));
  plan.Admit(MakeQuery(core::Aggregate::kAvg, 1));
  // AVG = SUM + COUNT; the second query rides the first one's slots.
  EXPECT_EQ(plan.Count(), 2u);
  EXPECT_EQ(plan.DedupSavings(), 2u);
  for (const PhysicalChannel& ch : plan.channels()) {
    EXPECT_EQ(ch.salt_id, 0u) << "shared slots keep the creator's salt";
    EXPECT_EQ(ch.refcount, 2u);
  }
}

TEST(ChannelPlanTest, OverlappingAggregatesShareThePrefix) {
  ChannelPlan plan;
  plan.Admit(MakeQuery(core::Aggregate::kAvg, 0));       // SUM + COUNT
  plan.Admit(MakeQuery(core::Aggregate::kVariance, 1));  // + SUMSQ
  plan.Admit(MakeQuery(core::Aggregate::kSum, 2));       // all shared
  EXPECT_EQ(plan.Count(), 3u);
  EXPECT_EQ(plan.DedupSavings(), 3u);
}

TEST(ChannelPlanTest, CountChannelIgnoresAttributeAndScale) {
  ChannelPlan plan;
  // COUNT transmits 1{pred}: attribute and scaling are irrelevant, so
  // COUNT(temperature) and COUNT(humidity) share one slot.
  plan.Admit(MakeQuery(core::Aggregate::kCount, 0,
                       core::Field::kTemperature, 2));
  plan.Admit(MakeQuery(core::Aggregate::kCount, 1,
                       core::Field::kHumidity, 0));
  EXPECT_EQ(plan.Count(), 1u);
  EXPECT_EQ(plan.DedupSavings(), 1u);
}

TEST(ChannelPlanTest, DistinctPredicatesDoNotShare) {
  core::Query hot = MakeQuery(core::Aggregate::kCount, 0);
  hot.where = core::Predicate{core::Field::kTemperature,
                              core::CompareOp::kGreaterEqual, 30.0};
  core::Query cold = MakeQuery(core::Aggregate::kCount, 1);
  cold.where = core::Predicate{core::Field::kTemperature,
                               core::CompareOp::kLess, 30.0};
  ChannelPlan plan;
  plan.Admit(hot);
  plan.Admit(cold);
  EXPECT_EQ(plan.Count(), 2u);
  EXPECT_EQ(plan.DedupSavings(), 0u);
}

TEST(ChannelPlanTest, DistinctAttributesDoNotShareSum) {
  ChannelPlan plan;
  plan.Admit(MakeQuery(core::Aggregate::kSum, 0, core::Field::kTemperature));
  plan.Admit(MakeQuery(core::Aggregate::kSum, 1, core::Field::kHumidity));
  EXPECT_EQ(plan.Count(), 2u);
}

TEST(ChannelPlanTest, WireOrderIsAscendingSaltThenKind) {
  ChannelPlan plan;
  plan.Admit(MakeQuery(core::Aggregate::kSum, 5));
  plan.Admit(MakeQuery(core::Aggregate::kVariance, 2,
                       core::Field::kHumidity));
  const auto& chans = plan.channels();
  ASSERT_EQ(chans.size(), 4u);
  for (size_t i = 1; i < chans.size(); ++i) {
    const bool ordered =
        chans[i - 1].salt_id < chans[i].salt_id ||
        (chans[i - 1].salt_id == chans[i].salt_id &&
         static_cast<uint32_t>(chans[i - 1].spec.kind) <
             static_cast<uint32_t>(chans[i].spec.kind));
    EXPECT_TRUE(ordered) << "slot " << i << " out of wire order";
  }
}

TEST(ChannelPlanTest, TeardownReleasesOnlyUnsharedSlots) {
  ChannelPlan plan;
  core::Query avg = MakeQuery(core::Aggregate::kAvg, 0);
  core::Query var = MakeQuery(core::Aggregate::kVariance, 1);
  plan.Admit(avg);
  plan.Admit(var);
  ASSERT_EQ(plan.Count(), 3u);

  plan.Teardown(avg);
  // VARIANCE still reads SUM and COUNT: all three slots survive.
  EXPECT_EQ(plan.Count(), 3u);
  // ...under the original creator's salt, even though q0 is gone.
  EXPECT_TRUE(plan.SaltIdInUse(0));

  plan.Teardown(var);
  EXPECT_EQ(plan.Count(), 0u);
  EXPECT_FALSE(plan.SaltIdInUse(0));
  EXPECT_FALSE(plan.SaltIdInUse(1));
}

TEST(ChannelPlanTest, ChannelsOfMapsEveryActiveChannel) {
  ChannelPlan plan;
  core::Query avg = MakeQuery(core::Aggregate::kAvg, 0);
  core::Query var = MakeQuery(core::Aggregate::kVariance, 1);
  plan.Admit(avg);
  plan.Admit(var);
  auto slots = plan.ChannelsOf(var);
  ASSERT_TRUE(slots.ok());
  // One slot per active channel, in the query's own channel order.
  ASSERT_EQ(slots.value().size(), core::ActiveChannels(var).size());
  for (size_t i = 0; i < slots.value().size(); ++i) {
    EXPECT_EQ(plan.channels()[slots.value()[i]].spec.kind,
              core::ActiveChannels(var)[i]);
  }
}

TEST(ChannelPlanTest, ChannelsOfUnknownQueryIsNotFound) {
  ChannelPlan plan;
  plan.Admit(MakeQuery(core::Aggregate::kSum, 0));
  auto slots = plan.ChannelsOf(MakeQuery(core::Aggregate::kCount, 1));
  EXPECT_EQ(slots.status().code(), StatusCode::kNotFound);
}

TEST(ChannelPlanTest, ValueForMatchesSingleQueryChannelValue) {
  core::Query q = MakeQuery(core::Aggregate::kVariance, 0);
  q.where = core::Predicate{core::Field::kTemperature,
                            core::CompareOp::kGreaterEqual, 20.0};
  core::SensorReading hot{/*temperature=*/25.5, /*humidity=*/40.0,
                          /*light=*/100.0, /*voltage=*/2.7};
  core::SensorReading cold{/*temperature=*/10.0, 40.0, 100.0, 2.7};
  for (core::Channel kind : core::ActiveChannels(q)) {
    ChannelSpec spec = ChannelSpec::Canonical(q, kind);
    for (const core::SensorReading& r : {hot, cold}) {
      auto via_spec = spec.ValueFor(r);
      auto via_query = core::ChannelValue(q, kind, r);
      ASSERT_TRUE(via_spec.ok());
      ASSERT_TRUE(via_query.ok());
      EXPECT_EQ(via_spec.value(), via_query.value());
    }
  }
}

TEST(ChannelPlanTest, SaltedEpochInputsNeverCollideAcrossSlots) {
  ChannelPlan plan;
  plan.Admit(MakeQuery(core::Aggregate::kVariance, 0));
  plan.Admit(MakeQuery(core::Aggregate::kVariance, 1,
                       core::Field::kHumidity));
  std::vector<uint64_t> salted;
  for (const PhysicalChannel& ch : plan.channels()) {
    salted.push_back(ch.SaltedEpochFor(42));
  }
  std::sort(salted.begin(), salted.end());
  EXPECT_EQ(std::adjacent_find(salted.begin(), salted.end()), salted.end())
      << "two live channels share a PRF input";
}

}  // namespace
}  // namespace sies::engine
