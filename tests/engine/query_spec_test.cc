// Textual query specs: the --queries-file grammar and its validation.
#include "engine/query_spec.h"

#include <gtest/gtest.h>

namespace sies::engine {
namespace {

TEST(QuerySpecTest, ParsesFullSpecLine) {
  auto q = ParseQuerySpec(
      "avg temperature scale 2 where temperature >= 20 id 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().aggregate, core::Aggregate::kAvg);
  EXPECT_EQ(q.value().attribute, core::Field::kTemperature);
  EXPECT_EQ(q.value().scale_pow10, 2u);
  EXPECT_EQ(q.value().query_id, 5u);
  ASSERT_TRUE(q.value().where.has_value());
  EXPECT_EQ(q.value().where->op, core::CompareOp::kGreaterEqual);
  EXPECT_EQ(q.value().where->threshold, 20.0);
}

TEST(QuerySpecTest, ReportsWhetherIdWasExplicit) {
  bool id_given = true;
  ASSERT_TRUE(ParseQuerySpec("sum humidity", &id_given).ok());
  EXPECT_FALSE(id_given);
  ASSERT_TRUE(ParseQuerySpec("sum humidity id 3", &id_given).ok());
  EXPECT_TRUE(id_given);
}

TEST(QuerySpecTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseQuerySpec("").ok());
  EXPECT_FALSE(ParseQuerySpec("median temperature").ok());
  EXPECT_FALSE(ParseQuerySpec("sum pressure").ok());
  EXPECT_FALSE(ParseQuerySpec("sum temperature scale x").ok());
  EXPECT_FALSE(ParseQuerySpec("sum temperature where temperature").ok());
  EXPECT_FALSE(ParseQuerySpec("sum temperature id notanumber").ok());
}

TEST(QuerySpecTest, TextAssignsFreeIdsAndSkipsComments) {
  auto queries = ParseQueriesText(
      "# header comment\n"
      "avg temperature\n"
      "\n"
      "count temperature id 0\n"
      "sum humidity\n");
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries.value().size(), 3u);
  // The explicit id 0 is taken; implicit queries get the free ids.
  EXPECT_EQ(queries.value()[1].query_id, 0u);
  EXPECT_NE(queries.value()[0].query_id, queries.value()[2].query_id);
  EXPECT_NE(queries.value()[0].query_id, 0u);
  EXPECT_NE(queries.value()[2].query_id, 0u);
}

TEST(QuerySpecTest, TextRejectsDuplicateIdsAndEmptyFiles) {
  auto dup = ParseQueriesText("sum temperature id 1\ncount temperature id 1\n");
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  auto empty = ParseQueriesText("# nothing but comments\n\n");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().ToString().find("no queries"), std::string::npos);
}

TEST(QuerySpecTest, LoadRejectsUnreadablePath) {
  auto missing = LoadQueriesFile("/does/not/exist.queries");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.status().ToString().find("cannot read"),
            std::string::npos);
}

TEST(QuerySpecTest, DefaultMixDedupsToThreeChannels) {
  for (uint32_t k : {1u, 5u, 8u}) {
    std::vector<core::Query> mix = DefaultQueryMix(k);
    ASSERT_EQ(mix.size(), k);
    for (uint32_t i = 0; i < k; ++i) {
      EXPECT_EQ(mix[i].query_id, i);
      EXPECT_EQ(mix[i].attribute, core::Field::kTemperature);
    }
  }
}


TEST(QuerySpecTest, ParsesBandWhereForm) {
  auto q = ParseQuerySpec("sum temperature where 20 <= temperature <= 30");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q.value().band.has_value());
  EXPECT_EQ(q.value().band->field, core::Field::kTemperature);
  EXPECT_EQ(q.value().band->lo, 20.0);
  EXPECT_EQ(q.value().band->hi, 30.0);
  EXPECT_FALSE(q.value().where.has_value());
}

TEST(QuerySpecTest, ParsesBetweenSugarOverTheAttribute) {
  auto q = ParseQuerySpec("count humidity between 35 and 55 id 2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q.value().band.has_value());
  EXPECT_EQ(q.value().band->field, core::Field::kHumidity);
  EXPECT_EQ(q.value().band->lo, 35.0);
  EXPECT_EQ(q.value().band->hi, 55.0);
  EXPECT_EQ(q.value().query_id, 2u);
}

TEST(QuerySpecTest, BandAndScalarPredicateCompose) {
  auto q = ParseQuerySpec(
      "avg temperature where 20 <= temperature <= 30 where humidity >= 40");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q.value().band.has_value());
  ASSERT_TRUE(q.value().where.has_value());
  EXPECT_EQ(q.value().where->field, core::Field::kHumidity);
}

TEST(QuerySpecTest, RejectsInvertedBandWithDistinctMessage) {
  for (const char* line :
       {"sum temperature where 30 <= temperature <= 20",
        "sum temperature between 30 and 20"}) {
    auto q = ParseQuerySpec(line);
    ASSERT_FALSE(q.ok()) << line;
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(q.status().message().find(
                  "band bounds are inverted: lo > hi selects nothing"),
              std::string::npos)
        << q.status().ToString();
  }
}

TEST(QuerySpecTest, RejectsStrictBandBoundsWithHint) {
  auto q = ParseQuerySpec("sum temperature where 20 < temperature <= 30");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("band bounds are inclusive"),
            std::string::npos)
      << q.status().ToString();
  EXPECT_FALSE(
      ParseQuerySpec("sum temperature where 20 <= temperature < 30").ok());
}

TEST(QuerySpecTest, RejectsDuplicateBands) {
  auto q = ParseQuerySpec(
      "sum temperature between 20 and 30 where 25 <= humidity <= 50");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("at most one band"),
            std::string::npos);
}

TEST(QuerySpecTest, RejectsTruncatedBandForms) {
  EXPECT_FALSE(ParseQuerySpec("sum temperature where 20 <= temperature").ok());
  EXPECT_FALSE(ParseQuerySpec("sum temperature where 20").ok());
  EXPECT_FALSE(ParseQuerySpec("sum temperature between 20 and").ok());
  EXPECT_FALSE(ParseQuerySpec("sum temperature between 20 or 30").ok());
  EXPECT_FALSE(
      ParseQuerySpec("sum temperature where 20 <= pressure <= 30").ok());
}

TEST(QuerySpecTest, TextParsesBandMix) {
  auto queries = ParseQueriesText(
      "count temperature where 20 <= temperature <= 30\n"
      "avg humidity between 35 and 55\n"
      "sum temperature\n");
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries.value().size(), 3u);
  EXPECT_TRUE(queries.value()[0].band.has_value());
  EXPECT_TRUE(queries.value()[1].band.has_value());
  EXPECT_FALSE(queries.value()[2].band.has_value());
}

}  // namespace
}  // namespace sies::engine
