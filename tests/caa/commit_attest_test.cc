#include "caa/commit_attest.h"

#include <gtest/gtest.h>

#include <numeric>

namespace sies::caa {
namespace {

std::vector<uint64_t> MakeValues(uint32_t n) {
  std::vector<uint64_t> values(n);
  for (uint32_t i = 0; i < n; ++i) values[i] = 1800 + 50 * i;
  return values;
}

TEST(CommitAttestTest, HonestRoundVerifiesAndIsExact) {
  auto topology = net::Topology::BuildCompleteTree(16, 4).value();
  Keys keys = GenerateKeys(16, {1});
  auto values = MakeValues(16);
  auto result = RunRound(topology, keys, values, /*epoch=*/1).value();
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.sum,
            std::accumulate(values.begin(), values.end(), 0ull));
}

TEST(CommitAttestTest, InputValidation) {
  auto topology = net::Topology::BuildCompleteTree(8, 2).value();
  Keys keys = GenerateKeys(8, {1});
  EXPECT_FALSE(RunRound(topology, keys, MakeValues(7), 1).ok());
  Keys short_keys = GenerateKeys(7, {1});
  EXPECT_FALSE(RunRound(topology, short_keys, MakeValues(8), 1).ok());
}

namespace {
void TamperFirstReading(std::vector<uint64_t>& readings) {
  readings[0] += 100000;  // a compromised sink inflating a value
}
void DropLastReading(std::vector<uint64_t>& readings) {
  readings.back() = 0;  // a compromised sink zeroing a contribution
}
}  // namespace

TEST(CommitAttestTest, SinkTamperingDetectedByAttestation) {
  auto topology = net::Topology::BuildCompleteTree(16, 4).value();
  Keys keys = GenerateKeys(16, {1});
  auto values = MakeValues(16);
  auto result =
      RunRound(topology, keys, values, 2, &TamperFirstReading).value();
  EXPECT_FALSE(result.verified) << "source 0's audit must fail";
  // The falsified sum is indeed different from the honest one.
  EXPECT_NE(result.sum, std::accumulate(values.begin(), values.end(), 0ull));
}

TEST(CommitAttestTest, SinkDroppingDetected) {
  auto topology = net::Topology::BuildCompleteTree(16, 4).value();
  Keys keys = GenerateKeys(16, {1});
  auto result =
      RunRound(topology, keys, MakeValues(16), 3, &DropLastReading).value();
  EXPECT_FALSE(result.verified);
}

TEST(CommitAttestTest, LeafPayloadBindsAllFields) {
  Bytes p = MakeLeafPayload(3, 1000, 7);
  EXPECT_NE(p, MakeLeafPayload(4, 1000, 7));
  EXPECT_NE(p, MakeLeafPayload(3, 1001, 7));
  EXPECT_NE(p, MakeLeafPayload(3, 1000, 8));  // replay across epochs
  EXPECT_EQ(p, MakeLeafPayload(3, 1000, 7));
}

TEST(CommitAttestTest, VerdictMacBindsVerdict) {
  Bytes key(20, 0x44);
  Bytes root(32, 0x11);
  Bytes ok_mac = MakeVerdictMac(key, root, 5000, 1, true);
  Bytes bad_mac = MakeVerdictMac(key, root, 5000, 1, false);
  EXPECT_NE(ok_mac, bad_mac) << "a complaint must be distinguishable";
  EXPECT_NE(ok_mac, MakeVerdictMac(key, root, 5001, 1, true));
  EXPECT_NE(ok_mac, MakeVerdictMac(key, root, 5000, 2, true));
}

TEST(CommitAttestTest, TrafficGrowsSuperlinearlyWithN) {
  // The paper's scalability argument: commit-and-attest traffic per
  // round is O(N log N) while SIES is O(N) with constant per-edge cost.
  Keys keys64 = GenerateKeys(64, {1});
  Keys keys1024 = GenerateKeys(1024, {1});
  auto t64 = net::Topology::BuildCompleteTree(64, 4).value();
  auto t1024 = net::Topology::BuildCompleteTree(1024, 4).value();
  auto r64 = RunRound(t64, keys64, MakeValues(64), 1).value();
  auto r1024 = RunRound(t1024, keys1024, MakeValues(1024), 1).value();
  // 16x more sources -> more than 16x total traffic.
  EXPECT_GT(r1024.traffic.total(), 16 * r64.traffic.total());
  // The hot edge near the sink grows ~linearly with N.
  EXPECT_GT(r1024.traffic.max_edge_bytes,
            10 * r64.traffic.max_edge_bytes);
}

TEST(CommitAttestTest, LatencyGrowsWithHeight) {
  Keys keys = GenerateKeys(256, {1});
  auto shallow = net::Topology::BuildCompleteTree(256, 16).value();
  auto deep = net::Topology::BuildCompleteTree(256, 2).value();
  auto r_shallow = RunRound(shallow, keys, MakeValues(256), 1).value();
  auto r_deep = RunRound(deep, keys, MakeValues(256), 1).value();
  EXPECT_GT(r_deep.broadcast_rounds, r_shallow.broadcast_rounds);
}

TEST(CommitAttestTest, SingleSourceDegenerateCase) {
  auto topology = net::Topology::BuildCompleteTree(1, 4).value();
  Keys keys = GenerateKeys(1, {1});
  auto result = RunRound(topology, keys, {4242}, 1).value();
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.sum, 4242u);
}

}  // namespace
}  // namespace sies::caa
