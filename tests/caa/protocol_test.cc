#include "caa/protocol.h"

#include <gtest/gtest.h>

#include <numeric>

namespace sies::caa {
namespace {

std::vector<uint64_t> MakeValues(uint32_t n) {
  std::vector<uint64_t> values(n);
  for (uint32_t i = 0; i < n; ++i) values[i] = 2000 + 31 * i;
  return values;
}

Protocol MakeProtocol(uint32_t n, uint32_t fanout = 4) {
  auto topology = net::Topology::BuildCompleteTree(n, fanout).value();
  Keys keys = GenerateKeys(n, {1, 2});
  return Protocol::Create(std::move(topology), std::move(keys), {3, 4})
      .value();
}

TEST(RecordWireTest, RoundTrip) {
  std::vector<std::pair<uint32_t, uint64_t>> records = {
      {0, 100}, {7, 42}, {1000000, UINT64_MAX}};
  Bytes wire = SerializeRecords(records);
  EXPECT_EQ(wire.size(), 4u + 3 * 12);
  EXPECT_EQ(ParseRecords(wire).value(), records);
}

TEST(RecordWireTest, EmptyList) {
  Bytes wire = SerializeRecords({});
  EXPECT_EQ(ParseRecords(wire).value().size(), 0u);
}

TEST(RecordWireTest, MalformedRejected) {
  EXPECT_FALSE(ParseRecords({}).ok());
  EXPECT_FALSE(ParseRecords(Bytes(3, 0)).ok());
  Bytes wire = SerializeRecords({{1, 2}});
  wire.pop_back();
  EXPECT_FALSE(ParseRecords(wire).ok());
  wire.push_back(0);
  wire.push_back(0);
  EXPECT_FALSE(ParseRecords(wire).ok());
}

TEST(CaaProtocolTest, HonestRoundExactAndVerified) {
  Protocol protocol = MakeProtocol(16);
  auto values = MakeValues(16);
  auto outcome = protocol.RunRound(values, /*epoch=*/1).value();
  EXPECT_TRUE(outcome.verified);
  EXPECT_EQ(outcome.complaints, 0u);
  EXPECT_EQ(outcome.sum,
            std::accumulate(values.begin(), values.end(), 0ull));
}

TEST(CaaProtocolTest, MultipleEpochsOnOneChain) {
  Protocol protocol = MakeProtocol(8, 2);
  auto values = MakeValues(8);
  for (uint64_t epoch = 1; epoch <= 10; ++epoch) {
    auto outcome = protocol.RunRound(values, epoch).value();
    EXPECT_TRUE(outcome.verified) << "epoch " << epoch;
  }
}

TEST(CaaProtocolTest, SinkInflationDetected) {
  Protocol protocol = MakeProtocol(16);
  auto values = MakeValues(16);
  auto outcome =
      protocol
          .RunRound(values, 1,
                    [](std::vector<std::pair<uint32_t, uint64_t>>& recs) {
                      recs[3].second += 5000;
                    })
          .value();
  EXPECT_FALSE(outcome.verified);
  EXPECT_EQ(outcome.complaints, 1u);
}

TEST(CaaProtocolTest, SinkDropDetected) {
  Protocol protocol = MakeProtocol(16);
  auto values = MakeValues(16);
  auto outcome =
      protocol
          .RunRound(values, 2,
                    [](std::vector<std::pair<uint32_t, uint64_t>>& recs) {
                      recs.erase(recs.begin() + 5);
                    })
          .value();
  EXPECT_FALSE(outcome.verified);
  EXPECT_GE(outcome.complaints, 1u);
}

TEST(CaaProtocolTest, SinkInjectionAppendedDetected) {
  // Appending a forged record with a high index leaves every honest
  // rank intact — the announced leaf count and canonical proof lengths
  // are what catch it.
  Protocol protocol = MakeProtocol(16);
  auto values = MakeValues(16);
  auto outcome =
      protocol
          .RunRound(values, 3,
                    [](std::vector<std::pair<uint32_t, uint64_t>>& recs) {
                      recs.emplace_back(999, 77777);
                    })
          .value();
  EXPECT_FALSE(outcome.verified);
}

TEST(CaaProtocolTest, SinkInjectionMidTreeDetected) {
  // Replacing one source's record with a forged one (keeping the count)
  // fails that source's audit directly.
  Protocol protocol = MakeProtocol(16);
  auto values = MakeValues(16);
  auto outcome =
      protocol
          .RunRound(values, 4,
                    [](std::vector<std::pair<uint32_t, uint64_t>>& recs) {
                      recs[8] = {8, 1};  // source 8's value forged
                    })
          .value();
  EXPECT_FALSE(outcome.verified);
  EXPECT_GE(outcome.complaints, 1u);
}

TEST(CaaProtocolTest, TrafficDwarfsSies) {
  Protocol small = MakeProtocol(64);
  Protocol big = MakeProtocol(1024);
  auto small_outcome = small.RunRound(MakeValues(64), 1).value();
  auto big_outcome = big.RunRound(MakeValues(1024), 1).value();
  // Per-round traffic far above SIES's 32 B/edge (= 32*(nodes) total).
  EXPECT_GT(small_outcome.traffic.total(),
            32ull * small.topology().num_nodes() * 10);
  // Super-linear growth in N.
  EXPECT_GT(big_outcome.traffic.total(),
            16 * small_outcome.traffic.total());
  // Hot edge near the sink carries O(N) records.
  EXPECT_GT(big_outcome.traffic.max_edge_bytes,
            10 * small_outcome.traffic.max_edge_bytes);
}

TEST(CaaProtocolTest, InputValidation) {
  Protocol protocol = MakeProtocol(8);
  EXPECT_FALSE(protocol.RunRound(MakeValues(7), 1).ok());
  // Epoch beyond the μTesla chain.
  EXPECT_FALSE(protocol.RunRound(MakeValues(8), 5000).ok());
  // Key/source count mismatch at construction.
  auto topology = net::Topology::BuildCompleteTree(8, 2).value();
  EXPECT_FALSE(
      Protocol::Create(topology, GenerateKeys(7, {1}), {2}).ok());
}

TEST(CaaProtocolTest, AnalyticalModelAgreesOnShape) {
  // The message-level traffic and the analytical RunRound estimate must
  // agree within a small factor (they count slightly different framing).
  uint32_t n = 256;
  auto topology = net::Topology::BuildCompleteTree(n, 4).value();
  Keys keys = GenerateKeys(n, {1});
  Protocol protocol =
      Protocol::Create(topology, keys, {9}).value();
  auto message_level =
      protocol.RunRound(MakeValues(n), 1).value();
  auto analytical = RunRound(topology, keys, MakeValues(n), 1).value();
  double ratio = static_cast<double>(message_level.traffic.total()) /
                 static_cast<double>(analytical.traffic.total());
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

}  // namespace
}  // namespace sies::caa
