#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py (the bench-regression gate).

Builds synthetic BENCH_*.json baseline/fresh pairs in temp dirs and
checks both verdict modes: structural (schema, metric presence,
finiteness, boolean invariants) and --strict (ratio tolerances with
per-metric direction). Registered as ctest `bench_compare_test`, label
`static`.
"""
import json
import os
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))

import bench_compare  # noqa: E402


def write_report(directory, filename, bench, rows, schema=1):
    path = os.path.join(directory, filename)
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"bench": bench, "schema": schema, "rows": rows}, f)
    return path


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.base_dir = os.path.join(self._tmp.name, "baselines")
        self.run_dir = os.path.join(self._tmp.name, "run")
        os.makedirs(self.base_dir)
        os.makedirs(self.run_dir)

    def tearDown(self):
        self._tmp.cleanup()

    def run_gate(self, *extra_args):
        """Runs main() and returns (exit_code, verdict_dict)."""
        out = os.path.join(self._tmp.name, "verdict.json")
        code = bench_compare.main(
            [self.run_dir, "--baseline-dir", self.base_dir,
             "--json-out", out, *extra_args])
        with open(out, encoding="utf-8") as f:
            return code, json.load(f)

    # -- structural mode ----------------------------------------------

    def test_identical_reports_pass(self):
        rows = [{"kind": "hmac_micro", "scalar_ms": 10.0, "speedup": 4.0,
                 "guard_met": True}]
        write_report(self.base_dir, "BENCH_batched_crypto.json",
                     "batched_crypto", rows)
        write_report(self.run_dir, "BENCH_batched_crypto.json",
                     "batched_crypto", rows)
        code, verdict = self.run_gate()
        self.assertEqual(code, 0)
        self.assertEqual(verdict["verdict"], "PASS")
        self.assertEqual(verdict["benches_compared"], 1)

    def test_structural_ignores_numeric_drift(self):
        write_report(self.base_dir, "BENCH_batched_crypto.json",
                     "batched_crypto",
                     [{"kind": "hmac_micro", "scalar_ms": 10.0}])
        write_report(self.run_dir, "BENCH_batched_crypto.json",
                     "batched_crypto",
                     [{"kind": "hmac_micro", "scalar_ms": 9999.0}])
        code, verdict = self.run_gate()
        self.assertEqual(code, 0, verdict)

    def test_schema_bump_fails(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 5.0}], schema=1)
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 5.0}], schema=2)
        code, verdict = self.run_gate()
        self.assertEqual(code, 1)
        kinds = {f["kind"] for b in verdict["benches"]
                 for f in b["failures"]}
        self.assertIn("schema_mismatch", kinds)

    def test_missing_metric_fails(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 5.0, "drops": 0}])
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 6.0}])
        code, verdict = self.run_gate()
        self.assertEqual(code, 1)
        kinds = {f["kind"] for b in verdict["benches"]
                 for f in b["failures"]}
        self.assertIn("missing_metric", kinds)

    def test_nan_metric_fails_even_structurally(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 5.0}])
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": float("nan")}])
        code, verdict = self.run_gate()
        self.assertEqual(code, 1)
        kinds = {f["kind"] for b in verdict["benches"]
                 for f in b["failures"]}
        self.assertIn("not_finite", kinds)

    def test_broken_boolean_invariant_fails(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "all_verified": True}])
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "all_verified": False}])
        code, verdict = self.run_gate()
        self.assertEqual(code, 1)
        kinds = {f["kind"] for b in verdict["benches"]
                 for f in b["failures"]}
        self.assertIn("invariant_broken", kinds)

    def test_baseline_false_boolean_places_no_obligation(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "guard_met": False}])
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "guard_met": True}])
        code, _ = self.run_gate()
        self.assertEqual(code, 0)

    def test_fewer_fresh_rows_tolerated(self):
        write_report(self.base_dir, "BENCH_engine_multiquery.json",
                     "engine_multiquery",
                     [{"k": 1, "epoch_ms": 1.0}, {"k": 64, "epoch_ms": 9.0}])
        write_report(self.run_dir, "BENCH_engine_multiquery.json",
                     "engine_multiquery", [{"k": 1, "epoch_ms": 1.1}])
        code, verdict = self.run_gate()
        self.assertEqual(code, 0)
        bench = verdict["benches"][0]
        self.assertEqual(bench["matched_rows"], 1)
        self.assertEqual(bench["unmatched_baseline_rows"], [64])

    def test_fresh_bench_without_baseline_skipped(self):
        write_report(self.run_dir, "BENCH_new_thing.json", "new_thing",
                     [{"x_ms": 1.0}])
        code, verdict = self.run_gate()
        self.assertEqual(code, 0)
        self.assertEqual(verdict["benches_skipped_no_baseline"],
                         ["new_thing"])

    # -- strict mode --------------------------------------------------

    def test_strict_regression_beyond_slack_fails(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 10.0}])
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 30.0}])  # 3x > 2.5x slack
        code, verdict = self.run_gate("--strict")
        self.assertEqual(code, 1)
        kinds = {f["kind"] for b in verdict["benches"]
                 for f in b["failures"]}
        self.assertIn("regression", kinds)

    def test_strict_regression_within_slack_passes(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 10.0}])
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 20.0}])  # 2x < 2.5x slack
        code, _ = self.run_gate("--strict")
        self.assertEqual(code, 0)

    def test_strict_speedup_drop_fails(self):
        write_report(self.base_dir, "BENCH_batched_crypto.json",
                     "batched_crypto",
                     [{"kind": "hmac_micro", "speedup": 5.0}])
        write_report(self.run_dir, "BENCH_batched_crypto.json",
                     "batched_crypto",
                     [{"kind": "hmac_micro", "speedup": 1.0}])  # 0.2 < 1/2.5
        code, verdict = self.run_gate("--strict")
        self.assertEqual(code, 1, verdict)

    def test_strict_improvement_passes(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 10.0}])
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "rtt_us": 1.0}])
        code, _ = self.run_gate("--strict")
        self.assertEqual(code, 0)

    def test_strict_exact_metric_must_match(self):
        write_report(self.base_dir, "BENCH_engine_multiquery.json",
                     "engine_multiquery",
                     [{"k": 8, "channel_epochs": 100, "epoch_ms": 2.0}])
        write_report(self.run_dir, "BENCH_engine_multiquery.json",
                     "engine_multiquery",
                     [{"k": 8, "channel_epochs": 101, "epoch_ms": 2.0}])
        code, verdict = self.run_gate("--strict")
        self.assertEqual(code, 1)
        kinds = {f["kind"] for b in verdict["benches"]
                 for f in b["failures"]}
        self.assertIn("exact_mismatch", kinds)

    def test_strict_ignored_suffix_never_compared(self):
        write_report(self.base_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "cache_hits": 10}])
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp", "cache_hits": 99999}])
        code, _ = self.run_gate("--strict")
        self.assertEqual(code, 0)

    # -- classify() and CLI edge cases --------------------------------

    def test_classify_directions(self):
        self.assertEqual(bench_compare.classify("epoch_ms"), "lower")
        self.assertEqual(bench_compare.classify("rtt_us"), "lower")
        self.assertEqual(bench_compare.classify("speedup"), "higher")
        self.assertEqual(bench_compare.classify("adx_speedup"), "higher")
        self.assertEqual(bench_compare.classify("channel_epochs"), "exact")
        self.assertEqual(bench_compare.classify("cache_hits"), "ignore")
        self.assertEqual(bench_compare.classify("overhead_pct"), "ignore")
        self.assertEqual(bench_compare.classify("unknown_metric"), "ignore")

    def test_missing_run_dir_is_usage_error(self):
        code = bench_compare.main(
            [os.path.join(self._tmp.name, "nope"),
             "--baseline-dir", self.base_dir])
        self.assertEqual(code, 2)

    def test_empty_run_dir_is_usage_error(self):
        code = bench_compare.main(
            [self.run_dir, "--baseline-dir", self.base_dir])
        self.assertEqual(code, 2)

    def test_bad_slack_is_usage_error(self):
        write_report(self.run_dir, "BENCH_transport.json", "transport",
                     [{"mode": "udp"}])
        code = bench_compare.main(
            [self.run_dir, "--baseline-dir", self.base_dir,
             "--slack", "0.5"])
        self.assertEqual(code, 2)

    def test_corrupt_fresh_report_is_io_error(self):
        with open(os.path.join(self.run_dir, "BENCH_broken.json"), "w",
                  encoding="utf-8") as f:
            f.write("{not json")
        code = bench_compare.main(
            [self.run_dir, "--baseline-dir", self.base_dir])
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
