// SECOA_M bound to the network simulator: exact MAX end to end, with
// attacks.
#include <gtest/gtest.h>

#include "net/adversary.h"
#include "runner/runner.h"

namespace sies::runner {
namespace {

struct MaxFixture {
  explicit MaxFixture(uint32_t n = 9, uint64_t seed = 31)
      : topology(net::Topology::BuildCompleteTree(n, 3).value()),
        network(topology),
        rng(seed),
        kp(crypto::GenerateRsaKeyPair(512, rng, 3).value()),
        ops(kp.public_key),
        keys(secoa::GenerateKeys(n, EncodeUint64(seed))),
        protocol(ops, keys, topology, [n](uint32_t i, uint64_t e) {
          return Value(i, e, n);
        }) {}

  static uint64_t Value(uint32_t i, uint64_t e, uint32_t n) {
    return (i * 7 + e * 3) % (n + 5);
  }

  uint64_t TrueMax(uint64_t epoch) const {
    uint64_t max = 0;
    uint32_t n = topology.num_sources();
    for (uint32_t i = 0; i < n; ++i) max = std::max(max, Value(i, epoch, n));
    return max;
  }

  net::Topology topology;
  net::Network network;
  Xoshiro256 rng;
  crypto::RsaKeyPair kp;
  secoa::SealOps ops;
  secoa::QuerierKeys keys;
  SecoaMaxProtocol protocol;
};

TEST(SecoaMaxProtocolTest, ExactMaxOverEpochs) {
  MaxFixture fx;
  for (uint64_t epoch = 1; epoch <= 6; ++epoch) {
    auto report = fx.network.RunEpoch(fx.protocol, epoch).value();
    EXPECT_TRUE(report.outcome.verified) << "epoch " << epoch;
    EXPECT_TRUE(report.outcome.exact);
    EXPECT_EQ(report.outcome.value,
              static_cast<double>(fx.TrueMax(epoch)));
  }
}

TEST(SecoaMaxProtocolTest, ConstantEdgeWidth) {
  MaxFixture fx;
  auto report = fx.network.RunEpoch(fx.protocol, 1).value();
  // 12B header + 20B cert + 64B SEAL (RSA-512 test key).
  EXPECT_DOUBLE_EQ(report.source_to_aggregator.MeanBytes(), 96.0);
  EXPECT_DOUBLE_EQ(report.aggregator_to_querier.MeanBytes(), 96.0);
}

TEST(SecoaMaxProtocolTest, TamperedValueDetected) {
  MaxFixture fx;
  net::BitFlipAdversary adv(fx.topology.root(), /*bit_index=*/3);
  fx.network.SetAdversary(&adv);
  auto report = fx.network.RunEpoch(fx.protocol, 2);
  // Either the PSR fails to parse or verification rejects it.
  if (report.ok() && adv.tampered_count() > 0) {
    EXPECT_FALSE(report.value().outcome.verified);
  }
}

TEST(SecoaMaxProtocolTest, ReplayDetected) {
  MaxFixture fx;
  net::ReplayAdversary adv(1);
  fx.network.SetAdversary(&adv);
  auto first = fx.network.RunEpoch(fx.protocol, 1).value();
  EXPECT_TRUE(first.outcome.verified);
  auto replayed = fx.network.RunEpoch(fx.protocol, 2).value();
  EXPECT_GT(adv.replayed_count(), 0u);
  EXPECT_FALSE(replayed.outcome.verified);
}

TEST(SecoaSumProtocolNetworkTest, InFlightTamperDetected) {
  // The SUM protocol at the network level under a bit-flip adversary:
  // either the mutated PSR fails to parse or verification rejects it.
  uint32_t n = 8;
  auto topology = net::Topology::BuildCompleteTree(n, 4).value();
  net::Network network(topology);
  Xoshiro256 rng(77);
  auto kp = crypto::GenerateRsaKeyPair(512, rng, 3).value();
  secoa::SealOps ops(kp.public_key);
  secoa::SumParams params{n, 16, 77};
  auto keys = secoa::GenerateKeys(n, EncodeUint64(77));
  SecoaProtocol protocol(ops, params, keys, topology,
                         [](uint32_t i, uint64_t e) {
                           return 1800 + 100 * i + e;
                         });
  ASSERT_TRUE(network.RunEpoch(protocol, 1).value().outcome.verified);
  // SECOA's guarantee is weaker than "any flipped bit rejects": a flip
  // that loses the per-sketch MAX never influences the result and the
  // PSR legitimately verifies. The sound property: a tampered epoch is
  // either rejected, or its accepted estimate equals the honest one.
  int attacks = 0, rejected = 0, harmless = 0;
  for (int trial = 0; trial < 12; ++trial) {
    uint64_t epoch = 10 + trial;
    auto honest = network.RunEpoch(protocol, epoch).value();
    ASSERT_TRUE(honest.outcome.verified);
    net::BitFlipAdversary adv(
        static_cast<net::NodeId>(trial % topology.num_nodes()),
        100 + 37 * trial);
    network.SetAdversary(&adv);
    auto report = network.RunEpoch(protocol, epoch);
    network.SetAdversary(nullptr);
    if (!report.ok()) {
      ++attacks;
      ++rejected;  // parse failure: detected
      continue;
    }
    if (adv.tampered_count() == 0) continue;
    ++attacks;
    if (!report.value().outcome.verified) {
      ++rejected;
    } else if (report.value().outcome.value == honest.outcome.value) {
      ++harmless;
    }
  }
  EXPECT_GT(attacks, 0);
  EXPECT_EQ(rejected + harmless, attacks)
      << "an accepted tampered epoch changed the result";
}

TEST(SecoaMaxProtocolTest, FailedSourceHandled) {
  MaxFixture fx;
  // Fail a non-winner source: MAX of the rest still verifies.
  fx.network.FailSource(fx.topology.sources()[0]);
  auto report = fx.network.RunEpoch(fx.protocol, 3).value();
  EXPECT_TRUE(report.outcome.verified);
}

}  // namespace
}  // namespace sies::runner
