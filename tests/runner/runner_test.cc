#include "runner/runner.h"

#include <gtest/gtest.h>

namespace sies::runner {
namespace {

ExperimentConfig SmallConfig(Scheme scheme) {
  ExperimentConfig c;
  c.scheme = scheme;
  c.num_sources = 16;
  c.fanout = 4;
  c.epochs = 3;
  c.secoa_j = 8;
  c.rsa_modulus_bits = 512;
  c.seed = 11;
  return c;
}

TEST(SourceIndexMapTest, DenseAndInvertible) {
  auto topology = net::Topology::BuildCompleteTree(16, 4).value();
  SourceIndexMap map(topology);
  EXPECT_EQ(map.num_sources(), 16u);
  for (uint32_t i = 0; i < 16; ++i) {
    net::NodeId node = map.NodeOf(i);
    EXPECT_EQ(map.IndexOf(node).value(), i);
  }
  // The root is not a source.
  EXPECT_FALSE(map.IndexOf(topology.root()).ok());
}

TEST(SourceIndexMapTest, TranslatesLists) {
  auto topology = net::Topology::BuildCompleteTree(8, 2).value();
  SourceIndexMap map(topology);
  std::vector<net::NodeId> nodes = {map.NodeOf(3), map.NodeOf(1)};
  auto indices = map.ToIndices(nodes).value();
  EXPECT_EQ(indices, (std::vector<uint32_t>{3, 1}));
  EXPECT_FALSE(map.ToIndices({topology.root()}).ok());
}

TEST(RunExperimentTest, SiesExactAndVerified) {
  auto result = RunExperiment(SmallConfig(Scheme::kSies)).value();
  EXPECT_EQ(result.scheme_name, "SIES");
  EXPECT_TRUE(result.all_verified);
  EXPECT_DOUBLE_EQ(result.mean_relative_error, 0.0) << "SIES must be exact";
  // Wire width: 32-byte PSR + 2-byte contributor bitmap (N=16) on
  // every edge class.
  EXPECT_DOUBLE_EQ(result.source_to_aggregator_bytes, 34.0);
  EXPECT_DOUBLE_EQ(result.aggregator_to_aggregator_bytes, 34.0);
  EXPECT_DOUBLE_EQ(result.aggregator_to_querier_bytes, 34.0);
}

TEST(RunExperimentTest, CmtExact) {
  auto result = RunExperiment(SmallConfig(Scheme::kCmt)).value();
  EXPECT_EQ(result.scheme_name, "CMT");
  EXPECT_DOUBLE_EQ(result.mean_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(result.source_to_aggregator_bytes, 20.0);
}

TEST(RunExperimentTest, SecoaVerifiedButApproximate) {
  auto result = RunExperiment(SmallConfig(Scheme::kSecoa)).value();
  EXPECT_EQ(result.scheme_name, "SECOA_S");
  EXPECT_TRUE(result.all_verified);
  EXPECT_GT(result.mean_relative_error, 0.0) << "sketches approximate";
  // J=8 is very coarse; just require the right order of magnitude window.
  EXPECT_LT(result.mean_relative_error, 20.0);
  // SECOA edges dwarf SIES edges even at J=8 with 512-bit SEALs.
  EXPECT_GT(result.source_to_aggregator_bytes, 500.0);
}

TEST(RunExperimentTest, SecoaCostsDwarfSiesCosts) {
  // The true ratio is >10x even at J=8; the 2x asserted here leaves
  // headroom for noisy parallel-ctest timing.
  auto sies = RunExperiment(SmallConfig(Scheme::kSies)).value();
  auto secoa = RunExperiment(SmallConfig(Scheme::kSecoa)).value();
  EXPECT_GT(secoa.source_cpu_seconds, sies.source_cpu_seconds * 2);
  EXPECT_GT(secoa.aggregator_cpu_seconds, sies.aggregator_cpu_seconds * 2);
}

TEST(RunExperimentTest, DeterministicAcrossRuns) {
  auto a = RunExperiment(SmallConfig(Scheme::kSies)).value();
  auto b = RunExperiment(SmallConfig(Scheme::kSies)).value();
  EXPECT_EQ(a.all_verified, b.all_verified);
  EXPECT_DOUBLE_EQ(a.mean_relative_error, b.mean_relative_error);
}

TEST(RunExperimentTest, FanoutSweepRuns) {
  for (uint32_t f = 2; f <= 6; ++f) {
    ExperimentConfig c = SmallConfig(Scheme::kSies);
    c.fanout = f;
    auto result = RunExperiment(c).value();
    EXPECT_TRUE(result.all_verified) << "fanout " << f;
    EXPECT_DOUBLE_EQ(result.mean_relative_error, 0.0) << "fanout " << f;
  }
}

// The parallel source phase must not change a single bit of the
// simulation: PSRs are delivered serially in source order, so traffic,
// the loss-RNG sequence, and the evaluated results all match the serial
// run exactly.
TEST(RunExperimentTest, ResultsBitIdenticalAcrossThreadCounts) {
  struct EpochResult {
    uint64_t epoch = 0;
    double value = -1.0;
    bool verified = false;
    uint64_t lost = 0;
    uint64_t sa_bytes = 0;
    bool operator==(const EpochResult&) const = default;
  };
  auto run = [](uint32_t threads) {
    std::vector<EpochResult> results;
    net::Network network(net::Topology::BuildCompleteTree(16, 4).value());
    EXPECT_TRUE(network.SetLossRate(0.15, 99).ok());
    common::ThreadPool pool(threads);
    network.SetThreadPool(&pool);
    auto params = core::MakeParams(16, 11).value();
    core::QuerierKeys keys = core::GenerateKeys(params, EncodeUint64(11));
    ValueFn values = [](uint32_t index, uint64_t epoch) {
      return 1800 + 13 * index + epoch;
    };
    SiesProtocol protocol(params, std::move(keys), network.topology(),
                          values);
    protocol.SetThreadPool(&pool);
    for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
      auto report = network.RunEpoch(protocol, epoch);
      if (!report.ok()) {
        // Losses can starve the querier of a final payload; that must
        // happen identically for every thread count.
        results.push_back({epoch, -1.0, false, network.lost_messages(), 0});
        continue;
      }
      const net::EpochReport& r = report.value();
      results.push_back({epoch, r.outcome.value, r.outcome.verified,
                         network.lost_messages(),
                         r.source_to_aggregator.bytes});
    }
    return results;
  };
  std::vector<EpochResult> serial = run(1);
  std::vector<EpochResult> parallel = run(3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == parallel[i]) << "epoch " << serial[i].epoch;
  }
}

TEST(RunExperimentTest, DomainSweepLeavesSiesExact) {
  for (uint32_t k = 0; k <= 4; ++k) {
    ExperimentConfig c = SmallConfig(Scheme::kSies);
    c.scale_pow10 = k;
    auto result = RunExperiment(c).value();
    EXPECT_TRUE(result.all_verified) << "scale 10^" << k;
    EXPECT_DOUBLE_EQ(result.mean_relative_error, 0.0) << "scale 10^" << k;
  }
}

}  // namespace
}  // namespace sies::runner
