// Parameter-grid integration sweep: full simulated SIES networks across
// the paper's experiment grid (N x F x D). SIES is cheap enough to run
// the entire grid for real in the unit-test budget — every cell must be
// exact, verified, and 32 + ceil(N/8) bytes per edge (PSR + contributor
// bitmap).
#include <gtest/gtest.h>

#include "runner/runner.h"

namespace sies::runner {
namespace {

struct GridPoint {
  uint32_t n;
  uint32_t f;
  uint32_t scale;
};

class SiesGridSweep : public ::testing::TestWithParam<GridPoint> {};

TEST_P(SiesGridSweep, ExactVerifiedConstantWidth) {
  GridPoint p = GetParam();
  ExperimentConfig config;
  config.scheme = Scheme::kSies;
  config.num_sources = p.n;
  config.fanout = p.f;
  config.scale_pow10 = p.scale;
  config.epochs = 2;
  config.seed = 1000 + p.n + p.f + p.scale;
  auto result = RunExperiment(config).value();
  EXPECT_TRUE(result.all_verified);
  EXPECT_DOUBLE_EQ(result.mean_relative_error, 0.0);
  const double wire_bytes = 32.0 + (p.n + 7) / 8;
  EXPECT_DOUBLE_EQ(result.source_to_aggregator_bytes, wire_bytes);
  EXPECT_DOUBLE_EQ(result.aggregator_to_querier_bytes, wire_bytes);
}

std::string GridName(const ::testing::TestParamInfo<GridPoint>& info) {
  return "N" + std::to_string(info.param.n) + "F" +
         std::to_string(info.param.f) + "D" +
         std::to_string(info.param.scale);
}

// The paper's N sweep at default F/D, F sweep at default N/D, and D
// sweep at default N/F — shrunk to unit-test scale but structurally
// identical (N=1024 cells included; they cost ~20 ms each for SIES).
INSTANTIATE_TEST_SUITE_P(
    PaperGrid, SiesGridSweep,
    ::testing::Values(GridPoint{64, 4, 2}, GridPoint{256, 4, 2},
                      GridPoint{1024, 4, 2}, GridPoint{64, 2, 2},
                      GridPoint{64, 3, 2}, GridPoint{64, 5, 2},
                      GridPoint{64, 6, 2}, GridPoint{64, 4, 0},
                      GridPoint{64, 4, 1}, GridPoint{64, 4, 3},
                      GridPoint{64, 4, 4}, GridPoint{1024, 2, 0},
                      GridPoint{1024, 6, 4}),
    GridName);

class CmtGridSweep : public ::testing::TestWithParam<GridPoint> {};

TEST_P(CmtGridSweep, ExactConstantWidth) {
  GridPoint p = GetParam();
  ExperimentConfig config;
  config.scheme = Scheme::kCmt;
  config.num_sources = p.n;
  config.fanout = p.f;
  config.scale_pow10 = p.scale;
  config.epochs = 2;
  config.seed = 2000 + p.n + p.f + p.scale;
  auto result = RunExperiment(config).value();
  EXPECT_DOUBLE_EQ(result.mean_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(result.source_to_aggregator_bytes, 20.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, CmtGridSweep,
    ::testing::Values(GridPoint{64, 4, 2}, GridPoint{256, 4, 2},
                      GridPoint{1024, 4, 2}, GridPoint{64, 2, 0},
                      GridPoint{64, 6, 4}),
    GridName);

class SecoaGridSweep : public ::testing::TestWithParam<GridPoint> {};

TEST_P(SecoaGridSweep, VerifiedApproximate) {
  GridPoint p = GetParam();
  ExperimentConfig config;
  config.scheme = Scheme::kSecoa;
  config.num_sources = p.n;
  config.fanout = p.f;
  config.scale_pow10 = p.scale;
  config.epochs = 1;
  config.secoa_j = 16;  // small J: these cells test protocol plumbing
  config.rsa_modulus_bits = 512;
  config.seed = 3000 + p.n + p.f + p.scale;
  auto result = RunExperiment(config).value();
  EXPECT_TRUE(result.all_verified);
  EXPECT_GT(result.source_to_aggregator_bytes, 500.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, SecoaGridSweep,
    ::testing::Values(GridPoint{16, 4, 2}, GridPoint{32, 2, 1},
                      GridPoint{32, 6, 3}),
    GridName);

// SIES must be exact on ANY tree, not just complete ones: random
// irregular topologies, random-walk workload, with failures sprinkled in.
class RandomTopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTopologySweep, ExactOnIrregularTrees) {
  int seed = GetParam();
  Xoshiro256 rng(seed);
  uint32_t n = 4 + static_cast<uint32_t>(rng.NextBelow(60));
  uint32_t f = 2 + static_cast<uint32_t>(rng.NextBelow(5));
  auto topology = net::Topology::BuildRandomTree(n, f, rng).value();
  net::Network network(topology);
  auto params = core::MakeParams(n, seed).value();
  auto keys = core::GenerateKeys(params, EncodeUint64(seed));
  workload::TraceConfig tc;
  tc.num_sources = n;
  tc.seed = seed;
  tc.temporal_model = workload::TemporalModel::kRandomWalk;
  workload::TraceGenerator trace(tc);
  SiesProtocol protocol(params, keys, topology,
                        [&trace](uint32_t i, uint64_t e) {
                          return trace.ValueAt(i, e);
                        });
  for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
    auto report = network.RunEpoch(protocol, epoch).value();
    EXPECT_TRUE(report.outcome.verified)
        << "seed " << seed << " epoch " << epoch;
    EXPECT_EQ(report.outcome.value,
              static_cast<double>(Snapshot(trace, epoch).exact_sum));
  }
  // One reported failure; the rest must still verify exactly.
  if (n > 1) {
    net::NodeId victim =
        topology.sources()[rng.NextBelow(topology.sources().size())];
    network.FailSource(victim);
    auto report = network.RunEpoch(protocol, 4).value();
    EXPECT_TRUE(report.outcome.verified) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologySweep,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace sies::runner
