#include "runner/deployment.h"

#include <gtest/gtest.h>

#include "net/adversary.h"

namespace sies::runner {
namespace {

ContinuousDeployment MakeDeployment(uint32_t n = 16, uint64_t seed = 8) {
  workload::TraceConfig tc;
  tc.seed = seed;
  return ContinuousDeployment::Create(
             net::Topology::BuildCompleteTree(n, 4).value(), seed, tc)
      .value();
}

core::Query SumTempQuery() {
  core::Query q;
  q.aggregate = core::Aggregate::kSum;
  q.attribute = core::Field::kTemperature;
  q.query_id = 1;
  return q;
}

core::Query AvgHumidityQuery() {
  core::Query q;
  q.aggregate = core::Aggregate::kAvg;
  q.attribute = core::Field::kHumidity;
  q.scale_pow10 = 1;
  q.query_id = 2;
  return q;
}

TEST(DeploymentTest, EpochBeforeRegistrationFails) {
  auto deployment = MakeDeployment();
  EXPECT_FALSE(deployment.RunEpoch(1).ok());
}

TEST(DeploymentTest, RegisterAndRun) {
  auto deployment = MakeDeployment();
  ASSERT_TRUE(deployment.RegisterQuery(SumTempQuery()).ok());
  for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
    auto out = deployment.RunEpoch(epoch).value();
    EXPECT_TRUE(out.verified) << "epoch " << epoch;
    EXPECT_EQ(out.query_id, 1u);
    EXPECT_GT(out.result.value, 0.0);
  }
  EXPECT_EQ(deployment.log().recorded_epochs(), 3u);
  EXPECT_EQ(deployment.log().rejected_epochs(), 0u);
}

TEST(DeploymentTest, QuerySwitchWithoutRekeying) {
  // The paper's lifecycle: issue a NEW query mid-stream via muTesla —
  // no key re-establishment — and keep verifying.
  auto deployment = MakeDeployment();
  ASSERT_TRUE(deployment.RegisterQuery(SumTempQuery()).ok());
  auto sum_epoch = deployment.RunEpoch(1).value();
  EXPECT_TRUE(sum_epoch.verified);

  ASSERT_TRUE(deployment.RegisterQuery(AvgHumidityQuery()).ok());
  EXPECT_EQ(deployment.queries_registered(), 2u);
  auto avg_epoch = deployment.RunEpoch(2).value();
  EXPECT_TRUE(avg_epoch.verified);
  EXPECT_EQ(avg_epoch.query_id, 2u);
  // AVG(humidity) lands in the generator's humidity range.
  EXPECT_GT(avg_epoch.result.value, 30.0);
  EXPECT_LT(avg_epoch.result.value, 70.0);
  // Back to the first query: still no rekeying, still verifying.
  ASSERT_TRUE(deployment.RegisterQuery(SumTempQuery()).ok());
  EXPECT_TRUE(deployment.RunEpoch(3).value().verified);
}

TEST(DeploymentTest, AttacksStillDetectedAfterQuerySwitch) {
  auto deployment = MakeDeployment();
  ASSERT_TRUE(deployment.RegisterQuery(SumTempQuery()).ok());
  ASSERT_TRUE(deployment.RunEpoch(1).value().verified);
  ASSERT_TRUE(deployment.RegisterQuery(AvgHumidityQuery()).ok());

  net::BitFlipAdversary adversary(
      deployment.network().topology().root(), 5);
  deployment.network().SetAdversary(&adversary);
  auto attacked = deployment.RunEpoch(2);
  deployment.network().SetAdversary(nullptr);
  if (attacked.ok()) {
    EXPECT_FALSE(attacked.value().verified);
  }
  EXPECT_TRUE(deployment.RunEpoch(3).value().verified);
  EXPECT_GE(deployment.log().rejected_epochs(), attacked.ok() ? 1u : 0u);
}

TEST(DeploymentTest, LogTracksGaps) {
  auto deployment = MakeDeployment();
  ASSERT_TRUE(deployment.RegisterQuery(SumTempQuery()).ok());
  ASSERT_TRUE(deployment.RunEpoch(1).ok());
  ASSERT_TRUE(deployment.RunEpoch(5).ok());  // epochs 2-4 never reported
  EXPECT_EQ(deployment.log().missed_epochs(), 3u);
}

TEST(DeploymentTest, ChainExhaustionReported) {
  workload::TraceConfig tc;
  tc.seed = 3;
  auto deployment =
      ContinuousDeployment::Create(
          net::Topology::BuildCompleteTree(4, 2).value(), 3, tc,
          /*chain_length=*/2)
          .value();
  EXPECT_TRUE(deployment.RegisterQuery(SumTempQuery()).ok());
  EXPECT_TRUE(deployment.RegisterQuery(AvgHumidityQuery()).ok());
  // Third registration exceeds the muTesla chain.
  EXPECT_FALSE(deployment.RegisterQuery(SumTempQuery()).ok());
}

}  // namespace
}  // namespace sies::runner
