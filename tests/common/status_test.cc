#include "common/status.h"

#include <gtest/gtest.h>

namespace sies {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::VerificationFailed("x").code(),
            StatusCode::kVerificationFailed);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::VerificationFailed("bad share sum");
  EXPECT_EQ(s.ToString(), "VERIFICATION_FAILED: bad share sum");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kVerificationFailed),
            "VERIFICATION_FAILED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() -> Status { return Status::OutOfRange("too big"); };
  auto outer = [&]() -> Status {
    SIES_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, ReturnIfErrorMacroPassesOk) {
  auto inner = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    SIES_RETURN_IF_ERROR(inner());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace sies
