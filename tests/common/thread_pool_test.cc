#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sies::common {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, SingleLaneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, DisjointSlotWritesAreDeterministic) {
  auto compute = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(257);
    pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i + 7; });
    return out;
  };
  EXPECT_EQ(compute(1), compute(3));
}

TEST(ThreadPoolTest, ZeroAndOneSizedLoops) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&](size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 50u * (99u * 100u / 2));
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> inner_calls{0};
  pool.ParallelFor(6, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 24);
}

}  // namespace
}  // namespace sies::common
