#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace sies {
namespace {

TEST(LoggingTest, LevelFilterRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // silence output during the test
  SIES_LOG(Debug) << "debug " << 1;
  SIES_LOG(Info) << "info " << 2.5;
  SIES_LOG(Warning) << "warn " << "text";
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double ms = watch.ElapsedMillis();
  EXPECT_GE(ms, 9.0);
  EXPECT_LT(ms, 1000.0);
  EXPECT_NEAR(watch.ElapsedMicros(), watch.ElapsedMillis() * 1000.0,
              watch.ElapsedMicros() * 0.5);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 5.0);
}

TEST(StopwatchTest, Monotonic) {
  Stopwatch watch;
  double a = watch.ElapsedSeconds();
  double b = watch.ElapsedSeconds();
  EXPECT_GE(b, a);
}

TEST(CostAccumulatorTest, AccumulatesAndAverages) {
  CostAccumulator acc;
  EXPECT_EQ(acc.samples(), 0u);
  EXPECT_DOUBLE_EQ(acc.MeanSeconds(), 0.0);
  acc.Add(1.0);
  acc.Add(3.0);
  EXPECT_EQ(acc.samples(), 2u);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(acc.MeanSeconds(), 2.0);
  acc.Reset();
  EXPECT_EQ(acc.samples(), 0u);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.0);
}

}  // namespace
}  // namespace sies
