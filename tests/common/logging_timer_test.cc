#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace sies {
namespace {

TEST(LoggingTest, LevelFilterRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // silence output during the test
  SIES_LOG(Debug) << "debug " << 1;
  SIES_LOG(Info) << "info " << 2.5;
  SIES_LOG(Warning) << "warn " << "text";
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double ms = watch.ElapsedMillis();
  EXPECT_GE(ms, 9.0);
  EXPECT_LT(ms, 1000.0);
  EXPECT_NEAR(watch.ElapsedMicros(), watch.ElapsedMillis() * 1000.0,
              watch.ElapsedMicros() * 0.5);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 5.0);
}

TEST(StopwatchTest, Monotonic) {
  Stopwatch watch;
  double a = watch.ElapsedSeconds();
  double b = watch.ElapsedSeconds();
  EXPECT_GE(b, a);
}

TEST(CostAccumulatorTest, AccumulatesAndAverages) {
  CostAccumulator acc;
  EXPECT_EQ(acc.samples(), 0u);
  EXPECT_DOUBLE_EQ(acc.MeanSeconds(), 0.0);
  acc.Add(1.0);
  acc.Add(3.0);
  EXPECT_EQ(acc.samples(), 2u);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(acc.MeanSeconds(), 2.0);
  acc.Reset();
  EXPECT_EQ(acc.samples(), 0u);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.0);
}

TEST(CostAccumulatorTest, TracksExtremes) {
  CostAccumulator acc;
  // Empty accumulator reports zeros, not the internal sentinels.
  EXPECT_DOUBLE_EQ(acc.MinSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(acc.MaxSeconds(), 0.0);
  acc.Add(2.0);
  EXPECT_DOUBLE_EQ(acc.MinSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(acc.MaxSeconds(), 2.0);
  acc.Add(5.0);
  acc.Add(0.5);
  EXPECT_DOUBLE_EQ(acc.MinSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(acc.MaxSeconds(), 5.0);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.MinSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(acc.MaxSeconds(), 0.0);
}

TEST(CostAccumulatorTest, WelfordVarianceMatchesClosedForm) {
  CostAccumulator acc;
  // Fewer than two samples: variance is defined as 0.
  EXPECT_DOUBLE_EQ(acc.VarianceSeconds(), 0.0);
  acc.Add(4.0);
  EXPECT_DOUBLE_EQ(acc.VarianceSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(acc.StdDevSeconds(), 0.0);
  acc.Reset();
  // {1, 3}: mean 2, population variance ((1)^2 + (1)^2) / 2 = 1.
  acc.Add(1.0);
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.VarianceSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(acc.StdDevSeconds(), 1.0);
  acc.Reset();
  // {2, 4, 4, 4, 5, 5, 7, 9}: the textbook set with variance 4, sd 2.
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_NEAR(acc.VarianceSeconds(), 4.0, 1e-12);
  EXPECT_NEAR(acc.StdDevSeconds(), 2.0, 1e-12);
}

TEST(CostAccumulatorTest, ConstantSamplesHaveZeroSpread) {
  // Welford must not accumulate rounding drift on identical samples.
  CostAccumulator acc;
  for (int i = 0; i < 1000; ++i) acc.Add(0.125);
  EXPECT_DOUBLE_EQ(acc.MinSeconds(), 0.125);
  EXPECT_DOUBLE_EQ(acc.MaxSeconds(), 0.125);
  EXPECT_NEAR(acc.VarianceSeconds(), 0.0, 1e-18);
}

}  // namespace
}  // namespace sies
