#include "common/bytes.h"

#include <gtest/gtest.h>

namespace sies {
namespace {

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff};
  std::string hex = ToHex(data);
  EXPECT_EQ(hex, "00017f80ff");
  auto back = FromHex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(HexTest, EmptyInput) {
  EXPECT_EQ(ToHex(Bytes{}), "");
  auto empty = FromHex("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(HexTest, UppercaseAccepted) {
  auto v = FromHex("DEADBEEF");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ToHex(v.value()), "deadbeef");
}

TEST(HexTest, OddLengthRejected) {
  EXPECT_FALSE(FromHex("abc").ok());
}

TEST(HexTest, NonHexRejected) {
  EXPECT_FALSE(FromHex("zz").ok());
  EXPECT_FALSE(FromHex("0g").ok());
}

TEST(ConstantTimeEqualTest, EqualAndUnequal) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
}

TEST(ConstantTimeEqualTest, LengthMismatchIsFalse) {
  EXPECT_FALSE(ConstantTimeEqual({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(XorIntoTest, XorsElementwise) {
  Bytes dst = {0xff, 0x0f, 0x00};
  Bytes src = {0x0f, 0x0f, 0xaa};
  ASSERT_TRUE(XorInto(dst, src).ok());
  EXPECT_EQ(dst, (Bytes{0xf0, 0x00, 0xaa}));
}

TEST(XorIntoTest, SelfInverse) {
  Bytes dst = {0x12, 0x34, 0x56};
  Bytes orig = dst;
  Bytes key = {0xaa, 0xbb, 0xcc};
  ASSERT_TRUE(XorInto(dst, key).ok());
  ASSERT_TRUE(XorInto(dst, key).ok());
  EXPECT_EQ(dst, orig);
}

TEST(XorIntoTest, LengthMismatchFails) {
  Bytes dst = {1, 2};
  EXPECT_FALSE(XorInto(dst, {1, 2, 3}).ok());
}

TEST(EndianTest, Store32LoadRoundTrip) {
  uint8_t buf[4];
  StoreBigEndian32(0x01020304u, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(LoadBigEndian32(buf), 0x01020304u);
}

TEST(EndianTest, Store64LoadRoundTrip) {
  uint8_t buf[8];
  StoreBigEndian64(0x0102030405060708ull, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(LoadBigEndian64(buf), 0x0102030405060708ull);
}

TEST(EndianTest, ExtremesRoundTrip) {
  uint8_t buf[8];
  for (uint64_t v : {uint64_t{0}, UINT64_MAX, uint64_t{1} << 63}) {
    StoreBigEndian64(v, buf);
    EXPECT_EQ(LoadBigEndian64(buf), v);
  }
}

TEST(EncodeUint64Test, BigEndianEightBytes) {
  Bytes e = EncodeUint64(0x0a0b0c0d0e0f1011ull);
  ASSERT_EQ(e.size(), 8u);
  EXPECT_EQ(e[0], 0x0a);
  EXPECT_EQ(e[7], 0x11);
}

TEST(SecureWipeTest, ZeroesAndClears) {
  Bytes secret = {0xde, 0xad, 0xbe, 0xef};
  SecureWipe(secret);
  EXPECT_TRUE(secret.empty());
  EXPECT_EQ(secret.capacity(), 0u);
}

TEST(SecureWipeTest, EmptyIsFine) {
  Bytes empty;
  SecureWipe(empty);
  EXPECT_TRUE(empty.empty());
}

TEST(ConcatTest, JoinsInOrder) {
  EXPECT_EQ(Concat({1, 2}, {3}), (Bytes{1, 2, 3}));
  EXPECT_EQ(Concat({}, {3}), (Bytes{3}));
  EXPECT_EQ(Concat({1}, {}), (Bytes{1}));
}

}  // namespace
}  // namespace sies
