#include "common/flags.h"

#include <gtest/gtest.h>

namespace sies {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  auto flags = Flags::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(flags.ok());
  return flags.value();
}

TEST(FlagsTest, EqualsForm) {
  Flags f = ParseArgs({"--scheme=sies", "--sources=1024"});
  EXPECT_EQ(f.GetString("scheme", ""), "sies");
  EXPECT_EQ(f.GetInt("sources", 0).value(), 1024);
}

TEST(FlagsTest, SpaceForm) {
  Flags f = ParseArgs({"--scheme", "cmt", "--epochs", "5"});
  EXPECT_EQ(f.GetString("scheme", ""), "cmt");
  EXPECT_EQ(f.GetInt("epochs", 0).value(), 5);
}

TEST(FlagsTest, BareBoolean) {
  Flags f = ParseArgs({"--csv", "--verbose"});
  EXPECT_TRUE(f.GetBool("csv", false).value());
  EXPECT_TRUE(f.GetBool("verbose", false).value());
  EXPECT_FALSE(f.GetBool("absent", false).value());
  EXPECT_TRUE(f.GetBool("absent", true).value());
}

TEST(FlagsTest, BooleanSpellings) {
  Flags f = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=false",
                       "--e=0", "--g=no"});
  EXPECT_TRUE(f.GetBool("a", false).value());
  EXPECT_TRUE(f.GetBool("b", false).value());
  EXPECT_TRUE(f.GetBool("c", false).value());
  EXPECT_FALSE(f.GetBool("d", true).value());
  EXPECT_FALSE(f.GetBool("e", true).value());
  EXPECT_FALSE(f.GetBool("g", true).value());
  Flags bad = ParseArgs({"--x=maybe"});
  EXPECT_FALSE(bad.GetBool("x", false).ok());
}

TEST(FlagsTest, Defaults) {
  Flags f = ParseArgs({});
  EXPECT_EQ(f.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(f.GetInt("missing", 42).value(), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 2.5).value(), 2.5);
  EXPECT_FALSE(f.Has("missing"));
}

TEST(FlagsTest, MalformedNumbersRejected) {
  Flags f = ParseArgs({"--n=12abc", "--d=1.2.3"});
  EXPECT_FALSE(f.GetInt("n", 0).ok());
  EXPECT_FALSE(f.GetDouble("d", 0).ok());
}

TEST(FlagsTest, NegativeAndDoubleValues) {
  Flags f = ParseArgs({"--delta=-7", "--ratio=0.125"});
  EXPECT_EQ(f.GetInt("delta", 0).value(), -7);
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio", 0).value(), 0.125);
}

TEST(FlagsTest, Positional) {
  Flags f = ParseArgs({"input.bin", "--k=v", "output.bin"});
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"input.bin", "output.bin"}));
}

TEST(FlagsTest, DoubleDashEndsFlags) {
  Flags f = ParseArgs({"--k=v", "--", "--not-a-flag"});
  EXPECT_EQ(f.GetString("k", ""), "v");
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagsTest, UnusedFlagDetection) {
  Flags f = ParseArgs({"--used=1", "--typo=2"});
  (void)f.GetInt("used", 0);
  auto unused = f.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, LastValueWins) {
  Flags f = ParseArgs({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetInt("n", 0).value(), 2);
}

TEST(FlagsTest, IntInRangeAcceptsBounds) {
  Flags f = ParseArgs({"--queries=1", "--k=8"});
  EXPECT_EQ(f.GetIntInRange("queries", 0, 1, 8).value(), 1);
  EXPECT_EQ(f.GetIntInRange("k", 0, 1, 8).value(), 8);
}

TEST(FlagsTest, IntInRangeRejectsOutOfRange) {
  // The sies_sim --queries contract: 0 concurrent queries is an error,
  // not a silent no-op.
  Flags f = ParseArgs({"--queries=0", "--big=9"});
  auto zero = f.GetIntInRange("queries", 0, 1, 8);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(zero.status().ToString().find("[1, 8]"), std::string::npos);
  EXPECT_FALSE(f.GetIntInRange("big", 0, 1, 8).ok());
}

TEST(FlagsTest, IntInRangeRejectsNonNumeric) {
  Flags f = ParseArgs({"--queries=many"});
  auto v = f.GetIntInRange("queries", 0, 1, 8);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, IntRejectsOverflow) {
  // Pre-fix, strtoll saturated --epoch-ms 99999999999999999999 to
  // LLONG_MAX with errno == ERANGE left unchecked, and the bogus value
  // flowed silently into narrower config fields.
  Flags f = ParseArgs({"--epoch-ms=99999999999999999999",
                       "--neg=-99999999999999999999", "--ok=9000000000"});
  auto big = f.GetInt("epoch-ms", 0);
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(big.status().ToString().find("out of range"),
            std::string::npos);
  EXPECT_FALSE(f.GetInt("neg", 0).ok());
  // Values inside int64 range (even past 2^32) still parse.
  EXPECT_EQ(f.GetInt("ok", 0).value(), 9'000'000'000LL);
}

TEST(FlagsTest, IntInRangeReportsOverflowAsParseError) {
  Flags f = ParseArgs({"--queries=99999999999999999999"});
  auto v = f.GetIntInRange("queries", 0, 1, 8);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, DoubleRejectsOverflowKeepsUnderflow) {
  Flags f = ParseArgs({"--rate=1e999", "--neg=-1e999", "--tiny=1e-400"});
  auto inf = f.GetDouble("rate", 0.0);
  ASSERT_FALSE(inf.ok());
  EXPECT_EQ(inf.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(f.GetDouble("neg", 0.0).ok());
  // Underflow to (denormal or) zero is not an error for rate/seconds
  // flags: 1e-400 meaning 0.0 is the caller's intent, honored.
  auto tiny = f.GetDouble("tiny", 1.0);
  ASSERT_TRUE(tiny.ok());
  EXPECT_GE(tiny.value(), 0.0);
  EXPECT_LT(tiny.value(), 1e-300);
}

TEST(FlagsTest, IntInRangeDoesNotRangeCheckTheDefault) {
  // An absent flag returns the caller's default verbatim — sies_sim
  // uses default 0 with min 1 as its "flag not given" sentinel.
  Flags f = ParseArgs({});
  EXPECT_EQ(f.GetIntInRange("queries", 0, 1, 8).value(), 0);
}

}  // namespace
}  // namespace sies
