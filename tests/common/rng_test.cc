#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace sies {
namespace {

TEST(SplitMix64Test, KnownSequence) {
  // Reference values for seed 0 (Vigna's splitmix64 test vector).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(sm.Next(), 0x06c45d188009454full);
}

TEST(SplitMix64Test, DeterministicPerSeed) {
  SplitMix64 a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, NextBelowStaysBelow) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, (1ull << 60)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, NextBelowOneAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Xoshiro256Test, NextInRangeInclusive) {
  Xoshiro256 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u) << "all 4 values should appear in 2000 draws";
}

TEST(Xoshiro256Test, NextInRangeFullSpanDoesNotHang) {
  Xoshiro256 rng(11);
  (void)rng.NextInRange(0, UINT64_MAX);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(13);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(Xoshiro256Test, NextBytesLengthAndVariety) {
  Xoshiro256 rng(17);
  for (size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 20ul, 32ul, 100ul}) {
    Bytes b = rng.NextBytes(n);
    EXPECT_EQ(b.size(), n);
  }
  Bytes big = rng.NextBytes(1000);
  std::set<uint8_t> distinct(big.begin(), big.end());
  EXPECT_GT(distinct.size(), 100u);
}

TEST(Xoshiro256Test, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(21);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBuckets)];
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

}  // namespace
}  // namespace sies
