// Randomized robustness ("poor man's fuzzing"): every wire-format parser
// and verifier in the library is fed random and mutated inputs. The
// invariants: no crash, no false acceptance, errors not aborts.
//
// The CorpusReplay* tests additionally replay the committed fuzz corpora
// and minimized regressions from fuzz/ (path injected as SIES_FUZZ_DIR),
// so the seeds that once broke a parser keep running in the plain unit
// suite — not only under the dedicated `fuzz`-label replay binaries.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/flags.h"
#include "ops/request_parser.h"

#include "cmt/cmt.h"
#include "common/rng.h"
#include "net/datagram.h"
#include "net/udp_transport.h"
#include "crypto/prime.h"
#include "crypto/rsa.h"
#include "mht/merkle_tree.h"
#include "engine/query_spec.h"
#include "mutesla/mutesla.h"
#include "predicate/dyadic.h"
#include "secoa/secoa_max.h"
#include "secoa/secoa_sum.h"
#include "sies/message_format.h"
#include "sies/provisioning.h"
#include "sies/querier.h"

namespace sies {
namespace {

constexpr int kTrials = 200;

// Loads every committed input for one harness: seed corpus plus the
// minimized regressions fuzzing has filed. Fails the suite if the seed
// corpus went missing — the corpora are load-bearing test data, not an
// optional extra.
std::vector<Bytes> LoadFuzzInputs(const std::string& harness) {
  std::vector<Bytes> inputs;
  for (const char* kind : {"corpus", "regressions"}) {
    const std::filesystem::path dir =
        std::filesystem::path(SIES_FUZZ_DIR) / kind / harness;
    if (!std::filesystem::is_directory(dir)) continue;
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file() &&
          entry.path().filename().string()[0] != '.') {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      std::ifstream in(file, std::ios::binary);
      inputs.emplace_back(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
    }
  }
  EXPECT_FALSE(inputs.empty()) << "no committed inputs for " << harness;
  return inputs;
}

std::string AsText(const Bytes& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

TEST(CorpusReplayTest, WireEnvelope) {
  // Mirrors fuzz/wire_envelope_fuzz.cc: byte 0 selects plan width and
  // params instance, the rest is the wire frame.
  auto params16 = core::MakeParams(16, 1).value();
  auto params12 = core::MakeParams(12, 1).value();
  for (const Bytes& input : LoadFuzzInputs("wire_envelope")) {
    if (input.empty()) continue;
    const size_t channels = input[0] & 0x07u;
    const bool padded = (input[0] & 0x08u) != 0;
    const auto& params = padded ? params12 : params16;
    const Bytes wire(input.begin() + 1, input.end());
    auto parsed = core::ParseWireEnvelope(params, wire, channels);
    if (!parsed.ok()) continue;
    EXPECT_EQ(parsed.value().body.size(), channels * params.PsrBytes());
    auto rewire = core::SerializeWirePayload(params, parsed.value().bitmap,
                                             parsed.value().body);
    ASSERT_TRUE(rewire.ok());
    if (!padded) {
      EXPECT_EQ(rewire.value(), wire);
    }
  }
}

TEST(CorpusReplayTest, Datagram) {
  for (const Bytes& input : LoadFuzzInputs("datagram")) {
    auto parsed = net::ParseDatagramFrame(input.data(), input.size());
    if (parsed.ok()) {
      EXPECT_EQ(net::SerializeDatagramFrame(parsed.value()), input);
    }
  }
}

TEST(CorpusReplayTest, QuerySpec) {
  for (const Bytes& input : LoadFuzzInputs("query_spec")) {
    const std::string text = AsText(input);
    auto single = engine::ParseQuerySpec(text);
    if (single.ok() && single.value().band.has_value()) {
      EXPECT_LE(single.value().band->lo, single.value().band->hi) << text;
    }
    (void)engine::ParseQueriesText(text);
  }
  // The minimized non-finite-number regressions must stay REJECTED:
  // before the fix, `id nan` cast NaN to uint32_t (UB) and NaN band
  // bounds slipped past the lo > hi check.
  for (const char* line :
       {"sum temperature id nan", "count humidity scale nan",
        "avg light scale inf", "sum temperature between nan and nan",
        "sum temperature id 1e999"}) {
    EXPECT_FALSE(engine::ParseQuerySpec(line).ok()) << line;
  }
}

TEST(CorpusReplayTest, HttpRequest) {
  for (const Bytes& input : LoadFuzzInputs("http_request")) {
    const std::string raw = AsText(input);
    const std::string line = raw.substr(0, raw.find_first_of("\r\n"));
    ops::HttpRequest request;
    if (ops::ParseRequestLine(line, request) == ops::RequestLineStatus::kOk) {
      EXPECT_LE(request.path.size(), line.size()) << line;
    }
  }
}

TEST(CorpusReplayTest, Flags) {
  for (const Bytes& input : LoadFuzzInputs("flags")) {
    std::string text = AsText(input);
    text = text.substr(0, text.find('\0'));
    std::vector<std::string> tokens = {"prog"};
    for (size_t start = 0; start <= text.size();) {
      const size_t nl = text.find('\n', start);
      if (nl == std::string::npos) {
        tokens.push_back(text.substr(start));
        break;
      }
      tokens.push_back(text.substr(start, nl - start));
      start = nl + 1;
    }
    std::vector<const char*> argv;
    for (const auto& token : tokens) argv.push_back(token.c_str());
    auto flags =
        Flags::Parse(static_cast<int>(argv.size()), argv.data());
    ASSERT_TRUE(flags.ok());
  }
  // The minimized "--" regression: only the FIRST bare "--" terminates
  // flag parsing; the second must survive as a positional.
  const char* argv[] = {"prog", "--a=1", "--", "x", "--", "y"};
  auto flags = Flags::Parse(6, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().positional(),
            (std::vector<std::string>{"x", "--", "y"}));
}

TEST(CorpusReplayTest, Hex) {
  for (const Bytes& input : LoadFuzzInputs("hex")) {
    const std::string text = AsText(input);
    auto parsed = FromHex(text);
    if (parsed.ok()) {
      EXPECT_EQ(ToHex(parsed.value()).size(), text.size());
    }
  }
}

TEST(FuzzTest, FromHexNeverCrashes) {
  Xoshiro256 rng(1);
  for (int t = 0; t < kTrials; ++t) {
    size_t len = rng.NextBelow(64);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    auto parsed = FromHex(s);
    if (parsed.ok()) {
      EXPECT_EQ(ToHex(parsed.value()).size(), s.size());
    }
  }
}

TEST(FuzzTest, SiesParsePsrRandomBytes) {
  auto params = core::MakeParams(8, 1).value();
  Xoshiro256 rng(2);
  for (int t = 0; t < kTrials; ++t) {
    size_t len = rng.NextBelow(64);
    Bytes random = rng.NextBytes(len);
    auto parsed = core::ParsePsr(params, random);
    if (parsed.ok()) {
      // Whatever parsed must re-serialize identically.
      EXPECT_EQ(core::SerializePsr(params, parsed.value()).value(), random);
    }
  }
}

TEST(FuzzTest, SiesQuerierRandomPsrsNeverVerify) {
  // A 32-byte forgery passes verification with probability ~2^-224;
  // seeing even one in 200 random trials means the verifier is broken.
  auto params = core::MakeParams(4, 1).value();
  auto keys = core::GenerateKeys(params, {1});
  core::Querier querier(params, keys);
  Xoshiro256 rng(3);
  int verified_count = 0;
  for (int t = 0; t < kTrials; ++t) {
    Bytes random = rng.NextBytes(params.PsrBytes());
    auto eval = querier.Evaluate(random, t);
    if (eval.ok() && eval.value().verified) ++verified_count;
  }
  EXPECT_EQ(verified_count, 0);
}

TEST(FuzzTest, WireEnvelopeHostileFramesNeverReadOutOfBounds) {
  // The multi-query engine's one-round envelope [bitmap ‖ PSR × K] is
  // the widest attack surface a hostile aggregator sees: truncated
  // bitmaps, oversized frames, and PSR counts that disagree with the
  // channel plan must all come back as errors — never a crash or an
  // out-of-bounds read (run under scripts/check.sh --sanitize).
  auto params = core::MakeParams(16, 1).value();
  const size_t kChannels = 3;
  const size_t honest_size = core::WireEnvelopeBytes(params, kChannels);
  Xoshiro256 rng(11);

  // Truncations: every prefix of an honest-sized frame, including cuts
  // inside the bitmap.
  Bytes frame = rng.NextBytes(honest_size);
  for (size_t len = 0; len < honest_size; ++len) {
    Bytes truncated(frame.begin(), frame.begin() + len);
    auto parsed = core::ParseWireEnvelope(params, truncated, kChannels);
    EXPECT_FALSE(parsed.ok()) << "truncated frame of " << len
                              << " bytes accepted";
  }
  // Oversized frames: trailing garbage must be rejected, not ignored.
  for (size_t extra = 1; extra <= 64; extra *= 2) {
    Bytes oversized = frame;
    for (size_t i = 0; i < extra; ++i) {
      oversized.push_back(static_cast<uint8_t>(rng.Next()));
    }
    EXPECT_FALSE(core::ParseWireEnvelope(params, oversized, kChannels).ok());
  }
  // PSR-count / plan mismatches: an envelope of K channels fed to a
  // parser expecting K' != K.
  for (size_t expected : {size_t{0}, size_t{1}, size_t{2}, size_t{4},
                          size_t{100}}) {
    auto parsed = core::ParseWireEnvelope(params, frame, expected);
    EXPECT_FALSE(parsed.ok()) << "K=" << kChannels << " frame accepted as K="
                              << expected;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
  // Random lengths, random bytes: error or a parse whose pieces are
  // exactly as wide as claimed — never a crash.
  for (int t = 0; t < kTrials; ++t) {
    Bytes random = rng.NextBytes(rng.NextBelow(2 * honest_size));
    auto parsed = core::ParseWireEnvelope(params, random, kChannels);
    if (parsed.ok()) {
      EXPECT_EQ(parsed.value().body.size(),
                kChannels * params.PsrBytes());
    }
  }
}

TEST(FuzzTest, WireEnvelopeErrorsAreDistinct) {
  // The three failure modes carry distinguishable messages so a network
  // operator can tell a radio truncation from a plan mismatch.
  auto params = core::MakeParams(16, 1).value();
  Bytes tiny(1, 0xff);  // shorter than the 2-byte bitmap
  auto short_frame = core::ParseWireEnvelope(params, tiny, 1);
  ASSERT_FALSE(short_frame.ok());
  EXPECT_NE(short_frame.status().message().find("bitmap"),
            std::string::npos);

  Bytes ragged(core::WireBitmapBytes(params) + params.PsrBytes() + 1, 0);
  auto ragged_frame = core::ParseWireEnvelope(params, ragged, 1);
  ASSERT_FALSE(ragged_frame.ok());
  EXPECT_NE(ragged_frame.status().message().find("whole number"),
            std::string::npos);

  Bytes wrong_k(core::WireEnvelopeBytes(params, 2), 0);
  auto mismatch = core::ParseWireEnvelope(params, wrong_k, 1);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("channel plan"),
            std::string::npos);
}

TEST(FuzzTest, DatagramFrameParserRandomAndMutated) {
  // The UDP transport's frame parser reads bytes straight off a socket;
  // random blobs and single-byte mutations of an honest frame must all
  // come back as errors or as frames that round-trip exactly — never a
  // crash or an out-of-bounds read.
  Xoshiro256 rng(12);
  for (int t = 0; t < kTrials; ++t) {
    Bytes random = rng.NextBytes(rng.NextBelow(2 * net::kDatagramHeaderBytes));
    auto parsed = net::ParseDatagramFrame(random.data(), random.size());
    if (parsed.ok()) {
      EXPECT_EQ(net::SerializeDatagramFrame(parsed.value()), random);
    }
  }
  net::DatagramFrame honest;
  honest.kind = net::FrameKind::kData;
  honest.epoch = 42;
  honest.from = 3;
  honest.to = 9;
  honest.attempt = 1;
  honest.payload = rng.NextBytes(64);
  const Bytes wire = net::SerializeDatagramFrame(honest);
  ASSERT_TRUE(net::ParseDatagramFrame(wire.data(), wire.size()).ok());
  for (int t = 0; t < kTrials; ++t) {
    Bytes mutated = wire;
    switch (t % 3) {
      case 0:  // truncate anywhere, including inside the header
        mutated.resize(rng.NextBelow(mutated.size() + 1));
        break;
      case 1:  // extend: a frame longer than header+payload_len is bogus
        mutated.push_back(static_cast<uint8_t>(rng.Next()));
        break;
      case 2:  // flip one random byte
        mutated[rng.NextBelow(mutated.size())] ^=
            static_cast<uint8_t>(1 + rng.NextBelow(255));
        break;
    }
    auto parsed = net::ParseDatagramFrame(mutated.data(), mutated.size());
    if (parsed.ok()) {
      EXPECT_EQ(net::SerializeDatagramFrame(parsed.value()), mutated);
    }
  }
}

TEST(FuzzTest, UdpTransportShrugsOffGarbageDatagrams) {
  // Blast raw garbage at a LIVE transport socket: every blob must land
  // in the malformed counter, and the edge must still deliver real
  // payloads afterwards — a hostile peer cannot wedge the receiver.
  net::UdpTransport transport;
  ASSERT_TRUE(transport.Start({1, 2}).ok());
  const uint16_t victim_port = transport.PortOf(2);
  ASSERT_NE(victim_port, 0);

  const int fuzzer = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fuzzer, 0);
  sockaddr_in victim{};
  victim.sin_family = AF_INET;
  victim.sin_port = htons(victim_port);
  victim.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Xoshiro256 rng(13);
  const int kGarbage = 64;
  for (int t = 0; t < kGarbage; ++t) {
    // Mix pure noise with near-frames (honest header, hostile body).
    Bytes blob;
    if (t % 2 == 0) {
      blob = rng.NextBytes(1 + rng.NextBelow(128));
    } else {
      net::DatagramFrame f;
      f.kind = net::FrameKind::kAck;
      f.epoch = t;
      f.from = 1;
      f.to = 2;
      blob = net::SerializeDatagramFrame(f);
      blob.push_back(0xEE);  // ack with payload: malformed by contract
    }
    ASSERT_EQ(::sendto(fuzzer, blob.data(), blob.size(), 0,
                       reinterpret_cast<sockaddr*>(&victim), sizeof(victim)),
              static_cast<ssize_t>(blob.size()));
  }
  ::close(fuzzer);
  // The receiver thread drains asynchronously; wait for the verdicts.
  for (int i = 0;
       i < 500 && transport.malformed_datagrams() <
                      static_cast<uint64_t>(kGarbage);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(transport.malformed_datagrams(),
            static_cast<uint64_t>(kGarbage));
  // Liveness after the storm: a real delivery on the abused socket.
  Bytes payload{0xAA, 0xBB, 0xCC};
  auto delivery = transport.Deliver(1, 2, /*epoch=*/7, payload);
  ASSERT_TRUE(delivery.ok()) << delivery.status().ToString();
  EXPECT_TRUE(delivery.value().delivered);
  EXPECT_EQ(delivery.value().payload, payload);
  transport.Stop();
}

TEST(FuzzTest, SecoaParsersRandomAndTruncated) {
  Xoshiro256 rng(4);
  auto kp = crypto::GenerateRsaKeyPair(256, rng).value();
  secoa::SealOps ops(kp.public_key);
  secoa::SumParams params{4, 8, 1};
  auto keys = secoa::GenerateKeys(4, {1});
  secoa::SumSource source(ops, params, 0, keys.sources[0]);
  Bytes honest = SerializeSumPsr(ops, source.CreatePsr(100, 1).value());

  for (int t = 0; t < kTrials; ++t) {
    // Random truncation, extension, and mutation of an honest wire blob.
    Bytes mutated = honest;
    switch (t % 3) {
      case 0:
        mutated.resize(rng.NextBelow(mutated.size() + 1));
        break;
      case 1:
        mutated.push_back(static_cast<uint8_t>(rng.Next()));
        break;
      case 2:
        mutated[rng.NextBelow(mutated.size())] ^=
            static_cast<uint8_t>(1 + rng.NextBelow(255));
        break;
    }
    auto parsed = ParseSumPsr(ops, params, mutated);
    (void)parsed;  // must not crash; either outcome is acceptable
  }
  // Pure random bytes of the right length.
  for (int t = 0; t < kTrials; ++t) {
    Bytes random = rng.NextBytes(honest.size());
    auto parsed = ParseSumPsr(ops, params, random);
    (void)parsed;
  }
}

TEST(FuzzTest, SecoaMaxParserRandom) {
  Xoshiro256 rng(5);
  auto kp = crypto::GenerateRsaKeyPair(256, rng).value();
  secoa::SealOps ops(kp.public_key);
  auto keys = secoa::GenerateKeys(2, {1});
  secoa::MaxSource source(ops, 0, keys.sources[0]);
  Bytes honest = SerializeMaxPsr(ops, source.CreatePsr(5, 1).value());
  for (int t = 0; t < kTrials; ++t) {
    Bytes mutated = honest;
    if (t % 2 == 0) {
      mutated[rng.NextBelow(mutated.size())] ^= 0xff;
    } else {
      mutated.resize(rng.NextBelow(mutated.size() + 1));
    }
    auto parsed = ParseMaxPsr(ops, mutated);
    (void)parsed;
  }
}

TEST(FuzzTest, ProvisioningParsersRandomBytes) {
  Xoshiro256 rng(6);
  for (int t = 0; t < kTrials; ++t) {
    Bytes random = rng.NextBytes(rng.NextBelow(256));
    EXPECT_FALSE(core::ParseDeployment(random).ok());
    EXPECT_FALSE(core::ParseSourceRegistration(random).ok());
    EXPECT_FALSE(core::ParseAggregatorRecord(random).ok());
  }
}

TEST(FuzzTest, MerkleProofsResistMutation) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 16; ++i) leaves.push_back(EncodeUint64(i));
  auto tree = mht::MerkleTree::Build(leaves).value();
  Xoshiro256 rng(7);
  for (int t = 0; t < kTrials; ++t) {
    auto proof = tree.Prove(rng.NextBelow(16)).value();
    uint64_t leaf = proof.leaf_index;
    // Mutate one random byte in one random step.
    if (!proof.steps.empty()) {
      auto& step = proof.steps[rng.NextBelow(proof.steps.size())];
      if (rng.NextBelow(2) == 0) {
        step.sibling[rng.NextBelow(step.sibling.size())] ^=
            static_cast<uint8_t>(1 + rng.NextBelow(255));
      } else {
        step.sibling_left = !step.sibling_left;
      }
      EXPECT_FALSE(mht::VerifyMembership(tree.root(), leaves[leaf], proof))
          << "mutated proof accepted (trial " << t << ")";
    }
  }
}

TEST(FuzzTest, MuTeslaRandomDisclosuresRejected) {
  auto broadcaster = mutesla::Broadcaster::Create({1}, 10, 1).value();
  Xoshiro256 rng(8);
  for (int t = 0; t < kTrials; ++t) {
    mutesla::Receiver receiver(broadcaster.commitment(), 1);
    mutesla::KeyDisclosure bogus{1 + rng.NextBelow(10), rng.NextBytes(32)};
    auto result = receiver.OnDisclosure(bogus);
    EXPECT_FALSE(result.ok()) << "random chain key accepted";
  }
}

TEST(FuzzTest, CmtParserWidthsEnforced) {
  auto params = cmt::MakeParams(4, 1).value();
  auto keys = cmt::GenerateKeys(params, {1});
  cmt::Aggregator aggregator(params);
  cmt::Querier querier(params, keys);
  Xoshiro256 rng(9);
  for (int t = 0; t < kTrials; ++t) {
    Bytes random = rng.NextBytes(rng.NextBelow(64));
    if (random.size() != params.CiphertextBytes()) {
      EXPECT_FALSE(aggregator.Merge({random}).ok());
      EXPECT_FALSE(querier.Decrypt(random, 1, {0}).ok());
    }
  }
}

TEST(FuzzTest, QuerySpecGrammarRandomAndMutated) {
  // The query grammar (scalar predicates, band predicates, 'between'
  // sugar) parses operator text; seed with every edge case the band
  // grammar introduced, then recombine tokens at random. Invariants:
  // no crash, and every accepted spec satisfies the one band invariant
  // the parser promises: lo <= hi (negative bounds are deferred to the
  // compiler, which rejects them with its own message).
  const char* seeds[] = {
      "sum temperature",
      "sum temperature where 20 <= temperature <= 30",
      "count humidity between 35 and 55",
      "avg temperature where 20 <= temperature <= 30 where humidity >= 40",
      "sum temperature where 30 <= temperature <= 20",
      "sum temperature where 20 < temperature <= 30",
      "sum temperature where 20 <= temperature < 30",
      "sum temperature between 30 and 20",
      "sum temperature between 20 or 30",
      "sum temperature between 20 and",
      "sum temperature where 20 <= pressure <= 30",
      "sum temperature between 20 and 30 where 25 <= humidity <= 50",
      "variance humidity scale 3 id 7",
      "sum temperature where -1 <= temperature <= 30",
      "sum temperature where 1e308 <= temperature <= 1e309",
      "between between between",
      "where 1 <= x <= 2",
  };
  for (const char* seed : seeds) {
    auto q = engine::ParseQuerySpec(seed);
    if (q.ok() && q.value().band.has_value()) {
      EXPECT_LE(q.value().band->lo, q.value().band->hi) << seed;
    }
  }
  // Random recombinations of the grammar's vocabulary.
  const char* words[] = {"sum",   "count", "avg",   "variance", "temperature",
                         "humidity", "where", "between", "and", "<=", "<",
                         ">=", "=", "20", "30", "-5", "1e12", "id", "scale",
                         "2", "abc", ""};
  Xoshiro256 rng(14);
  for (int t = 0; t < kTrials; ++t) {
    std::string line;
    const size_t tokens = 1 + rng.NextBelow(10);
    for (size_t i = 0; i < tokens; ++i) {
      if (i) line.push_back(' ');
      line += words[rng.NextBelow(sizeof(words) / sizeof(words[0]))];
    }
    auto q = engine::ParseQuerySpec(line);
    (void)q;  // must not crash; either outcome is acceptable
  }
  // Multi-line text parser: blank lines, comments, and hostile mixes.
  auto text = engine::ParseQueriesText(
      "# comment\n\nsum temperature where 20 <= temperature <= 30\n"
      "count humidity between 35 and 55\nbogus line here\n");
  EXPECT_FALSE(text.ok());
  for (int t = 0; t < 50; ++t) {
    std::string blob;
    for (size_t i = rng.NextBelow(200); i > 0; --i) {
      blob.push_back(static_cast<char>(rng.NextBelow(128)));
    }
    auto parsed = engine::ParseQueriesText(blob);
    (void)parsed;
  }
}

TEST(FuzzTest, DyadicDecomposeRandomRangesHoldInvariants) {
  // The predicate compiler's dyadic cover: random (including hostile)
  // bounds must produce either an error or an exact disjoint cover —
  // never a crash, never an interval outside [lo, hi].
  Xoshiro256 rng(15);
  for (int t = 0; t < kTrials; ++t) {
    uint64_t lo = rng.Next() >> rng.NextBelow(64);
    uint64_t hi = rng.Next() >> rng.NextBelow(64);
    auto cover = predicate::DyadicDecompose(lo, hi);
    if (!cover.ok()) {
      EXPECT_TRUE(lo > hi || hi > predicate::kMaxDomainValue)
          << "valid range [" << lo << ", " << hi << "] rejected";
      continue;
    }
    uint64_t cursor = lo;
    for (const predicate::DyadicInterval& iv : cover.value()) {
      ASSERT_EQ(iv.Lo(), cursor);
      ASSERT_GE(iv.Hi(), iv.Lo());
      cursor = iv.Hi() + 1;
    }
    EXPECT_EQ(cursor, hi + 1);
    EXPECT_LE(cover.value().size(),
              predicate::MaxIntervalsForDomain(hi - lo + 1));
  }
  // Boundary seeds around the domain cap.
  EXPECT_TRUE(predicate::DyadicDecompose(0, predicate::kMaxDomainValue).ok());
  EXPECT_FALSE(
      predicate::DyadicDecompose(0, predicate::kMaxDomainValue + 1).ok());
  EXPECT_FALSE(predicate::DyadicDecompose(UINT64_MAX, UINT64_MAX).ok());
  EXPECT_TRUE(predicate::DyadicDecompose(predicate::kMaxDomainValue,
                                         predicate::kMaxDomainValue)
                  .ok());
}

TEST(FuzzTest, BigUintDifferentialAgainstNativeArithmetic) {
  // Cross-check BigUint against unsigned __int128 on random operands.
  Xoshiro256 rng(10);
  using u128 = unsigned __int128;
  for (int t = 0; t < 2000; ++t) {
    uint64_t a = rng.Next() >> (rng.NextBelow(64));
    uint64_t b = rng.Next() >> (rng.NextBelow(64));
    crypto::BigUint ba(a), bb(b);
    // add
    u128 sum = static_cast<u128>(a) + b;
    crypto::BigUint bsum = crypto::BigUint::Add(ba, bb);
    EXPECT_EQ(bsum.Low64(), static_cast<uint64_t>(sum));
    EXPECT_EQ(bsum.BitLength() > 64, sum >> 64 ? true : false);
    // mul
    u128 prod = static_cast<u128>(a) * b;
    crypto::BigUint bprod = crypto::BigUint::Mul(ba, bb);
    EXPECT_EQ(bprod.Low64(), static_cast<uint64_t>(prod));
    // divmod
    if (b != 0) {
      auto dm = crypto::BigUint::DivMod(ba, bb).value();
      EXPECT_EQ(dm.quotient.Low64(), a / b);
      EXPECT_EQ(dm.remainder.Low64(), a % b);
    }
    // sub (ordered)
    if (a >= b) {
      EXPECT_EQ(crypto::BigUint::Sub(ba, bb).Low64(), a - b);
    }
  }
}

}  // namespace
}  // namespace sies
