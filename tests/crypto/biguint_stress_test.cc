// Heavy randomized cross-checks of the bignum engine: algebraic
// identities that combine several operations, at sizes spanning the
// schoolbook/Karatsuba and plain/Montgomery regimes.
#include <gtest/gtest.h>

#include "crypto/biguint.h"
#include "crypto/prime.h"
#include "crypto/rsa.h"

namespace sies::crypto {
namespace {

class BigUintStress : public ::testing::TestWithParam<size_t> {};

TEST_P(BigUintStress, DistributiveLaw) {
  size_t bits = GetParam();
  Xoshiro256 rng(bits);
  for (int t = 0; t < 20; ++t) {
    BigUint a = BigUint::RandomWithBits(bits, rng);
    BigUint b = BigUint::RandomWithBits(bits / 2 + 1, rng);
    BigUint c = BigUint::RandomWithBits(bits / 3 + 1, rng);
    // a*(b+c) == a*b + a*c
    EXPECT_EQ(BigUint::Mul(a, BigUint::Add(b, c)),
              BigUint::Add(BigUint::Mul(a, b), BigUint::Mul(a, c)));
  }
}

TEST_P(BigUintStress, DivModReconstruction) {
  size_t bits = GetParam();
  Xoshiro256 rng(bits + 1);
  for (int t = 0; t < 20; ++t) {
    BigUint a = BigUint::RandomWithBits(2 * bits, rng);
    BigUint b = BigUint::RandomWithBits(1 + rng.NextBelow(bits), rng);
    auto dm = BigUint::DivMod(a, b).value();
    EXPECT_EQ(BigUint::Add(BigUint::Mul(dm.quotient, b), dm.remainder), a);
    EXPECT_LT(dm.remainder, b);
    // (a / b) * b <= a < (a / b + 1) * b
    EXPECT_LE(BigUint::Mul(dm.quotient, b), a);
    EXPECT_GT(BigUint::Mul(BigUint::Add(dm.quotient, BigUint(1)), b), a);
  }
}

TEST_P(BigUintStress, ModExpLaws) {
  size_t bits = GetParam();
  Xoshiro256 rng(bits + 2);
  BigUint m = GeneratePrime(bits, rng);
  for (int t = 0; t < 5; ++t) {
    BigUint a = BigUint::RandomBelow(m, rng);
    BigUint e1 = BigUint::RandomWithBits(32, rng);
    BigUint e2 = BigUint::RandomWithBits(32, rng);
    // a^(e1+e2) == a^e1 * a^e2 (mod m)
    BigUint lhs = BigUint::ModExp(a, BigUint::Add(e1, e2), m).value();
    BigUint rhs = BigUint::ModMul(BigUint::ModExp(a, e1, m).value(),
                                  BigUint::ModExp(a, e2, m).value(), m)
                      .value();
    EXPECT_EQ(lhs, rhs);
    // (a^e1)^e2 == a^(e1*e2) (mod m)
    EXPECT_EQ(BigUint::ModExp(BigUint::ModExp(a, e1, m).value(), e2, m)
                  .value(),
              BigUint::ModExp(a, BigUint::Mul(e1, e2), m).value());
  }
}

TEST_P(BigUintStress, FermatAndInverseAgree) {
  size_t bits = GetParam();
  Xoshiro256 rng(bits + 3);
  BigUint p = GeneratePrime(bits, rng);
  BigUint p2 = BigUint::Sub(p, BigUint(2));
  for (int t = 0; t < 5; ++t) {
    BigUint a = BigUint::RandomBelow(p, rng);
    if (a.IsZero()) continue;
    // a^(p-2) == a^-1 (mod p)
    EXPECT_EQ(BigUint::ModExp(a, p2, p).value(),
              BigUint::ModInverse(a, p).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BigUintStress,
                         ::testing::Values(64, 160, 256, 512, 1024, 2048));

TEST(RsaCrtTest, MatchesPlainInversion) {
  Xoshiro256 rng(99);
  auto kp = GenerateRsaKeyPair(512, rng).value();
  for (int t = 0; t < 10; ++t) {
    BigUint m = BigUint::RandomBelow(kp.public_key.n(), rng);
    BigUint c = kp.public_key.Apply(m).value();
    EXPECT_EQ(kp.InvertCrt(c).value(), kp.Invert(c).value());
    EXPECT_EQ(kp.InvertCrt(c).value(), m);
  }
  EXPECT_FALSE(kp.InvertCrt(kp.public_key.n()).ok());
}

TEST(RsaCrtTest, FasterThanPlain) {
  // Not a strict timing assert (flaky under load); just a smoke check
  // that both paths work at 1024 bits.
  Xoshiro256 rng(100);
  auto kp = GenerateRsaKeyPair(1024, rng, 3).value();
  BigUint m(123456789);
  BigUint c = kp.public_key.Apply(m).value();
  EXPECT_EQ(kp.InvertCrt(c).value(), m);
}

}  // namespace
}  // namespace sies::crypto
