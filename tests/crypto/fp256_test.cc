#include "crypto/fp256.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.h"
#include "crypto/biguint.h"

namespace sies::crypto {
namespace {

BigUint Hex(std::string_view s) {
  auto v = BigUint::FromHexString(s);
  EXPECT_TRUE(v.ok()) << s;
  return v.value();
}

// secp256k1 prime: 2^256 - 2^32 - 977.
constexpr std::string_view kPrimeHexA =
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
// NIST P-256 prime: close to 2^256 but with long zero runs — exercises
// different limb patterns in the Barrett constants.
constexpr std::string_view kPrimeHexB =
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";

U256 FromBig(const BigUint& x) {
  auto r = U256::FromBigUint(x);
  EXPECT_TRUE(r.ok());
  return r.value();
}

TEST(U256Test, ZeroProperties) {
  U256 z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.Low64(), 0u);
  EXPECT_TRUE(z.ToBigUint().IsZero());
  Bytes b = z.ToBytes32();
  ASSERT_EQ(b.size(), 32u);
  for (uint8_t byte : b) EXPECT_EQ(byte, 0);
}

TEST(U256Test, FromUint64RoundTrip) {
  U256 x = U256::FromUint64(0x123456789abcdef0ull);
  EXPECT_EQ(x.Low64(), 0x123456789abcdef0ull);
  EXPECT_EQ(x.BitLength(), 61u);
  EXPECT_EQ(x.ToBigUint(), BigUint(0x123456789abcdef0ull));
}

TEST(U256Test, FromBigUintRejectsWideValues) {
  BigUint wide = BigUint::Shl(BigUint(1), 256);
  EXPECT_FALSE(U256::FromBigUint(wide).ok());
  // 2^256 - 1 is the widest representable value.
  BigUint max = BigUint::Sub(wide, BigUint(1));
  auto ok = U256::FromBigUint(max);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().BitLength(), 256u);
  EXPECT_EQ(ok.value().ToBigUint(), max);
}

TEST(U256Test, BytesBigEndianMatchesBigUint) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) {
    size_t bits = 1 + rng.Next() % 256;
    BigUint x = BigUint::RandomWithBits(bits, rng);
    U256 u = FromBig(x);
    EXPECT_EQ(u.ToBytes32(), x.ToBytes(32).value());
    // Parse back from a minimal-width encoding too.
    Bytes minimal = x.ToBytes();
    EXPECT_EQ(U256::FromBytesBE(minimal.data(), minimal.size()).ToBigUint(),
              x);
  }
}

TEST(U256Test, FromBytesShortAndEmptyInputs) {
  EXPECT_TRUE(U256::FromBytesBE(nullptr, 0).IsZero());
  uint8_t one = 0x01;
  EXPECT_EQ(U256::FromBytesBE(&one, 1).Low64(), 1u);
  uint8_t nine[9] = {0x01, 0, 0, 0, 0, 0, 0, 0, 0};
  U256 x = U256::FromBytesBE(nine, 9);
  EXPECT_EQ(x.BitLength(), 65u);
  EXPECT_EQ(x.v[1], 1u);
}

TEST(U256Test, AddSubCarryBorrow) {
  U256 max;
  for (auto& limb : max.v) limb = ~0ull;
  U256 one = U256::FromUint64(1);
  U256 sum;
  EXPECT_EQ(U256::Add(max, one, &sum), 1u);  // wraps to zero with carry
  EXPECT_TRUE(sum.IsZero());
  U256 diff;
  EXPECT_EQ(U256::Sub(sum, one, &diff), 1u);  // borrows back to max
  EXPECT_EQ(diff, max);
}

TEST(U256Test, ShiftsMatchBigUint) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 200; ++i) {
    BigUint x = BigUint::RandomWithBits(1 + rng.Next() % 256, rng);
    U256 u = FromBig(x);
    size_t s = rng.Next() % 300;  // including >= 256
    BigUint shl_ref =
        BigUint::Mod(BigUint::Shl(x, s), BigUint::Shl(BigUint(1), 256))
            .value();
    EXPECT_EQ(u.Shl(s).ToBigUint(), shl_ref) << "shl " << s;
    EXPECT_EQ(u.Shr(s).ToBigUint(), BigUint::Shr(x, s)) << "shr " << s;
  }
}

TEST(U256Test, WideMulMatchesBigUint) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 500; ++i) {
    BigUint a = BigUint::RandomWithBits(1 + rng.Next() % 256, rng);
    BigUint b = BigUint::RandomWithBits(1 + rng.Next() % 256, rng);
    uint64_t prod[8];
    U256::Mul(FromBig(a), FromBig(b), prod);
    BigUint got;
    for (size_t limb = 8; limb-- > 0;) {
      got = BigUint::Add(BigUint::Shl(got, 64), BigUint(prod[limb]));
    }
    EXPECT_EQ(got, a * b);
  }
}

TEST(Fp256Test, CreateRequires256BitModulus) {
  EXPECT_FALSE(Fp256::Create(BigUint(0)).ok());
  EXPECT_FALSE(Fp256::Create(BigUint(97)).ok());
  // 255-bit and 257-bit values are both rejected.
  EXPECT_FALSE(Fp256::Create(BigUint::Shl(BigUint(1), 254)).ok());
  EXPECT_FALSE(
      Fp256::Create(BigUint::Add(BigUint::Shl(BigUint(1), 256), BigUint(1)))
          .ok());
  EXPECT_TRUE(Fp256::Create(Hex(kPrimeHexA)).ok());
}

class Fp256DifferentialTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    prime_ = Hex(GetParam());
    fp_.emplace(Fp256::Create(prime_).value());
  }

  BigUint prime_;
  std::optional<Fp256> fp_;
};

TEST_P(Fp256DifferentialTest, EdgeValuesNearP) {
  const Fp256& fp = *fp_;
  BigUint p = prime_;
  BigUint p_minus_1 = BigUint::Sub(p, BigUint(1));
  U256 up1 = FromBig(p_minus_1);

  // (p-1) + (p-1) = p - 2 mod p.
  EXPECT_EQ(fp.Add(up1, up1).ToBigUint(), BigUint::Sub(p, BigUint(2)));
  // (p-1) + 1 = 0 mod p.
  EXPECT_TRUE(fp.Add(up1, U256::FromUint64(1)).IsZero());
  // 0 - 1 = p - 1 mod p.
  EXPECT_EQ(fp.Sub(U256(), U256::FromUint64(1)).ToBigUint(), p_minus_1);
  // (p-1)^2 = 1 mod p.
  EXPECT_EQ(fp.Mul(up1, up1).ToBigUint(), BigUint(1));
  // Reduce of p and p+1 (both < 2^256 for these primes).
  EXPECT_TRUE(fp.Reduce(FromBig(p)).IsZero());
  EXPECT_EQ(fp.Reduce(FromBig(BigUint::Add(p, BigUint(1)))).ToBigUint(),
            BigUint(1));
  // Reduce of 2^256 - 1.
  BigUint max = BigUint::Sub(BigUint::Shl(BigUint(1), 256), BigUint(1));
  EXPECT_EQ(fp.Reduce(FromBig(max)).ToBigUint(),
            BigUint::Mod(max, p).value());
  // ReduceWide of the all-ones 512-bit value.
  uint64_t wide[8];
  for (auto& limb : wide) limb = ~0ull;
  BigUint max512 = BigUint::Sub(BigUint::Shl(BigUint(1), 512), BigUint(1));
  EXPECT_EQ(fp.ReduceWide(wide).ToBigUint(),
            BigUint::Mod(max512, p).value());
}

TEST_P(Fp256DifferentialTest, RandomizedAgainstBigUint) {
  const Fp256& fp = *fp_;
  const BigUint& p = prime_;
  Xoshiro256 rng(991);
  BigUint two_256 = BigUint::Shl(BigUint(1), 256);

  for (int i = 0; i < 10000; ++i) {
    BigUint a_big, b_big;
    switch (i % 5) {
      case 0:  // uniform below p
        a_big = BigUint::RandomBelow(p, rng);
        b_big = BigUint::RandomBelow(p, rng);
        break;
      case 1: {  // just below p
        uint64_t da = rng.Next() % 4 + 1, db = rng.Next() % 4 + 1;
        a_big = BigUint::Sub(p, BigUint(da));
        b_big = BigUint::Sub(p, BigUint(db));
        break;
      }
      case 2:  // tiny operands
        a_big = BigUint(rng.Next() % 7);
        b_big = BigUint(rng.Next() % 7);
        break;
      case 3:  // mixed widths
        a_big = BigUint::Mod(BigUint::RandomWithBits(1 + rng.Next() % 256,
                                                     rng),
                             p)
                    .value();
        b_big = BigUint::RandomBelow(p, rng);
        break;
      default:  // skewed small/large
        a_big = BigUint::RandomBelow(BigUint(1u << 20), rng);
        b_big = BigUint::Sub(p, BigUint(1 + rng.Next() % 1000));
        break;
    }
    U256 a = FromBig(a_big), b = FromBig(b_big);

    EXPECT_EQ(fp.Add(a, b).ToBigUint(),
              BigUint::ModAdd(a_big, b_big, p).value());
    EXPECT_EQ(fp.Sub(a, b).ToBigUint(),
              BigUint::ModSub(a_big, b_big, p).value());
    EXPECT_EQ(fp.Mul(a, b).ToBigUint(),
              BigUint::ModMul(a_big, b_big, p).value());

    // Reduce over the full 256-bit range, including values >= p.
    BigUint r_big = BigUint::RandomBelow(two_256, rng);
    EXPECT_EQ(fp.Reduce(FromBig(r_big)).ToBigUint(),
              BigUint::Mod(r_big, p).value());

    // Inverse is the cold path; sample it at 1/20 density.
    if (i % 20 == 0 && !a_big.IsZero()) {
      auto inv = fp.Inverse(a);
      ASSERT_TRUE(inv.ok());
      EXPECT_EQ(inv.value().ToBigUint(),
                BigUint::ModInverse(a_big, p).value());
      EXPECT_EQ(fp.Mul(a, inv.value()).ToBigUint(), BigUint(1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, Fp256DifferentialTest,
                         ::testing::Values(std::string(kPrimeHexA),
                                           std::string(kPrimeHexB)));

TEST(Fp256Test, InverseOfZeroFails) {
  Fp256 fp = Fp256::Create(Hex(kPrimeHexA)).value();
  EXPECT_FALSE(fp.Inverse(U256()).ok());
}

}  // namespace
}  // namespace sies::crypto
