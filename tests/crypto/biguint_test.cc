#include "crypto/biguint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

namespace sies::crypto {
namespace {

BigUint Dec(std::string_view s) {
  auto v = BigUint::FromDecimalString(s);
  EXPECT_TRUE(v.ok()) << s;
  return v.value();
}

TEST(BigUintTest, ZeroProperties) {
  BigUint z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsOdd());
  EXPECT_FALSE(z.IsOne());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.Low64(), 0u);
  EXPECT_EQ(z.ToDecimalString(), "0");
  EXPECT_EQ(z.ToHexString(), "0");
  EXPECT_TRUE(z.ToBytes().empty());
}

TEST(BigUintTest, SmallValues) {
  BigUint one(1);
  EXPECT_TRUE(one.IsOne());
  EXPECT_TRUE(one.IsOdd());
  EXPECT_EQ(one.BitLength(), 1u);
  BigUint big(0xffffffffffffffffull);
  EXPECT_EQ(big.BitLength(), 64u);
  EXPECT_EQ(big.Low64(), 0xffffffffffffffffull);
  EXPECT_TRUE(big.FitsUint64());
}

TEST(BigUintTest, FromBytesBigEndian) {
  Bytes be = {0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  BigUint v = BigUint::FromBytes(be);
  EXPECT_EQ(v.BitLength(), 65u);
  EXPECT_EQ(v.ToHexString(), "10000000000000000");
}

TEST(BigUintTest, FromBytesLeadingZerosIgnored) {
  Bytes be = {0x00, 0x00, 0x12, 0x34};
  EXPECT_EQ(BigUint::FromBytes(be), BigUint(0x1234));
}

TEST(BigUintTest, ToBytesFixedWidthPads) {
  auto b = BigUint(0x1234).ToBytes(4);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), (Bytes{0x00, 0x00, 0x12, 0x34}));
}

TEST(BigUintTest, ToBytesFixedWidthOverflowFails) {
  EXPECT_FALSE(BigUint(0x123456).ToBytes(2).ok());
}

TEST(BigUintTest, FromBytesAllZeroIsZero) {
  // Any run of zero bytes decodes to zero, whose minimal encoding is
  // empty — and the round trip through that empty encoding holds.
  for (size_t len : {size_t{1}, size_t{8}, size_t{32}}) {
    BigUint v = BigUint::FromBytes(Bytes(len, 0x00));
    EXPECT_TRUE(v.IsZero()) << len;
    EXPECT_TRUE(v.ToBytes().empty()) << len;
    EXPECT_EQ(BigUint::FromBytes(v.ToBytes()), v) << len;
  }
  EXPECT_TRUE(BigUint::FromBytes(Bytes{}).IsZero());
}

TEST(BigUintTest, FixedWidthRoundTripPreservesLeadingZeros) {
  // ToBytes(width) pads on the left, FromBytes strips again — the value
  // survives even when most of the encoding is zeros (the PSR wire
  // format always writes fixed-width fields).
  BigUint v(0xabcd);
  for (size_t width : {size_t{2}, size_t{3}, size_t{8}, size_t{32}}) {
    auto enc = v.ToBytes(width);
    ASSERT_TRUE(enc.ok()) << width;
    EXPECT_EQ(enc.value().size(), width) << width;
    EXPECT_EQ(BigUint::FromBytes(enc.value()), v) << width;
  }
}

TEST(BigUintTest, ToBytesNarrowWidthBoundary) {
  // A 3-byte value fits width 3 exactly and fails at width 2; zero fits
  // every width including zero.
  BigUint v = BigUint::FromBytes({0xff, 0x00, 0x01});
  auto exact = v.ToBytes(3);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(BigUint::FromBytes(exact.value()), v);
  EXPECT_FALSE(v.ToBytes(2).ok());
  EXPECT_FALSE(v.ToBytes(0).ok());
  auto zero = BigUint(0).ToBytes(0);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero.value().empty());
}

TEST(BigUintTest, BytesRoundTripRandom) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    BigUint v = BigUint::RandomWithBits(1 + rng.NextBelow(300), rng);
    EXPECT_EQ(BigUint::FromBytes(v.ToBytes()), v);
  }
}

TEST(BigUintTest, HexStringRoundTrip) {
  auto v = BigUint::FromHexString("deadbeefcafebabe1234567890abcdef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().ToHexString(), "deadbeefcafebabe1234567890abcdef");
  EXPECT_FALSE(BigUint::FromHexString("xyz").ok());
}

TEST(BigUintTest, DecimalStringRoundTrip) {
  const std::string s = "123456789012345678901234567890123456789";
  EXPECT_EQ(Dec(s).ToDecimalString(), s);
  EXPECT_FALSE(BigUint::FromDecimalString("12a").ok());
  EXPECT_FALSE(BigUint::FromDecimalString("").ok());
}

TEST(BigUintTest, CompareOrdering) {
  BigUint a(5), b(7);
  BigUint c = Dec("18446744073709551616");  // 2^64
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_GT(c, a);
  EXPECT_EQ(a.Compare(a), 0);
  EXPECT_LE(a, a);
  EXPECT_GE(c, c);
  EXPECT_NE(a, b);
}

TEST(BigUintTest, AddWithCarryAcrossLimbs) {
  BigUint max64(UINT64_MAX);
  BigUint sum = BigUint::Add(max64, BigUint(1));
  EXPECT_EQ(sum.ToHexString(), "10000000000000000");
  EXPECT_EQ(BigUint::Add(sum, sum).ToHexString(), "20000000000000000");
}

TEST(BigUintTest, AddCommutesAndAssociates) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 30; ++i) {
    BigUint a = BigUint::RandomWithBits(200, rng);
    BigUint b = BigUint::RandomWithBits(130, rng);
    BigUint c = BigUint::RandomWithBits(64, rng);
    EXPECT_EQ(BigUint::Add(a, b), BigUint::Add(b, a));
    EXPECT_EQ(BigUint::Add(BigUint::Add(a, b), c),
              BigUint::Add(a, BigUint::Add(b, c)));
  }
}

TEST(BigUintTest, SubInvertsAdd) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 50; ++i) {
    BigUint a = BigUint::RandomWithBits(1 + rng.NextBelow(256), rng);
    BigUint b = BigUint::RandomWithBits(1 + rng.NextBelow(256), rng);
    BigUint sum = BigUint::Add(a, b);
    EXPECT_EQ(BigUint::Sub(sum, b), a);
    EXPECT_EQ(BigUint::Sub(sum, a), b);
  }
}

TEST(BigUintTest, SubBorrowAcrossLimbs) {
  BigUint v = Dec("18446744073709551616");  // 2^64
  EXPECT_EQ(BigUint::Sub(v, BigUint(1)), BigUint(UINT64_MAX));
}

TEST(BigUintTest, MulKnownProduct) {
  EXPECT_EQ(
      BigUint::Mul(Dec("123456789012345678901234567890"),
                   Dec("987654321098765432109876543210"))
          .ToDecimalString(),
      "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigUintTest, MulByZeroAndOne) {
  BigUint a = Dec("999999999999999999999999");
  EXPECT_TRUE(BigUint::Mul(a, BigUint()).IsZero());
  EXPECT_EQ(BigUint::Mul(a, BigUint(1)), a);
}

TEST(BigUintTest, KaratsubaMatchesSchoolbook) {
  // Large operands cross the Karatsuba threshold; verify against the
  // distributive identity (a+b)*(a+b) = a*a + 2ab + b*b.
  Xoshiro256 rng(8);
  for (int i = 0; i < 10; ++i) {
    BigUint a = BigUint::RandomWithBits(3000, rng);
    BigUint b = BigUint::RandomWithBits(2500, rng);
    BigUint lhs = BigUint::Mul(BigUint::Add(a, b), BigUint::Add(a, b));
    BigUint rhs = BigUint::Add(
        BigUint::Add(BigUint::Mul(a, a), BigUint::Mul(b, b)),
        BigUint::Shl(BigUint::Mul(a, b), 1));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigUintTest, ShiftRoundTrip) {
  Xoshiro256 rng(9);
  for (size_t shift : {1ul, 13ul, 64ul, 65ul, 130ul, 1000ul}) {
    BigUint a = BigUint::RandomWithBits(200, rng);
    EXPECT_EQ(BigUint::Shr(BigUint::Shl(a, shift), shift), a) << shift;
  }
}

TEST(BigUintTest, ShlMultipliesByPowerOfTwo) {
  EXPECT_EQ(BigUint::Shl(BigUint(3), 2), BigUint(12));
  EXPECT_EQ(BigUint::Shl(BigUint(1), 64).ToHexString(),
            "10000000000000000");
}

TEST(BigUintTest, ShrDropsLowBits) {
  EXPECT_EQ(BigUint::Shr(BigUint(12), 2), BigUint(3));
  EXPECT_TRUE(BigUint::Shr(BigUint(12), 10).IsZero());
}

TEST(BigUintTest, BitAccess) {
  BigUint v(0b1010);
  EXPECT_FALSE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(1000));
}

TEST(BigUintTest, DivModIdentityRandom) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) {
    BigUint a = BigUint::RandomWithBits(1 + rng.NextBelow(512), rng);
    BigUint b = BigUint::RandomWithBits(1 + rng.NextBelow(256), rng);
    auto dm = BigUint::DivMod(a, b);
    ASSERT_TRUE(dm.ok());
    // a == q*b + r and r < b
    EXPECT_LT(dm.value().remainder, b);
    EXPECT_EQ(BigUint::Add(BigUint::Mul(dm.value().quotient, b),
                           dm.value().remainder),
              a);
  }
}

TEST(BigUintTest, DivModSmallDivisorFastPath) {
  BigUint a = Dec("1000000000000000000000000000007");
  auto dm = BigUint::DivMod(a, BigUint(1000000007));
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(BigUint::Add(BigUint::Mul(dm.value().quotient,
                                      BigUint(1000000007)),
                         dm.value().remainder),
            a);
}

TEST(BigUintTest, DivModByZeroFails) {
  EXPECT_FALSE(BigUint::DivMod(BigUint(5), BigUint()).ok());
  EXPECT_FALSE(BigUint::Mod(BigUint(5), BigUint()).ok());
}

TEST(BigUintTest, DivModDividendSmallerThanDivisor) {
  auto dm = BigUint::DivMod(BigUint(3), BigUint(10));
  ASSERT_TRUE(dm.ok());
  EXPECT_TRUE(dm.value().quotient.IsZero());
  EXPECT_EQ(dm.value().remainder, BigUint(3));
}

TEST(BigUintTest, KnuthAddBackCase) {
  // A classic near-worst-case for Algorithm D: divisor top limb just
  // below 2^64, dividend engineered so qhat overshoots.
  BigUint b = BigUint::Sub(BigUint::Shl(BigUint(1), 128), BigUint(1));
  BigUint a = BigUint::Sub(BigUint::Shl(BigUint(1), 192), BigUint(1));
  auto dm = BigUint::DivMod(a, b);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(BigUint::Add(BigUint::Mul(dm.value().quotient, b),
                         dm.value().remainder),
            a);
  EXPECT_LT(dm.value().remainder, b);
}

TEST(BigUintTest, ModAddSubMulConsistency) {
  Xoshiro256 rng(11);
  BigUint m = BigUint::RandomWithBits(256, rng);
  for (int i = 0; i < 50; ++i) {
    BigUint a = BigUint::RandomWithBits(256, rng);
    BigUint b = BigUint::RandomWithBits(256, rng);
    BigUint s = BigUint::ModAdd(a, b, m).value();
    BigUint back = BigUint::ModSub(s, b, m).value();
    EXPECT_EQ(back, BigUint::Mod(a, m).value());
    EXPECT_EQ(BigUint::ModMul(a, b, m).value(),
              BigUint::Mod(BigUint::Mul(a, b), m).value());
  }
}

TEST(BigUintTest, ModSubWrapsNegative) {
  BigUint m(97);
  EXPECT_EQ(BigUint::ModSub(BigUint(5), BigUint(10), m).value(),
            BigUint(92));
}

TEST(BigUintTest, ModExpSmallKnown) {
  // 3^200 mod 1e9+7 (cross-checked with an independent implementation).
  EXPECT_EQ(BigUint::ModExp(BigUint(3), BigUint(200), BigUint(1000000007))
                .value(),
            BigUint(136318165));
  // Fermat: a^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(
      BigUint::ModExp(BigUint(12345), BigUint(1000000006),
                      BigUint(1000000007))
          .value(),
      BigUint(1));
}

TEST(BigUintTest, ModExpEdgeCases) {
  BigUint m(1000003);
  EXPECT_EQ(BigUint::ModExp(BigUint(5), BigUint(), m).value(), BigUint(1));
  EXPECT_EQ(BigUint::ModExp(BigUint(5), BigUint(1), m).value(), BigUint(5));
  EXPECT_TRUE(BigUint::ModExp(BigUint(5), BigUint(3), BigUint(1))
                  .value()
                  .IsZero());
  EXPECT_FALSE(BigUint::ModExp(BigUint(5), BigUint(3), BigUint()).ok());
}

TEST(BigUintTest, ModExpEvenModulus) {
  // Even modulus exercises the non-Montgomery fallback.
  BigUint m(1000000);
  EXPECT_EQ(BigUint::ModExp(BigUint(3), BigUint(10), m).value(),
            BigUint(59049));
  EXPECT_EQ(BigUint::ModExp(BigUint(7), BigUint(100), m).value(),
            BigUint::Mod(BigUint::ModExp(BigUint(7), BigUint(100),
                                         BigUint::Shl(m, 10))
                             .value(),
                         m)
                .value());
}

TEST(BigUintTest, ModExpMatchesRepeatedMultiplication) {
  Xoshiro256 rng(12);
  BigUint m = BigUint::RandomWithBits(128, rng);
  if (!m.IsOdd()) m = BigUint::Add(m, BigUint(1));
  BigUint a = BigUint::RandomWithBits(100, rng);
  BigUint expected(1);
  for (int e = 0; e <= 20; ++e) {
    EXPECT_EQ(BigUint::ModExp(a, BigUint(static_cast<uint64_t>(e)), m)
                  .value(),
              expected)
        << "exponent " << e;
    expected = BigUint::ModMul(expected, a, m).value();
  }
}

TEST(BigUintTest, ModInverseRoundTrip) {
  Xoshiro256 rng(13);
  BigUint p = Dec("115792089237316195423570985008687907853"
                  "269984665640564039457584007913129639747");  // a prime? no
  // Use a known prime instead: 2^127 - 1 (Mersenne prime).
  BigUint m = BigUint::Sub(BigUint::Shl(BigUint(1), 127), BigUint(1));
  for (int i = 0; i < 30; ++i) {
    BigUint a = BigUint::RandomBelow(m, rng);
    if (a.IsZero()) continue;
    auto inv = BigUint::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(BigUint::ModMul(a, inv.value(), m).value(), BigUint(1));
  }
  (void)p;
}

TEST(BigUintTest, ModInverseNonInvertibleFails) {
  EXPECT_FALSE(BigUint::ModInverse(BigUint(6), BigUint(9)).ok());
  EXPECT_FALSE(BigUint::ModInverse(BigUint(), BigUint(7)).ok());
  EXPECT_FALSE(BigUint::ModInverse(BigUint(3), BigUint(1)).ok());
  EXPECT_FALSE(BigUint::ModInverse(BigUint(3), BigUint()).ok());
}

TEST(BigUintTest, ModInverseOfOneIsOne) {
  EXPECT_EQ(BigUint::ModInverse(BigUint(1), BigUint(97)).value(), BigUint(1));
}

TEST(BigUintTest, GcdKnownValues) {
  EXPECT_EQ(BigUint::Gcd(BigUint(12), BigUint(18)), BigUint(6));
  EXPECT_EQ(BigUint::Gcd(BigUint(17), BigUint(13)), BigUint(1));
  EXPECT_EQ(BigUint::Gcd(BigUint(0), BigUint(5)), BigUint(5));
  EXPECT_EQ(BigUint::Gcd(BigUint(5), BigUint(0)), BigUint(5));
}

TEST(BigUintTest, RandomBelowIsBelow) {
  Xoshiro256 rng(14);
  BigUint bound = Dec("1000000000000000000000000");
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(BigUint::RandomBelow(bound, rng), bound);
  }
}

TEST(BigUintTest, RandomWithBitsHasExactBitLength) {
  Xoshiro256 rng(15);
  for (size_t bits : {1ul, 2ul, 63ul, 64ul, 65ul, 160ul, 256ul, 1024ul}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigUint::RandomWithBits(bits, rng).BitLength(), bits);
    }
  }
}

TEST(BigUintTest, ToUint64Checked) {
  EXPECT_EQ(BigUint(42).ToUint64().value(), 42u);
  EXPECT_EQ(BigUint(UINT64_MAX).ToUint64().value(), UINT64_MAX);
  EXPECT_EQ(BigUint().ToUint64().value(), 0u);
  BigUint big = BigUint::Shl(BigUint(1), 64);
  EXPECT_FALSE(big.ToUint64().ok());
}

TEST(BigUintTest, StreamOperatorPrintsHex) {
  std::ostringstream os;
  os << BigUint(0xdeadbeef);
  EXPECT_EQ(os.str(), "0xdeadbeef");
  std::ostringstream zero;
  zero << BigUint();
  EXPECT_EQ(zero.str(), "0x0");
}

TEST(MontgomeryTest, RequiresOddModulus) {
  EXPECT_FALSE(MontgomeryCtx::Create(BigUint(100)).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigUint(1)).ok());
  EXPECT_TRUE(MontgomeryCtx::Create(BigUint(101)).ok());
}

TEST(MontgomeryTest, ToFromMontRoundTrip) {
  Xoshiro256 rng(16);
  BigUint m = BigUint::RandomWithBits(256, rng);
  if (!m.IsOdd()) m = BigUint::Add(m, BigUint(1));
  auto ctx = MontgomeryCtx::Create(m).value();
  for (int i = 0; i < 30; ++i) {
    BigUint a = BigUint::RandomBelow(m, rng);
    EXPECT_EQ(ctx.FromMont(ctx.ToMont(a)), a);
  }
}

TEST(MontgomeryTest, MulMontMatchesModMul) {
  Xoshiro256 rng(17);
  BigUint m = BigUint::RandomWithBits(512, rng);
  if (!m.IsOdd()) m = BigUint::Add(m, BigUint(1));
  auto ctx = MontgomeryCtx::Create(m).value();
  for (int i = 0; i < 30; ++i) {
    BigUint a = BigUint::RandomBelow(m, rng);
    BigUint b = BigUint::RandomBelow(m, rng);
    BigUint got = ctx.FromMont(ctx.MulMont(ctx.ToMont(a), ctx.ToMont(b)));
    EXPECT_EQ(got, BigUint::ModMul(a, b, m).value());
  }
}

TEST(MontgomeryTest, AllOnesLimbPatterns) {
  // Moduli with 0xFF..F limbs stress the n0inv and carry paths.
  for (size_t bits : {64ul, 128ul, 192ul, 256ul}) {
    BigUint m = BigUint::Sub(BigUint::Shl(BigUint(1), bits), BigUint(1));
    if (!m.IsOdd()) continue;
    auto ctx = MontgomeryCtx::Create(m).value();
    Xoshiro256 rng(bits);
    for (int t = 0; t < 10; ++t) {
      BigUint a = BigUint::RandomBelow(m, rng);
      BigUint b = BigUint::RandomBelow(m, rng);
      EXPECT_EQ(ctx.FromMont(ctx.MulMont(ctx.ToMont(a), ctx.ToMont(b))),
                BigUint::ModMul(a, b, m).value())
          << bits << " bits";
    }
  }
}

TEST(MontgomeryTest, MinimalOddModulus) {
  auto ctx = MontgomeryCtx::Create(BigUint(3)).value();
  EXPECT_EQ(ctx.ModExp(BigUint(2), BigUint(5)), BigUint(2));  // 32 mod 3
  EXPECT_EQ(ctx.ModExp(BigUint(5), BigUint(0)), BigUint(1));
}

TEST(MontgomeryTest, ModExpMatchesGeneric) {
  Xoshiro256 rng(18);
  BigUint m = BigUint::RandomWithBits(256, rng);
  if (!m.IsOdd()) m = BigUint::Add(m, BigUint(1));
  auto ctx = MontgomeryCtx::Create(m).value();
  for (int i = 0; i < 10; ++i) {
    BigUint a = BigUint::RandomBelow(m, rng);
    BigUint e = BigUint::RandomWithBits(64, rng);
    EXPECT_EQ(ctx.ModExp(a, e), BigUint::ModExp(a, e, m).value());
  }
}

// Parameterized sweep: the homomorphic identity the whole paper rests on,
// Σ E(m_i) decrypts to Σ m_i, checked at several prime widths.
class HomomorphismSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(HomomorphismSweep, SumOfCiphertextsDecryptsToSumOfPlaintexts) {
  size_t prime_bits = GetParam();
  Xoshiro256 rng(100 + prime_bits);
  // A fixed prime per width (search deterministic).
  BigUint p;
  do {
    p = BigUint::RandomWithBits(prime_bits, rng);
  } while (!p.IsOdd());
  // Not necessarily prime; for the identity we need gcd(K, p)=1, so pick
  // K coprime by construction (K odd and p odd doesn't suffice) — use a
  // Mersenne-like prime instead for small widths.
  p = BigUint::Sub(BigUint::Shl(BigUint(1), 127), BigUint(1));
  BigUint big_k = BigUint::RandomBelow(p, rng);
  if (big_k.IsZero()) big_k = BigUint(1);

  BigUint plain_sum, cipher_sum, key_sum;
  for (int i = 0; i < 20; ++i) {
    BigUint m = BigUint::RandomWithBits(64, rng);
    BigUint k = BigUint::RandomBelow(p, rng);
    BigUint c = BigUint::ModAdd(BigUint::ModMul(big_k, m, p).value(), k, p)
                    .value();
    plain_sum = BigUint::Add(plain_sum, m);
    cipher_sum = BigUint::ModAdd(cipher_sum, c, p).value();
    key_sum = BigUint::ModAdd(key_sum, k, p).value();
  }
  BigUint inv = BigUint::ModInverse(big_k, p).value();
  BigUint recovered =
      BigUint::ModMul(BigUint::ModSub(cipher_sum, key_sum, p).value(), inv, p)
          .value();
  EXPECT_EQ(recovered, BigUint::Mod(plain_sum, p).value());
}

INSTANTIATE_TEST_SUITE_P(Widths, HomomorphismSweep,
                         ::testing::Values(128, 192, 256, 320));

}  // namespace
}  // namespace sies::crypto
