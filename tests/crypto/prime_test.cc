#include "crypto/prime.h"

#include <gtest/gtest.h>

namespace sies::crypto {
namespace {

TEST(MillerRabinTest, SmallPrimesAccepted) {
  Xoshiro256 rng(1);
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 97ull, 251ull,
                     257ull, 65537ull, 1000000007ull}) {
    EXPECT_TRUE(IsProbablePrime(BigUint(p), rng)) << p;
  }
}

TEST(MillerRabinTest, SmallCompositesRejected) {
  Xoshiro256 rng(2);
  for (uint64_t c : {0ull, 1ull, 4ull, 6ull, 9ull, 15ull, 91ull, 341ull,
                     561ull, 1000000008ull}) {
    EXPECT_FALSE(IsProbablePrime(BigUint(c), rng)) << c;
  }
}

TEST(MillerRabinTest, CarmichaelNumbersRejected) {
  // Fermat pseudoprimes that fool a^(n-1) tests; MR must reject them.
  Xoshiro256 rng(3);
  for (uint64_t c : {561ull, 1105ull, 1729ull, 2465ull, 2821ull, 6601ull,
                     8911ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(IsProbablePrime(BigUint(c), rng)) << c;
  }
}

TEST(MillerRabinTest, KnownLargePrimes) {
  Xoshiro256 rng(4);
  // 2^127 - 1 (Mersenne) and 2^255 - 19.
  BigUint m127 = BigUint::Sub(BigUint::Shl(BigUint(1), 127), BigUint(1));
  EXPECT_TRUE(IsProbablePrime(m127, rng));
  BigUint p25519 = BigUint::Sub(BigUint::Shl(BigUint(1), 255), BigUint(19));
  EXPECT_TRUE(IsProbablePrime(p25519, rng));
  // 2^128 - 1 is composite (divisible by 3).
  BigUint m128 = BigUint::Sub(BigUint::Shl(BigUint(1), 128), BigUint(1));
  EXPECT_FALSE(IsProbablePrime(m128, rng));
}

TEST(MillerRabinTest, ProductOfTwoPrimesRejected) {
  Xoshiro256 rng(5);
  BigUint p = GeneratePrime(64, rng);
  BigUint q = GeneratePrime(64, rng);
  EXPECT_FALSE(IsProbablePrime(BigUint::Mul(p, q), rng));
}

class PrimeGenSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PrimeGenSweep, GeneratesOddPrimeOfExactBitLength) {
  size_t bits = GetParam();
  Xoshiro256 rng(600 + bits);
  BigUint p = GeneratePrime(bits, rng);
  EXPECT_EQ(p.BitLength(), bits);
  EXPECT_TRUE(p.IsOdd());
  EXPECT_TRUE(IsProbablePrime(p, rng));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimeGenSweep,
                         ::testing::Values(32, 64, 128, 160, 256, 512));

TEST(PrimeGenTest, DistinctCallsDistinctPrimes) {
  Xoshiro256 rng(7);
  BigUint a = GeneratePrime(128, rng);
  BigUint b = GeneratePrime(128, rng);
  EXPECT_NE(a, b);
}

TEST(RsaPrimeTest, CoprimeToPublicExponent) {
  Xoshiro256 rng(8);
  BigUint e(65537);
  for (int i = 0; i < 5; ++i) {
    BigUint p = GenerateRsaPrime(128, e, rng);
    EXPECT_TRUE(
        BigUint::Gcd(BigUint::Sub(p, BigUint(1)), e).IsOne());
    EXPECT_TRUE(IsProbablePrime(p, rng));
  }
}

TEST(RsaPrimeTest, WorksWithSmallExponent) {
  Xoshiro256 rng(9);
  BigUint e(3);
  BigUint p = GenerateRsaPrime(96, e, rng);
  EXPECT_TRUE(BigUint::Gcd(BigUint::Sub(p, BigUint(1)), e).IsOne());
}

}  // namespace
}  // namespace sies::crypto
