// Differential tests pinning the 8-lane batch kernel to the scalar
// one-shot implementations, bit for bit:
//
//   - HmacSha256Batch over >= 10^4 random (key, message) pairs with
//     ragged lane lengths, on every kernel the machine can run — the
//     batched epoch-key derivation inherits its correctness from here.
//   - Forced-kernel equality: scalar x8 vs AVX2 over identical inputs.
//   - EpochPrfSha256Batch vs EpochPrfSha256 (the derivation entry point
//     EpochKeyCache actually uses).
//   - Partial final groups (n not a multiple of 8) and n == 0.
//
// These run under check.sh --sanitize and --tsan; the KAT anchors (FIPS
// vectors + Python-generated ragged-lane digests) live in kat_test.cc.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/cpu_features.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha256x8.h"

namespace sies::crypto {
namespace {

std::vector<Sha256Kernel> AvailableKernels() {
  std::vector<Sha256Kernel> kernels = {Sha256Kernel::kScalar};
  if (sha256x8_internal::KernelAvailable(Sha256Kernel::kAvx2)) {
    kernels.push_back(Sha256Kernel::kAvx2);
  }
  return kernels;
}

TEST(Sha256x8, ScalarKernelAlwaysAvailable) {
  EXPECT_TRUE(sha256x8_internal::KernelAvailable(Sha256Kernel::kScalar));
  EXPECT_TRUE(sha256x8_internal::KernelAvailable(Sha256Kernel::kAuto));
}

TEST(Sha256x8, RandomMessagesMatchScalarHash) {
  Xoshiro256 rng(0x5135'0001);
  for (int round = 0; round < 200; ++round) {
    Bytes msgs[8];
    ByteView views[8];
    for (int i = 0; i < 8; ++i) {
      msgs[i] = rng.NextBytes(rng.NextBelow(300));
      views[i] = ByteView(msgs[i]);
    }
    for (Sha256Kernel kernel : AvailableKernels()) {
      uint8_t out[8][32];
      sha256x8_internal::Sha256x8WithKernel(kernel, views, out);
      for (int i = 0; i < 8; ++i) {
        Bytes ref = Sha256::Hash(msgs[i]);
        ASSERT_EQ(0, std::memcmp(out[i], ref.data(), 32))
            << "round=" << round << " kernel=" << static_cast<int>(kernel)
            << " lane=" << i << " len=" << msgs[i].size();
      }
    }
  }
}

// The acceptance-criteria differential: >= 10^4 random HMAC pairs with
// ragged lane lengths, batch == scalar bit-identically on every kernel.
TEST(HmacSha256Batch, TenThousandRandomPairsMatchScalar) {
  constexpr size_t kPairs = 10'016;  // 1252 full 8-lane groups
  constexpr size_t kChunk = 32;      // exercises the internal grouping
  Xoshiro256 rng(0x5135'0002);
  size_t done = 0;
  while (done < kPairs) {
    const size_t n = std::min(kChunk, kPairs - done);
    std::vector<Bytes> keys(n), msgs(n);
    std::vector<ByteView> kviews(n), mviews(n);
    for (size_t i = 0; i < n; ++i) {
      // Ragged on purpose: keys 0..130 bytes (crossing the hash-the-key
      // branch at 65+), messages 0..199 bytes (multi-block at 56+).
      keys[i] = rng.NextBytes(rng.NextBelow(131));
      msgs[i] = rng.NextBytes(rng.NextBelow(200));
      kviews[i] = ByteView(keys[i]);
      mviews[i] = ByteView(msgs[i]);
    }
    std::vector<uint8_t> out(32 * n);
    for (Sha256Kernel kernel : AvailableKernels()) {
      sha256x8_internal::HmacSha256BatchWithKernel(kernel, n, kviews.data(),
                                                   mviews.data(), out.data());
      for (size_t i = 0; i < n; ++i) {
        Bytes ref = HmacSha256(keys[i], msgs[i]);
        ASSERT_EQ(0, std::memcmp(out.data() + 32 * i, ref.data(), 32))
            << "pair=" << done + i << " kernel=" << static_cast<int>(kernel)
            << " klen=" << keys[i].size() << " mlen=" << msgs[i].size();
      }
    }
    done += n;
  }
}

// Scalar x8 and AVX2 must agree with each other directly (not only via
// the one-shot reference): same inputs through both forced kernels.
TEST(HmacSha256Batch, ForcedKernelsAgree) {
  if (!sha256x8_internal::KernelAvailable(Sha256Kernel::kAvx2)) {
    GTEST_SKIP() << "no AVX2 on this machine; scalar-only build";
  }
  Xoshiro256 rng(0x5135'0003);
  constexpr size_t kN = 64;
  std::vector<Bytes> keys(kN), msgs(kN);
  std::vector<ByteView> kviews(kN), mviews(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = rng.NextBytes(rng.NextBelow(80));
    msgs[i] = rng.NextBytes(rng.NextBelow(300));
    kviews[i] = ByteView(keys[i]);
    mviews[i] = ByteView(msgs[i]);
  }
  std::vector<uint8_t> scalar_out(32 * kN), avx2_out(32 * kN);
  sha256x8_internal::HmacSha256BatchWithKernel(
      Sha256Kernel::kScalar, kN, kviews.data(), mviews.data(),
      scalar_out.data());
  sha256x8_internal::HmacSha256BatchWithKernel(Sha256Kernel::kAvx2, kN,
                                               kviews.data(), mviews.data(),
                                               avx2_out.data());
  EXPECT_EQ(scalar_out, avx2_out);
}

TEST(HmacSha256x8, MatchesBatchEntryPoint) {
  Xoshiro256 rng(0x5135'0004);
  Bytes keys[8], msgs[8];
  ByteView kviews[8], mviews[8];
  for (int i = 0; i < 8; ++i) {
    keys[i] = rng.NextBytes(20);
    msgs[i] = rng.NextBytes(rng.NextBelow(100));
    kviews[i] = ByteView(keys[i]);
    mviews[i] = ByteView(msgs[i]);
  }
  uint8_t a[8][32];
  uint8_t b[8 * 32];
  HmacSha256x8(kviews, mviews, a);
  HmacSha256Batch(8, kviews, mviews, b);
  EXPECT_EQ(0, std::memcmp(a, b, sizeof(b)));
}

TEST(EpochPrfSha256Batch, MatchesScalarDerivationIncludingPartialGroup) {
  Xoshiro256 rng(0x5135'0005);
  for (size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{100}}) {
    std::vector<Bytes> keys(n);
    std::vector<ByteView> views(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.NextBytes(20);  // the protocol's long-term key width
      views[i] = ByteView(keys[i]);
    }
    const uint64_t epoch = 0x0102'0304'0506'0708ull + n;
    std::vector<uint8_t> out(32 * n);
    EpochPrfSha256Batch(n, views.data(), epoch, out.data());
    for (size_t i = 0; i < n; ++i) {
      Bytes ref = EpochPrfSha256(keys[i], epoch);
      ASSERT_EQ(0, std::memcmp(out.data() + 32 * i, ref.data(), 32))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(HmacSha256Batch, ZeroPairsIsANoOp) {
  uint8_t sentinel = 0xAB;
  HmacSha256Batch(0, nullptr, nullptr, &sentinel);
  EXPECT_EQ(sentinel, 0xAB);
}

}  // namespace
}  // namespace sies::crypto
