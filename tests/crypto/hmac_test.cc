// RFC 2202 (HMAC-SHA1) and RFC 4231 (HMAC-SHA256) test vectors, plus the
// paper's epoch-PRF usage.
#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace sies::crypto {
namespace {

Bytes Ascii(std::string_view s) { return Bytes(s.begin(), s.end()); }

TEST(HmacSha1Test, Rfc2202Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha1(key, Ascii("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1Test, Rfc2202Case2) {
  EXPECT_EQ(ToHex(HmacSha1(Ascii("Jefe"),
                           Ascii("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1Test, Rfc2202Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha1(key, msg)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1Test, Rfc2202Case6LongKey) {
  Bytes key(80, 0xaa);  // key longer than block size -> hashed first
  EXPECT_EQ(
      ToHex(HmacSha1(key, Ascii("Test Using Larger Than Block-Size Key - "
                                "Hash Key First"))),
      "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha256(key, Ascii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(ToHex(HmacSha256(Ascii("Jefe"),
                             Ascii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(
      ToHex(HmacSha256(key, Ascii("Test Using Larger Than Block-Size Key - "
                                  "Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha1Test, Rfc2202Case4) {
  // 25-byte key 0x0102..19, 50 x 0xcd.
  Bytes key(25);
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i + 1);
  }
  Bytes msg(50, 0xcd);
  EXPECT_EQ(ToHex(HmacSha1(key, msg)),
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da");
}

TEST(HmacSha256Test, Rfc4231Case4) {
  Bytes key(25);
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i + 1);
  }
  Bytes msg(50, 0xcd);
  EXPECT_EQ(ToHex(HmacSha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256Test, Rfc4231Case7LongKeyLongData) {
  Bytes key(131, 0xaa);
  std::string data_str =
      "This is a test using a larger than block-size key and a larger "
      "than block-size data. The key needs to be hashed before being "
      "used by the HMAC algorithm.";
  Bytes data(data_str.begin(), data_str.end());
  EXPECT_EQ(ToHex(HmacSha256(key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacTest, OutputSizes) {
  EXPECT_EQ(HmacSha1(Ascii("k"), Ascii("m")).size(), 20u);
  EXPECT_EQ(HmacSha256(Ascii("k"), Ascii("m")).size(), 32u);
}

TEST(HmacTest, KeySeparation) {
  Bytes msg = Ascii("same message");
  EXPECT_NE(HmacSha1(Ascii("key1"), msg), HmacSha1(Ascii("key2"), msg));
  EXPECT_NE(HmacSha256(Ascii("key1"), msg), HmacSha256(Ascii("key2"), msg));
}

TEST(HmacTest, EmptyKeyAndMessageSupported) {
  EXPECT_EQ(HmacSha1({}, {}).size(), 20u);
  EXPECT_EQ(HmacSha256({}, {}).size(), 32u);
}

TEST(EpochPrfTest, SizesMatchPaper) {
  Bytes key(20, 0x42);
  // HM1 -> 20-byte shares, HM256 -> 32-byte temporal keys (Table I).
  EXPECT_EQ(EpochPrfSha1(key, 7).size(), 20u);
  EXPECT_EQ(EpochPrfSha256(key, 7).size(), 32u);
}

TEST(EpochPrfTest, DistinctEpochsDistinctOutputs) {
  Bytes key(20, 0x42);
  EXPECT_NE(EpochPrfSha1(key, 1), EpochPrfSha1(key, 2));
  EXPECT_NE(EpochPrfSha256(key, 1), EpochPrfSha256(key, 2));
}

TEST(EpochPrfTest, DeterministicPerKeyEpoch) {
  Bytes key(20, 0x42);
  EXPECT_EQ(EpochPrfSha1(key, 99), EpochPrfSha1(key, 99));
  EXPECT_EQ(EpochPrfSha256(key, 99), EpochPrfSha256(key, 99));
}

TEST(EpochPrfTest, MatchesExplicitEncoding) {
  Bytes key(20, 0x42);
  EXPECT_EQ(EpochPrfSha1(key, 7), HmacSha1(key, EncodeUint64(7)));
  EXPECT_EQ(EpochPrfSha256(key, 7), HmacSha256(key, EncodeUint64(7)));
}

}  // namespace
}  // namespace sies::crypto
