#include "crypto/hmac_drbg.h"

#include <gtest/gtest.h>

#include <set>

namespace sies::crypto {
namespace {

TEST(HmacDrbgTest, DeterministicForSameSeed) {
  HmacDrbg a({1, 2, 3});
  HmacDrbg b({1, 2, 3});
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(HmacDrbgTest, DifferentSeedsDiverge) {
  HmacDrbg a({1, 2, 3});
  HmacDrbg b({1, 2, 4});
  EXPECT_NE(a.Generate(64), b.Generate(64));
}

TEST(HmacDrbgTest, PersonalizationSeparatesStreams) {
  HmacDrbg a({1, 2, 3}, {'x'});
  HmacDrbg b({1, 2, 3}, {'y'});
  HmacDrbg c({1, 2, 3}, {'x'});
  Bytes out_a = a.Generate(32);
  EXPECT_NE(out_a, b.Generate(32));
  EXPECT_EQ(out_a, c.Generate(32));
}

TEST(HmacDrbgTest, SuccessiveGeneratesDiffer) {
  HmacDrbg d({7});
  Bytes first = d.Generate(32);
  Bytes second = d.Generate(32);
  EXPECT_NE(first, second);
}

TEST(HmacDrbgTest, OutputLengthsExact) {
  HmacDrbg d({9});
  for (size_t n : {1ul, 20ul, 31ul, 32ul, 33ul, 100ul, 1000ul}) {
    EXPECT_EQ(d.Generate(n).size(), n);
  }
}

TEST(HmacDrbgTest, SplitRequestsMatchSingleRequest) {
  // SP 800-90A: state advances per Generate call, so 2x32 != 1x64;
  // but a re-seeded twin must reproduce the exact same stream.
  HmacDrbg a({5});
  HmacDrbg b({5});
  Bytes x = a.Generate(32);
  Bytes y = b.Generate(32);
  EXPECT_EQ(x, y);
  EXPECT_EQ(a.Generate(16), b.Generate(16));
}

TEST(HmacDrbgTest, ReseedChangesStream) {
  HmacDrbg a({5});
  HmacDrbg b({5});
  b.Reseed({0xaa});
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(HmacDrbgTest, NoObviousRepeats) {
  HmacDrbg d({11});
  std::set<Bytes> seen;
  for (int i = 0; i < 200; ++i) {
    Bytes chunk = d.Generate(20);
    EXPECT_TRUE(seen.insert(chunk).second) << "20-byte chunk repeated";
  }
}

TEST(HmacDrbgTest, ByteDistributionRoughlyUniform) {
  HmacDrbg d({13});
  Bytes stream = d.Generate(65536);
  size_t counts[256] = {};
  for (uint8_t b : stream) ++counts[b];
  for (int b = 0; b < 256; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]), 256.0, 256.0 * 0.35)
        << "byte value " << b;
  }
}

}  // namespace
}  // namespace sies::crypto
