// Known-answer tests pinning the crypto primitives to published vectors:
//   - SHA-1 / SHA-256: FIPS 180 examples ("abc", empty, two-block message,
//     one million 'a's).
//   - HMAC-SHA1: RFC 2202 test cases (short key, "Jefe", 0xaa/0xdd blocks,
//     larger-than-block-size key).
//   - HMAC-SHA256: RFC 4231 test cases 1-3, 6, 7.
//   - HMAC_DRBG(SHA-256): SP 800-90A process vectors cross-checked against
//     an independent reference implementation (Python hashlib/hmac; see
//     the generation recipe in docs/DEVELOPING.md).
//
// Any deviation here means the whole security argument is off: the epoch
// keys K_t / k_{i,t}, shares, and µTESLA MACs all derive from these
// primitives.
#include <string>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "crypto/hmac_drbg.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "crypto/sha256x8.h"

namespace sies::crypto {
namespace {

Bytes FromAscii(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

Bytes Repeat(uint8_t value, size_t n) { return Bytes(n, value); }

std::string Hex(const Bytes& b) { return ToHex(b); }

// --- SHA-1 (FIPS 180-4 examples) ---

TEST(KatSha1, Fips180Examples) {
  EXPECT_EQ(Hex(Sha1::Hash(FromAscii(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Hex(Sha1::Hash(FromAscii("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Hex(Sha1::Hash(FromAscii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(KatSha1, MillionA) {
  EXPECT_EQ(Hex(Sha1::Hash(Bytes(1000000, 'a'))),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

// --- SHA-256 (FIPS 180-4 examples) ---

TEST(KatSha256, Fips180Examples) {
  EXPECT_EQ(Hex(Sha256::Hash(FromAscii(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Hex(Sha256::Hash(FromAscii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Hex(Sha256::Hash(FromAscii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(KatSha256, MillionA) {
  EXPECT_EQ(Hex(Sha256::Hash(Bytes(1000000, 'a'))),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Unaligned and multi-block lengths straddling the 64-byte block and the
// 56-byte padding boundary (55 pads in one block, 56 needs a second).
// Messages are the deterministic pattern byte (37 i + 11) mod 256;
// expected digests generated with Python hashlib (docs/DEVELOPING.md).
TEST(KatSha256, UnalignedAndMultiBlockLengths) {
  auto pattern = [](size_t n) {
    Bytes m(n);
    for (size_t i = 0; i < n; ++i) m[i] = static_cast<uint8_t>(37 * i + 11);
    return m;
  };
  const struct {
    size_t len;
    const char* hex;
  } kCases[] = {
      {55, "2900465fcb533e05a158fd2b3be0e5e3b03740d83060aa3580e0d98a96bf2384"},
      {56, "31454ff48ef36af2f08fd511bdc37d9d5855ac23e992e5ff5445cb6b7674a674"},
      {63, "5f6401b96532c36de4e65beec0409b69b1d181864c8009b7a04f43e5d56350d1"},
      {64, "94eb5de4943613fd048dc93393ab06877405faa39c11f53e9386083339833e7e"},
      {65, "fc518669b6eb4b4dd91827ecacef86689c725bd5bab888fd3b26dbb196eec954"},
      {119, "b0dc41b1a384e2f1203f0351b38fbeaafceef577ce1191d5bfc25da39f721eae"},
      {128, "0aedd4856f8eba0963627336ad5144a9a7dbe12498e6066f0165fc97d8ddee4c"},
      {1000,
       "57799de80e3dd6e2ac4d40c41a150d1662f7f87d0d994776a2fdc37c39b0ea4e"},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(Hex(Sha256::Hash(pattern(c.len))), c.hex) << "len=" << c.len;
  }
}

// --- HMAC-SHA1 (RFC 2202) ---

TEST(KatHmacSha1, Rfc2202) {
  // Case 1: 20-byte 0x0b key.
  EXPECT_EQ(Hex(HmacSha1(Repeat(0x0b, 20), FromAscii("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  // Case 2: ASCII key shorter than the digest.
  EXPECT_EQ(Hex(HmacSha1(FromAscii("Jefe"),
                         FromAscii("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
  // Case 3: 0xaa key, fifty 0xdd bytes.
  EXPECT_EQ(Hex(HmacSha1(Repeat(0xaa, 20), Repeat(0xdd, 50))),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(KatHmacSha1, Rfc2202LongKey) {
  // Cases 6 and 7: 80-byte key exercises the hash-the-key branch.
  EXPECT_EQ(
      Hex(HmacSha1(
          Repeat(0xaa, 80),
          FromAscii("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "aa4ae5e15272d00e95705637ce8a3b55ed402112");
  EXPECT_EQ(Hex(HmacSha1(Repeat(0xaa, 80),
                         FromAscii("Test Using Larger Than Block-Size Key "
                                   "and Larger Than One Block-Size Data"))),
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91");
}

// --- HMAC-SHA256 (RFC 4231) ---

TEST(KatHmacSha256, Rfc4231) {
  // Case 1.
  EXPECT_EQ(Hex(HmacSha256(Repeat(0x0b, 20), FromAscii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Case 2.
  EXPECT_EQ(Hex(HmacSha256(FromAscii("Jefe"),
                           FromAscii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Case 3.
  EXPECT_EQ(Hex(HmacSha256(Repeat(0xaa, 20), Repeat(0xdd, 50))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(KatHmacSha256, Rfc4231LongKey) {
  // Cases 6 and 7: 131-byte key exercises the hash-the-key branch.
  EXPECT_EQ(
      Hex(HmacSha256(
          Repeat(0xaa, 131),
          FromAscii("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
  EXPECT_EQ(
      Hex(HmacSha256(
          Repeat(0xaa, 131),
          FromAscii("This is a test using a larger than block-size key and a "
                    "larger than block-size data. The key needs to be hashed "
                    "before being used by the HMAC algorithm."))),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// --- Batch kernel KATs (crypto/sha256x8.h) ---
//
// All 8 lanes carry different key and message lengths (the ragged case),
// pinned to independently generated digests (Python hmac/hashlib) AND to
// the scalar one-shot implementation, on every kernel this machine can
// run. A transpose or lane-masking bug in the AVX2 transform cannot pass
// this and the FIPS/RFC single-lane vectors simultaneously.

TEST(KatSha256x8, RaggedLanesAllKernels) {
  const size_t lens[8] = {0, 1, 55, 56, 63, 64, 65, 200};
  Bytes msgs[8];
  ByteView views[8];
  for (int i = 0; i < 8; ++i) {
    msgs[i].resize(lens[i]);
    for (size_t j = 0; j < lens[i]; ++j) {
      msgs[i][j] = static_cast<uint8_t>(i * 31 + j);
    }
    views[i] = ByteView(msgs[i]);
  }
  for (Sha256Kernel kernel : {Sha256Kernel::kScalar, Sha256Kernel::kAvx2}) {
    if (!sha256x8_internal::KernelAvailable(kernel)) continue;
    uint8_t out[8][32];
    sha256x8_internal::Sha256x8WithKernel(kernel, views, out);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(Hex(Bytes(out[i], out[i] + 32)), Hex(Sha256::Hash(msgs[i])))
          << "kernel=" << static_cast<int>(kernel) << " lane=" << i;
    }
  }
}

TEST(KatHmacSha256x8, RaggedLanesPinnedDigests) {
  // Key lengths cross the hash-the-key branch (> 64) and the exact-block
  // case (64); expected values generated with Python hmac/hashlib.
  const size_t lens[8] = {0, 1, 55, 56, 63, 64, 65, 200};
  const size_t klens[8] = {1, 20, 32, 63, 64, 65, 100, 131};
  const char* kExpected[8] = {
      "2f8738164025afdddbc18665c6e8f37de9498db7fd194873c61ee30c22192a9a",
      "f4227183e92b2902f8d9315be19ec191ef4d6cfdbc7258fbb1c28e4303bb818d",
      "9374a0c6f952b33b5ebdf80d6d0e39f6229eea1ae4264614e2d5023a962a5d65",
      "68a770890a721bf3df5e0d8a382161d5b154006923fa49ea8af97e4f758f857f",
      "38be7333b04eb8d4d425b594b1b0ea9c32b91822f6dee16ff4b89df4fed3ccad",
      "e6db75a0626e1457b0e8d148bec88c6d4fab63be7cebf2b8907149c832f0edf2",
      "2dc1c3cd435727ca089297ce0a29b0d24cb7f8457e2f6d843a1864377f0b0dca",
      "d785cee71ecaebf282bb31774255a8fada96d5d4c92f7c9ac61f72cc18f0588f",
  };
  Bytes keys[8], msgs[8];
  ByteView kviews[8], mviews[8];
  for (int i = 0; i < 8; ++i) {
    keys[i].resize(klens[i]);
    for (size_t j = 0; j < klens[i]; ++j) {
      keys[i][j] = static_cast<uint8_t>(i * 7 + j + 1);
    }
    msgs[i].resize(lens[i]);
    for (size_t j = 0; j < lens[i]; ++j) {
      msgs[i][j] = static_cast<uint8_t>(i * 31 + j);
    }
    kviews[i] = ByteView(keys[i]);
    mviews[i] = ByteView(msgs[i]);
  }
  for (Sha256Kernel kernel : {Sha256Kernel::kScalar, Sha256Kernel::kAvx2}) {
    if (!sha256x8_internal::KernelAvailable(kernel)) continue;
    uint8_t out[8 * 32];
    sha256x8_internal::HmacSha256BatchWithKernel(kernel, 8, kviews, mviews,
                                                 out);
    for (int i = 0; i < 8; ++i) {
      Bytes tag(out + 32 * i, out + 32 * (i + 1));
      EXPECT_EQ(Hex(tag), kExpected[i])
          << "kernel=" << static_cast<int>(kernel) << " lane=" << i;
      EXPECT_EQ(Hex(tag), Hex(HmacSha256(keys[i], msgs[i])))
          << "kernel=" << static_cast<int>(kernel) << " lane=" << i;
    }
  }
}

// --- HMAC_DRBG with SHA-256 (SP 800-90A process vectors) ---

TEST(KatHmacDrbg, InstantiateAndGenerate) {
  // Seed = 32 incrementing bytes, no personalization; two sequential
  // 32-byte generates (the second pins the post-generate state update).
  Bytes seed(32);
  for (size_t i = 0; i < seed.size(); ++i) seed[i] = static_cast<uint8_t>(i);
  HmacDrbg drbg(seed);
  EXPECT_EQ(Hex(drbg.Generate(32)),
            "3226437dd9f98b17591aad731383303213439f64d029a5764e84e36256ddeb79");
  EXPECT_EQ(Hex(drbg.Generate(32)),
            "68ddf0df052af113ad632143c8039de47a598a6186f18fd474eac12f1dece475");
}

TEST(KatHmacDrbg, Personalization) {
  // Personalization string is concatenated into the seed material; a
  // 48-byte request exercises the multi-block generate loop.
  HmacDrbg drbg(FromAscii("sies-drbg-entropy-0123456789abcd"),
                FromAscii("sies-personalization"));
  EXPECT_EQ(Hex(drbg.Generate(48)),
            "29d6d46bc07be8eab1a70ee2640ffa808084ffa923179da34f723b92e49a92f6"
            "5c110213499a0701180d412e243ae073");
}

TEST(KatHmacDrbg, Reseed) {
  Bytes seed(32);
  for (size_t i = 0; i < seed.size(); ++i) seed[i] = static_cast<uint8_t>(i);
  HmacDrbg drbg(seed);
  drbg.Generate(16);
  drbg.Reseed(FromAscii("fresh-entropy"));
  EXPECT_EQ(Hex(drbg.Generate(32)),
            "ebdb0f5205c69e2417104db2e2683c70eac8af05819e813c5b02ec9d6887933a");
}

}  // namespace
}  // namespace sies::crypto
