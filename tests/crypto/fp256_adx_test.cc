// Differential test for the ADX/BMI2 Fp256 multiply kernel: the ADX
// build of Mul must equal the portable u128 build, and both must equal
// BigUint::ModMul, over random operands and two different 256-bit
// primes. The kernels share one algorithm (4x4 schoolbook + Barrett) —
// this pins that the target("adx,bmi2") recompile stays bit-identical.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/biguint.h"
#include "crypto/cpu_features.h"
#include "crypto/fp256.h"
#include "crypto/prime.h"

namespace sies::crypto {
namespace {

U256 RandomReduced(Xoshiro256& rng, const Fp256& fp) {
  U256 x;
  for (uint64_t& limb : x.v) limb = rng.Next();
  return fp.Reduce(x);
}

// Runs the three-way differential over one prime. When the machine has
// no ADX/BMI2 the forced-ADX leg is skipped (portable vs BigUint still
// runs, so scalar-fallback builds exercise the test too).
void RunDifferential(uint64_t prime_seed, uint64_t rng_seed) {
  Xoshiro256 prime_rng(prime_seed);
  const BigUint prime = GeneratePrime(256, prime_rng);
  auto fp = Fp256::Create(prime);
  ASSERT_TRUE(fp.ok()) << fp.status().message();
  Fp256 portable = fp.value();
  portable.SetUseAdxForTest(false);
  Fp256 adx = fp.value();
  const bool have_adx = CpuDetected().adx && CpuDetected().bmi2;
  if (have_adx) adx.SetUseAdxForTest(true);

  Xoshiro256 rng(rng_seed);
  for (int i = 0; i < 2000; ++i) {
    const U256 a = RandomReduced(rng, portable);
    const U256 b = RandomReduced(rng, portable);
    const U256 ref = portable.Mul(a, b);
    auto big = BigUint::ModMul(a.ToBigUint(), b.ToBigUint(), prime);
    ASSERT_TRUE(big.ok());
    ASSERT_EQ(ref.ToBigUint(), big.value()) << "portable vs BigUint, i=" << i;
    if (have_adx) {
      ASSERT_EQ(ref, adx.Mul(a, b)) << "portable vs ADX, i=" << i;
    }
  }
}

TEST(Fp256Adx, MatchesPortableAndBigUintPrimeA) {
  RunDifferential(/*prime_seed=*/0xADC5'0001, /*rng_seed=*/0x1);
}

TEST(Fp256Adx, MatchesPortableAndBigUintPrimeB) {
  RunDifferential(/*prime_seed=*/0xADC5'0002, /*rng_seed=*/0x2);
}

TEST(Fp256Adx, EdgeOperands) {
  Xoshiro256 prime_rng(0xADC5'0003);
  const BigUint prime = GeneratePrime(256, prime_rng);
  auto fp_or = Fp256::Create(prime);
  ASSERT_TRUE(fp_or.ok());
  Fp256 portable = fp_or.value();
  portable.SetUseAdxForTest(false);
  Fp256 adx = fp_or.value();
  if (!(CpuDetected().adx && CpuDetected().bmi2)) {
    GTEST_SKIP() << "no ADX/BMI2 on this machine";
  }
  adx.SetUseAdxForTest(true);
  ASSERT_TRUE(adx.UsesAdx());

  U256 p_minus_1;
  U256::Sub(portable.prime_u256(), U256::FromUint64(1), &p_minus_1);
  const U256 cases[] = {U256::FromUint64(0), U256::FromUint64(1),
                        U256::FromUint64(~0ull), p_minus_1};
  for (const U256& a : cases) {
    for (const U256& b : cases) {
      EXPECT_EQ(portable.Mul(a, b), adx.Mul(a, b));
    }
  }
}

TEST(Fp256Adx, CreateHonorsSiesNativeOverride) {
  // Under SIES_NATIVE=scalar/off, Cpu() reports no ADX and Create must
  // leave the portable kernel selected; without the override, Create
  // matches the hardware. Either way the flag only follows Cpu().
  Xoshiro256 prime_rng(0xADC5'0004);
  auto fp = Fp256::Create(GeneratePrime(256, prime_rng));
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp.value().UsesAdx(), Cpu().adx && Cpu().bmi2);
}

}  // namespace
}  // namespace sies::crypto
