// FIPS 180-4 test vectors plus structural tests for the streaming API.
#include <gtest/gtest.h>

#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace sies::crypto {
namespace {

Bytes Ascii(std::string_view s) { return Bytes(s.begin(), s.end()); }

TEST(Sha1Test, FipsVectorEmpty) {
  EXPECT_EQ(ToHex(Sha1::Hash({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, FipsVectorAbc) {
  EXPECT_EQ(ToHex(Sha1::Hash(Ascii("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, FipsVectorTwoBlocks) {
  EXPECT_EQ(ToHex(Sha1::Hash(Ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  Bytes digest(Sha1::kDigestSize);
  h.Final(digest.data());
  EXPECT_EQ(ToHex(digest), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, StreamingMatchesOneShot) {
  Bytes msg = Ascii("the quick brown fox jumps over the lazy dog etc etc");
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.Update(msg.data(), split);
    h.Update(msg.data() + split, msg.size() - split);
    Bytes digest(Sha1::kDigestSize);
    h.Final(digest.data());
    EXPECT_EQ(digest, Sha1::Hash(msg)) << "split at " << split;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 h;
  h.Update(Ascii("garbage"));
  h.Reset();
  h.Update(Ascii("abc"));
  Bytes digest(Sha1::kDigestSize);
  h.Final(digest.data());
  EXPECT_EQ(ToHex(digest), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, LengthBoundaryInputs) {
  // Exercise padding around the 55/56/64-byte boundaries.
  for (size_t len : {55ul, 56ul, 57ul, 63ul, 64ul, 65ul, 119ul, 128ul}) {
    Bytes msg(len, 0x5a);
    Bytes d1 = Sha1::Hash(msg);
    Sha1 h;
    for (uint8_t b : msg) h.Update(&b, 1);
    Bytes d2(Sha1::kDigestSize);
    h.Final(d2.data());
    EXPECT_EQ(d1, d2) << "len " << len;
  }
}

TEST(Sha256Test, FipsVectorEmpty) {
  EXPECT_EQ(ToHex(Sha256::Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, FipsVectorAbc) {
  EXPECT_EQ(ToHex(Sha256::Hash(Ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, FipsVectorTwoBlocks) {
  EXPECT_EQ(ToHex(Sha256::Hash(Ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(10000, 'a');
  for (int i = 0; i < 100; ++i) h.Update(chunk);
  Bytes digest(Sha256::kDigestSize);
  h.Final(digest.data());
  EXPECT_EQ(ToHex(digest),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  Bytes msg(300);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<uint8_t>(i);
  for (size_t split : {0ul, 1ul, 63ul, 64ul, 65ul, 150ul, 300ul}) {
    Sha256 h;
    h.Update(msg.data(), split);
    h.Update(msg.data() + split, msg.size() - split);
    Bytes digest(Sha256::kDigestSize);
    h.Final(digest.data());
    EXPECT_EQ(digest, Sha256::Hash(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  Bytes a = Sha256::Hash(Ascii("message A"));
  Bytes b = Sha256::Hash(Ascii("message B"));
  EXPECT_NE(a, b);
  // One-bit difference flips roughly half the digest bits.
  Bytes m1 = {0x00}, m2 = {0x01};
  Bytes d1 = Sha256::Hash(m1), d2 = Sha256::Hash(m2);
  int flipped = 0;
  for (size_t i = 0; i < d1.size(); ++i) {
    flipped += __builtin_popcount(d1[i] ^ d2[i]);
  }
  EXPECT_GT(flipped, 80);
  EXPECT_LT(flipped, 176);
}

TEST(Sha256Test, LengthBoundaryInputs) {
  for (size_t len : {55ul, 56ul, 57ul, 63ul, 64ul, 65ul, 119ul, 128ul}) {
    Bytes msg(len, 0xa5);
    Bytes d1 = Sha256::Hash(msg);
    Sha256 h;
    for (uint8_t b : msg) h.Update(&b, 1);
    Bytes d2(Sha256::kDigestSize);
    h.Final(d2.data());
    EXPECT_EQ(d1, d2) << "len " << len;
  }
}

// NIST-style sweep: digest size invariants at many message lengths.
class ShaLengthSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ShaLengthSweep, DigestSizesAreFixed) {
  Bytes msg(GetParam(), 0x33);
  EXPECT_EQ(Sha1::Hash(msg).size(), Sha1::kDigestSize);
  EXPECT_EQ(Sha256::Hash(msg).size(), Sha256::kDigestSize);
}

TEST_P(ShaLengthSweep, AppendingOneByteChangesDigest) {
  Bytes msg(GetParam(), 0x33);
  Bytes extended = msg;
  extended.push_back(0x00);
  EXPECT_NE(Sha1::Hash(msg), Sha1::Hash(extended));
  EXPECT_NE(Sha256::Hash(msg), Sha256::Hash(extended));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ShaLengthSweep,
                         ::testing::Values(0, 1, 3, 55, 56, 64, 100, 1000));

}  // namespace
}  // namespace sies::crypto
