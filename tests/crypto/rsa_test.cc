#include "crypto/rsa.h"

#include <gtest/gtest.h>

namespace sies::crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  // 512-bit keys keep the suite fast; SEAL benches use 1024.
  RsaTest() : rng_(42), kp_(GenerateRsaKeyPair(512, rng_).value()) {}

  Xoshiro256 rng_;
  RsaKeyPair kp_;
};

TEST_F(RsaTest, KeyStructure) {
  EXPECT_EQ(kp_.public_key.n().BitLength(), 512u);
  EXPECT_EQ(kp_.public_key.e(), BigUint(65537));
  EXPECT_EQ(kp_.public_key.ModulusBytes(), 64u);
  EXPECT_EQ(BigUint::Mul(kp_.p, kp_.q), kp_.public_key.n());
  EXPECT_NE(kp_.p, kp_.q);
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    BigUint m = BigUint::RandomBelow(kp_.public_key.n(), rng_);
    BigUint c = kp_.public_key.Apply(m).value();
    EXPECT_EQ(kp_.Invert(c).value(), m);
  }
}

TEST_F(RsaTest, PermutationIsDeterministic) {
  BigUint m(123456789);
  EXPECT_EQ(kp_.public_key.Apply(m).value(), kp_.public_key.Apply(m).value());
}

TEST_F(RsaTest, InputMustBeBelowModulus) {
  EXPECT_FALSE(kp_.public_key.Apply(kp_.public_key.n()).ok());
  EXPECT_FALSE(kp_.Invert(kp_.public_key.n()).ok());
}

TEST_F(RsaTest, ApplyTimesComposes) {
  BigUint m(987654321);
  BigUint three_then_two =
      kp_.public_key
          .ApplyTimes(kp_.public_key.ApplyTimes(m, 3).value(), 2)
          .value();
  EXPECT_EQ(three_then_two, kp_.public_key.ApplyTimes(m, 5).value());
  EXPECT_EQ(kp_.public_key.ApplyTimes(m, 0).value(), m);
  EXPECT_EQ(kp_.public_key.ApplyTimes(m, 1).value(),
            kp_.public_key.Apply(m).value());
}

TEST_F(RsaTest, MultiplicativeHomomorphism) {
  // E(a) * E(b) mod n == E(a * b mod n): the folding property that makes
  // SEAL aggregation work.
  for (int i = 0; i < 10; ++i) {
    BigUint a = BigUint::RandomBelow(kp_.public_key.n(), rng_);
    BigUint b = BigUint::RandomBelow(kp_.public_key.n(), rng_);
    BigUint lhs = kp_.public_key
                      .MulMod(kp_.public_key.Apply(a).value(),
                              kp_.public_key.Apply(b).value())
                      .value();
    BigUint rhs = kp_.public_key
                      .Apply(kp_.public_key.MulMod(a, b).value())
                      .value();
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_F(RsaTest, RollingCommutesWithFolding) {
  // E^k(a) * E^k(b) == E^k(a*b): rolling then folding equals folding
  // then rolling — the SEAL verification identity.
  BigUint a(1111), b(2222);
  for (uint64_t k : {0ull, 1ull, 3ull, 7ull}) {
    BigUint rolled_then_folded =
        kp_.public_key
            .MulMod(kp_.public_key.ApplyTimes(a, k).value(),
                    kp_.public_key.ApplyTimes(b, k).value())
            .value();
    BigUint folded_then_rolled =
        kp_.public_key
            .ApplyTimes(kp_.public_key.MulMod(a, b).value(), k)
            .value();
    EXPECT_EQ(rolled_then_folded, folded_then_rolled) << "k=" << k;
  }
}

TEST(RsaKeyGenTest, RejectsBadParameters) {
  Xoshiro256 rng(1);
  EXPECT_FALSE(GenerateRsaKeyPair(32, rng).ok());   // too small
  EXPECT_FALSE(GenerateRsaKeyPair(129, rng).ok());  // odd bit count
}

TEST(RsaKeyGenTest, DifferentSeedsDifferentKeys) {
  Xoshiro256 rng1(10), rng2(11);
  auto k1 = GenerateRsaKeyPair(256, rng1).value();
  auto k2 = GenerateRsaKeyPair(256, rng2).value();
  EXPECT_NE(k1.public_key.n(), k2.public_key.n());
}

TEST(RsaPublicKeyTest, CreateValidation) {
  EXPECT_FALSE(RsaPublicKey::Create(BigUint(100), BigUint(3)).ok());  // even
  EXPECT_FALSE(RsaPublicKey::Create(BigUint(3), BigUint(65537)).ok());
  EXPECT_TRUE(RsaPublicKey::Create(BigUint(3233), BigUint(17)).ok());
}

TEST(RsaPublicKeyTest, TextbookExample) {
  // The classic (n=3233=61*53, e=17, d=2753) example.
  auto pub = RsaPublicKey::Create(BigUint(3233), BigUint(17)).value();
  EXPECT_EQ(pub.Apply(BigUint(65)).value(), BigUint(2790));
  RsaKeyPair kp{pub, BigUint(2753), BigUint(61), BigUint(53)};
  EXPECT_EQ(kp.Invert(BigUint(2790)).value(), BigUint(65));
}

}  // namespace
}  // namespace sies::crypto
