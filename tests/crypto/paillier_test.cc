#include "crypto/paillier.h"

#include <gtest/gtest.h>

namespace sies::crypto {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  // 256-bit modulus keeps the suite fast; the ablation bench uses 1024.
  PaillierTest()
      : rng_(55), kp_(PaillierKeyPair::Generate(256, rng_).value()) {}

  Xoshiro256 rng_;
  PaillierKeyPair kp_;
};

TEST_F(PaillierTest, KeyShape) {
  EXPECT_EQ(kp_.public_key().n().BitLength(), 256u);
  EXPECT_EQ(kp_.public_key().n_squared(),
            BigUint::Mul(kp_.public_key().n(), kp_.public_key().n()));
  EXPECT_EQ(kp_.public_key().CiphertextBytes(), 64u);  // 2|n|
}

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (uint64_t m : {0ull, 1ull, 42ull, 99999999ull}) {
    BigUint c = kp_.public_key().Encrypt(BigUint(m), rng_).value();
    EXPECT_EQ(kp_.Decrypt(c).value(), BigUint(m)) << m;
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  BigUint c1 = kp_.public_key().Encrypt(BigUint(7), rng_).value();
  BigUint c2 = kp_.public_key().Encrypt(BigUint(7), rng_).value();
  EXPECT_NE(c1, c2) << "semantic security requires fresh randomness";
  EXPECT_EQ(kp_.Decrypt(c1).value(), kp_.Decrypt(c2).value());
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  BigUint c1 = kp_.public_key().Encrypt(BigUint(1234), rng_).value();
  BigUint c2 = kp_.public_key().Encrypt(BigUint(8766), rng_).value();
  BigUint sum_ct = kp_.public_key().AddCiphertexts(c1, c2).value();
  EXPECT_EQ(kp_.Decrypt(sum_ct).value(), BigUint(10000));
}

TEST_F(PaillierTest, ManyWayAggregation) {
  // The in-network SUM usage: fold 20 ciphertexts, decrypt once.
  BigUint acc = kp_.public_key().Encrypt(BigUint(0), rng_).value();
  uint64_t expected = 0;
  for (uint64_t i = 1; i <= 20; ++i) {
    uint64_t v = 100 * i;
    expected += v;
    BigUint c = kp_.public_key().Encrypt(BigUint(v), rng_).value();
    acc = kp_.public_key().AddCiphertexts(acc, c).value();
  }
  EXPECT_EQ(kp_.Decrypt(acc).value(), BigUint(expected));
}

TEST_F(PaillierTest, ScalarMultiplication) {
  BigUint c = kp_.public_key().Encrypt(BigUint(111), rng_).value();
  BigUint c3 = kp_.public_key().MulPlain(c, BigUint(3)).value();
  EXPECT_EQ(kp_.Decrypt(c3).value(), BigUint(333));
}

TEST_F(PaillierTest, PlaintextBounds) {
  EXPECT_FALSE(
      kp_.public_key().Encrypt(kp_.public_key().n(), rng_).ok());
  EXPECT_FALSE(kp_.Decrypt(kp_.public_key().n_squared()).ok());
}

TEST_F(PaillierTest, LargePlaintextNearModulus) {
  BigUint m = BigUint::Sub(kp_.public_key().n(), BigUint(1));
  BigUint c = kp_.public_key().Encrypt(m, rng_).value();
  EXPECT_EQ(kp_.Decrypt(c).value(), m);
}

TEST_F(PaillierTest, SumWrapsModuloN) {
  // (n-1) + 2 = 1 mod n: callers must size n above the max SUM.
  BigUint m = BigUint::Sub(kp_.public_key().n(), BigUint(1));
  BigUint c1 = kp_.public_key().Encrypt(m, rng_).value();
  BigUint c2 = kp_.public_key().Encrypt(BigUint(2), rng_).value();
  BigUint sum = kp_.public_key().AddCiphertexts(c1, c2).value();
  EXPECT_EQ(kp_.Decrypt(sum).value(), BigUint(1));
}

class PaillierHomomorphismSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PaillierHomomorphismSweep, SumOfManyDecryptsCorrectly) {
  size_t bits = GetParam();
  Xoshiro256 rng(bits);
  auto kp = PaillierKeyPair::Generate(bits, rng).value();
  BigUint acc(1);  // multiplicative identity of the ciphertext group...
  // ...is not a valid Enc(0); start from an actual encryption of 0.
  acc = kp.public_key().Encrypt(BigUint(0), rng).value();
  uint64_t expected = 0;
  for (int i = 0; i < 10; ++i) {
    uint64_t v = 1800 + 320 * i;
    expected += v;
    BigUint c = kp.public_key().Encrypt(BigUint(v), rng).value();
    acc = kp.public_key().AddCiphertexts(acc, c).value();
  }
  EXPECT_EQ(kp.Decrypt(acc).value(), BigUint(expected));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PaillierHomomorphismSweep,
                         ::testing::Values(128, 256, 512));

TEST(PaillierKeyGenTest, RejectsBadSizes) {
  Xoshiro256 rng(1);
  EXPECT_FALSE(PaillierKeyPair::Generate(32, rng).ok());
  EXPECT_FALSE(PaillierKeyPair::Generate(129, rng).ok());
}

TEST(PaillierKeyGenTest, DistinctKeysPerSeed) {
  Xoshiro256 rng1(2), rng2(3);
  auto k1 = PaillierKeyPair::Generate(128, rng1).value();
  auto k2 = PaillierKeyPair::Generate(128, rng2).value();
  EXPECT_NE(k1.public_key().n(), k2.public_key().n());
}

TEST(PaillierKeyGenTest, CiphertextsOfOtherKeysDoNotDecrypt) {
  Xoshiro256 rng(4);
  auto k1 = PaillierKeyPair::Generate(128, rng).value();
  auto k2 = PaillierKeyPair::Generate(128, rng).value();
  BigUint c = k1.public_key().Encrypt(BigUint(777), rng).value();
  auto wrong = k2.Decrypt(BigUint::Mod(c, k2.public_key().n_squared())
                              .value());
  if (wrong.ok()) EXPECT_NE(wrong.value(), BigUint(777));
}

}  // namespace
}  // namespace sies::crypto
