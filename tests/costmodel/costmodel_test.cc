#include <gtest/gtest.h>

#include "costmodel/models.h"
#include "costmodel/primitives.h"

namespace sies::costmodel {
namespace {

// The paper's own primitive values: with them our formulas must
// reproduce Table III within rounding.
class PaperModelTest : public ::testing::Test {
 protected:
  PaperModelTest() : costs_(PaperPrimitives()) {}
  PrimitiveCosts costs_;
  ModelInputs in_;  // defaults = the paper's defaults
};

TEST_F(PaperModelTest, SketchValueBound) {
  // ceil(log2(1024 * 5000)) = ceil(22.29) = 23, matching x_i in [0,23].
  EXPECT_EQ(in_.SketchValueBound(), 23u);
}

TEST_F(PaperModelTest, CmtMatchesTable3) {
  SchemeCosts cmt = CmtModel(costs_, in_);
  EXPECT_NEAR(cmt.source_seconds * 1e6, 0.61, 0.01);   // C_HM1 + C_A20
  EXPECT_NEAR(cmt.aggregator_seconds * 1e6, 0.45, 0.01);
  EXPECT_NEAR(cmt.querier_seconds * 1e3, 0.62, 0.01);  // 0.62 ms
  EXPECT_EQ(cmt.source_to_aggregator_bytes, 20u);
  EXPECT_EQ(cmt.aggregator_to_querier_bytes, 20u);
}

TEST_F(PaperModelTest, SiesMatchesTable3) {
  SchemeCosts sies = SiesModel(costs_, in_);
  // 2*1.02 + 0.46 + 0.45 + 0.37 = 3.32 us (paper prints 3.46).
  EXPECT_NEAR(sies.source_seconds * 1e6, 3.32, 0.05);
  EXPECT_NEAR(sies.aggregator_seconds * 1e6, 1.11, 0.01);
  EXPECT_NEAR(sies.querier_seconds * 1e3, 2.28, 0.05);  // 2.28 ms
  EXPECT_EQ(sies.source_to_aggregator_bytes, 32u);
  EXPECT_EQ(sies.aggregator_to_querier_bytes, 32u);
}

TEST_F(PaperModelTest, SecoaBoundsMatchTable3) {
  SecoaBounds secoa = SecoaModel(costs_, in_);
  // Source: 20.26 ms best, 92.75 ms worst.
  EXPECT_NEAR(secoa.best.source_seconds * 1e3, 20.26, 0.1);
  EXPECT_NEAR(secoa.worst.source_seconds * 1e3, 92.75, 0.5);
  // Aggregator: 1.25 ms best, 36.63 ms worst.
  EXPECT_NEAR(secoa.best.aggregator_seconds * 1e3, 1.25, 0.05);
  EXPECT_NEAR(secoa.worst.aggregator_seconds * 1e3, 36.63, 0.5);
  // Querier: ~568.5 ms both ends (dominated by J*N terms).
  EXPECT_NEAR(secoa.best.querier_seconds * 1e3, 568.46, 1.0);
  EXPECT_NEAR(secoa.worst.querier_seconds * 1e3, 568.63, 2.5);
  // Edges: 38,720 bytes (= 37.8 KiB, printed as 38.72 KB in the paper).
  EXPECT_EQ(secoa.best.source_to_aggregator_bytes, 38720u);
  EXPECT_EQ(secoa.worst.aggregator_to_aggregator_bytes, 38720u);
  // A-Q: best 448 B (1 SEAL), worst 300 + 24*128 + 20 = 3392 B.
  EXPECT_EQ(secoa.best.aggregator_to_querier_bytes, 448u);
  EXPECT_EQ(secoa.worst.aggregator_to_querier_bytes, 3392u);
}

TEST_F(PaperModelTest, SiesBeatsSecoaEverywhere) {
  SchemeCosts sies = SiesModel(costs_, in_);
  SecoaBounds secoa = SecoaModel(costs_, in_);
  // SIES outperforms even SECOA_S's best case on all metrics (the
  // paper's headline claim, up to 4 orders of magnitude).
  EXPECT_LT(sies.source_seconds * 100, secoa.best.source_seconds);
  EXPECT_LT(sies.aggregator_seconds * 100, secoa.best.aggregator_seconds);
  EXPECT_LT(sies.querier_seconds * 10, secoa.best.querier_seconds);
  EXPECT_LT(sies.source_to_aggregator_bytes * 100,
            secoa.best.source_to_aggregator_bytes);
}

TEST_F(PaperModelTest, CmtOnlyMarginallyCheaperThanSies) {
  SchemeCosts cmt = CmtModel(costs_, in_);
  SchemeCosts sies = SiesModel(costs_, in_);
  EXPECT_LT(sies.source_seconds, cmt.source_seconds * 10);
  EXPECT_LT(sies.querier_seconds, cmt.querier_seconds * 10);
}

TEST_F(PaperModelTest, ScalingBehaviours) {
  // Querier costs linear in N for all schemes.
  ModelInputs big = in_;
  big.n = 4096;
  EXPECT_NEAR(CmtModel(costs_, big).querier_seconds /
                  CmtModel(costs_, in_).querier_seconds,
              4.0, 0.05);
  EXPECT_NEAR(SiesModel(costs_, big).querier_seconds /
                  SiesModel(costs_, in_).querier_seconds,
              4.0, 0.05);
  // Aggregator cost linear in F-1.
  ModelInputs f6 = in_;
  f6.f = 6;
  EXPECT_NEAR(SiesModel(costs_, f6).aggregator_seconds /
                  SiesModel(costs_, in_).aggregator_seconds,
              5.0 / 3.0, 0.01);
  // SECOA source cost grows with the domain; SIES does not.
  ModelInputs big_domain = in_;
  big_domain.d_lower = 180000;
  big_domain.d_upper = 500000;
  EXPECT_GT(SecoaModel(costs_, big_domain).best.source_seconds,
            SecoaModel(costs_, in_).best.source_seconds * 50);
  EXPECT_EQ(SiesModel(costs_, big_domain).source_seconds,
            SiesModel(costs_, in_).source_seconds);
}

TEST_F(PaperModelTest, SecoaConcreteInterpolatesBounds) {
  SecoaBounds bounds = SecoaModel(costs_, in_);
  SchemeCosts mid = SecoaConcrete(costs_, in_, /*v=*/3400,
                                  /*sum_x=*/300 * 12, /*sum_rl=*/300 * 6,
                                  /*seal_groups=*/8, /*x_max=*/20);
  EXPECT_GT(mid.source_seconds, bounds.best.source_seconds);
  EXPECT_LT(mid.source_seconds, bounds.worst.source_seconds);
  EXPECT_GT(mid.aggregator_seconds, bounds.best.aggregator_seconds);
  EXPECT_LT(mid.aggregator_seconds, bounds.worst.aggregator_seconds);
}

TEST_F(PaperModelTest, RenderTable3ContainsAllRows) {
  std::string table = RenderTable3(costs_, in_);
  EXPECT_NE(table.find("Comput. cost at S"), std::string::npos);
  EXPECT_NE(table.find("Comput. cost at A"), std::string::npos);
  EXPECT_NE(table.find("Comput. cost at Q"), std::string::npos);
  EXPECT_NE(table.find("Commun. cost S-A"), std::string::npos);
  EXPECT_NE(table.find("SIES"), std::string::npos);
  EXPECT_NE(table.find("SECOA_S"), std::string::npos);
}

TEST(MeasurePrimitivesTest, AllPositiveAndOrdered) {
  // A small calibration run: sanity of relative magnitudes, not
  // absolutes. Only orderings with order-of-magnitude margins are
  // asserted — this test shares the machine with parallel ctest jobs.
  PrimitiveCosts costs = MeasurePrimitives(/*iterations=*/2000);
  EXPECT_GT(costs.c_sk, 0.0);
  EXPECT_GT(costs.c_rsa, 0.0);
  EXPECT_GT(costs.c_hm1, 0.0);
  EXPECT_GT(costs.c_hm256, 0.0);
  EXPECT_GT(costs.c_a20, 0.0);
  EXPECT_GT(costs.c_a32, 0.0);
  EXPECT_GT(costs.c_m32, 0.0);
  EXPECT_GT(costs.c_m128, 0.0);
  EXPECT_GT(costs.c_mi32, 0.0);
  EXPECT_GT(costs.c_rsa, costs.c_sk);   // RSA-1024 >> one 64-bit hash mix
  EXPECT_GT(costs.c_rsa, costs.c_a20);  // RSA-1024 >> 20-byte add
  EXPECT_GT(costs.c_mi32, costs.c_a32); // ext-Euclid >> one addition
}

TEST(MeasurePrimitivesTest, ToStringListsAllNine) {
  std::string s = PaperPrimitives().ToString();
  for (const char* name : {"C_sk", "C_RSA", "C_HM1", "C_HM256", "C_A20",
                           "C_A32", "C_M32", "C_M128", "C_MI32"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace sies::costmodel
